//! Serving determinism: the same SQL over the same data returns
//! byte-identical results regardless of how many client threads hammer the
//! server, how the round-robin scheduler interleaves tenants, or whether
//! the per-tenant cache shards are cold or warm.  The reference is the
//! serial, hand-built [`SsbQuery::plan`] execution — the same oracle the
//! `morph-ssb` differential suite uses.

use std::sync::Arc;

use morph_compression::Format;
use morph_server::{Server, ServerConfig};
use morph_ssb::{dbgen, ssb_catalog, SsbData, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{ExecSettings, ExecutionContext};

const SCALE: f64 = 0.01;
const SEED: u64 = 42;

fn reference_results(data: &SsbData) -> Vec<(SsbQuery, Vec<Vec<u64>>, Vec<u64>)> {
    SsbQuery::all()
        .iter()
        .map(|&query| {
            let mut ctx = ExecutionContext::new(
                ExecSettings::scalar_uncompressed(),
                FormatConfig::uncompressed(),
            );
            let result = query.execute(data, &mut ctx);
            (query, result.group_keys, result.values)
        })
        .collect()
}

fn server_over(data: Arc<SsbData>, workers: usize) -> Server {
    Server::new(
        ssb_catalog(),
        data,
        ServerConfig {
            workers,
            threads_per_query: 1,
            queue_capacity: 64,
            cache_budget_bytes: 64 << 20,
            max_tenants: 8,
            settings: ExecSettings::vectorized_compressed(),
            formats: FormatConfig::with_default(Format::DeltaDynBp),
            ..ServerConfig::default()
        },
    )
}

#[test]
fn concurrent_sessions_match_the_serial_hand_built_plans() {
    let data = Arc::new(dbgen::generate(SCALE, SEED));
    let expected = Arc::new(reference_results(&data));

    for clients in [1usize, 2, 4, 8] {
        let server = Arc::new(server_over(Arc::clone(&data), 4));
        let mut handles = Vec::new();
        for client in 0..clients {
            let server = Arc::clone(&server);
            let expected = Arc::clone(&expected);
            handles.push(std::thread::spawn(move || {
                // One tenant per client: the scheduler interleaves them.
                let session = server.session(&format!("tenant-{client}")).unwrap();
                // Two passes: cold shard, then warm shard — results must
                // not depend on cache state.
                for pass in 0..2 {
                    for (query, group_keys, values) in expected.iter() {
                        let output = session
                            .submit(query.sql())
                            .unwrap_or_else(|e| panic!("{query}: {e}"));
                        assert_eq!(
                            &output.group_keys, group_keys,
                            "{query}: group keys diverge ({clients} clients, pass {pass})"
                        );
                        assert_eq!(
                            &output.values, values,
                            "{query}: aggregates diverge ({clients} clients, pass {pass})"
                        );
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }

        let stats = server.stats();
        assert_eq!(stats.served as usize, clients * 2 * SsbQuery::all().len());
        assert_eq!(stats.queue_depth, 0);
        // The warm second pass must have hit each tenant's own shard.
        for tenant in &stats.tenants {
            assert!(
                tenant.cache.hits > 0,
                "warm pass missed entirely for {}: {:?}",
                tenant.tenant,
                tenant.cache
            );
        }
    }
}

#[test]
fn tenant_shards_never_leak_across_tenants() {
    let data = Arc::new(dbgen::generate(SCALE, SEED));
    let server = server_over(data, 2);

    // Tenant a warms its shard with every SSB query.
    let a = server.session("a").unwrap();
    for query in SsbQuery::all() {
        a.submit(query.sql()).unwrap();
    }
    let warm = server.stats();
    let shard_a = warm.tenants[0].cache;
    assert!(shard_a.insertions > 0);

    // Tenant b runs the identical workload.  The 13 queries share subplans
    // among themselves, so b hits its *own* shard as it goes — but an
    // isolated shard running the identical workload from cold must land on
    // exactly the counters a's cold run produced.  Leakage from a's warm
    // shard would inflate b's hits (with a shared cache the whole run
    // would hit).
    let b = server.session("b").unwrap();
    for query in SsbQuery::all() {
        b.submit(query.sql()).unwrap();
    }
    let stats = server.stats();
    let shard_b = &stats.tenants[1];
    assert_eq!(shard_b.tenant, "b");
    assert_eq!(
        (
            shard_b.cache.hits,
            shard_b.cache.misses,
            shard_b.cache.insertions
        ),
        (shard_a.hits, shard_a.misses, shard_a.insertions),
        "tenant b's cold run diverges from tenant a's cold run — cross-tenant leakage"
    );
    // And b's traffic did not disturb a's counters.
    assert_eq!(stats.tenants[0].cache.hits, shard_a.hits);
}
