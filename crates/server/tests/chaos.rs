//! Chaos test of the governance layer (`--features faults`): a seeded
//! deterministic fault plan injects decode failures, engine panics and
//! delays into ~10% of query executions across two tenants hammering all
//! 13 SSB queries on a 4-worker server.  The contract under fire:
//!
//! * **zero escaped panics** — every submission gets a reply; faulted
//!   queries fail with *structured* errors (decode faults carry the
//!   injected `DecodeError`, injected panics are contained at the worker
//!   boundary);
//! * **blast-radius isolation** — every query that succeeds is
//!   byte-identical to the fault-free serial reference, co-tenant faults
//!   notwithstanding (shared worker pool, private cache shards);
//! * **accounting** — [`Server::stats`] reconciles: every admitted query
//!   lands in exactly one outcome bucket, and the failure count matches
//!   what the clients observed;
//! * **responsiveness** — cancelling an executing query, or a deadline
//!   expiring mid-execution, surfaces within 50 ms of the trigger even
//!   while the query sits in an injected delay;
//! * **fusion neutrality** — faults are armed per query occurrence, so a
//!   fusion-enabled pass sees the same seeded schedule, the same outcome
//!   sequence, and byte-identical successful results as the unfused run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use morph_compression::{DecodeError, Format};
use morph_server::{Server, ServerConfig, ServerError, TenantLimits};
use morph_ssb::{dbgen, ssb_catalog, SsbData, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::faults::{FaultKind, FaultPlan, FaultSite};
use morphstore_engine::{ExecSettings, ExecutionContext};

const SCALE: f64 = 0.01;
const SEED: u64 = 42;
const FAULT_RATE_PERCENT: u64 = 10;
const PASSES: usize = 3;

fn reference_results(data: &SsbData) -> Vec<(SsbQuery, Vec<Vec<u64>>, Vec<u64>)> {
    SsbQuery::all()
        .iter()
        .map(|&query| {
            let mut ctx = ExecutionContext::new(
                ExecSettings::scalar_uncompressed(),
                FormatConfig::uncompressed(),
            );
            let result = query.execute(data, &mut ctx);
            (query, result.group_keys, result.values)
        })
        .collect()
}

fn server_with(
    data: Arc<SsbData>,
    fault_plan: Option<Arc<FaultPlan>>,
    settings: ExecSettings,
) -> Server {
    Server::new(
        ssb_catalog(),
        data,
        ServerConfig {
            workers: 4,
            threads_per_query: 1,
            queue_capacity: 64,
            settings,
            formats: FormatConfig::with_default(Format::DeltaDynBp),
            fault_plan,
            ..ServerConfig::default()
        },
    )
}

fn server_over(data: Arc<SsbData>, fault_plan: Option<Arc<FaultPlan>>) -> Server {
    server_with(data, fault_plan, ExecSettings::vectorized_compressed())
}

/// Whether `error` is one of the failures the fault plan can legitimately
/// inject (anything else would be an escaped or mangled panic).
fn is_injected(error: &ServerError) -> bool {
    match error {
        ServerError::Execution { message, decode } => match decode {
            Some(DecodeError::CorruptHeader { format, .. }) => *format == "fault-injection",
            Some(_) => false,
            None => message.contains("injected panic"),
        },
        _ => false,
    }
}

#[test]
fn seeded_faults_are_contained_and_counted() {
    let data = Arc::new(dbgen::generate(SCALE, SEED));
    let expected = Arc::new(reference_results(&data));
    let fault_plan = Arc::new(FaultPlan::seeded(SEED, FAULT_RATE_PERCENT));
    let server = Arc::new(server_over(
        Arc::clone(&data),
        Some(Arc::clone(&fault_plan)),
    ));

    // Two tenants submit all 13 SSB queries for several passes, each from
    // its own thread.  Per-tenant submission is sequential and query names
    // are tenant-qualified, so the fault schedule is deterministic no
    // matter how the 4 workers interleave.
    let mut handles = Vec::new();
    for tenant in ["alpha", "beta"] {
        let server = Arc::clone(&server);
        let expected = Arc::clone(&expected);
        handles.push(std::thread::spawn(move || {
            let session = server.session(tenant).unwrap();
            let (mut ok, mut injected) = (0u64, 0u64);
            for pass in 0..PASSES {
                for (query, group_keys, values) in expected.iter() {
                    match session.submit(query.sql()) {
                        Ok(output) => {
                            // Unaffected queries are byte-identical to the
                            // fault-free serial reference — a co-tenant's
                            // fault must never bleed into this result.
                            assert_eq!(
                                &output.group_keys, group_keys,
                                "{tenant}/{query}: keys diverge (pass {pass})"
                            );
                            assert_eq!(
                                &output.values, values,
                                "{tenant}/{query}: values diverge (pass {pass})"
                            );
                            ok += 1;
                        }
                        Err(error) => {
                            assert!(
                                is_injected(&error),
                                "{tenant}/{query}: unexpected failure {error:?}"
                            );
                            injected += 1;
                        }
                    }
                }
            }
            (ok, injected)
        }));
    }
    let mut client_ok = 0u64;
    let mut client_injected = 0u64;
    for handle in handles {
        let (ok, injected) = handle.join().expect("client thread must not panic");
        client_ok += ok;
        client_injected += injected;
    }

    let submitted = (2 * PASSES * SsbQuery::all().len()) as u64;
    assert_eq!(client_ok + client_injected, submitted);
    // The 10% plan actually bit — this run is exercising the fault paths,
    // not silently running clean — while most queries still succeed.
    assert!(client_injected > 0, "no faults fired");
    assert!(client_ok > submitted / 2, "only {client_ok} succeeded");
    assert!(fault_plan.armed_count() >= client_injected);

    // Server-side accounting reconciles with what the clients saw: every
    // admitted query is in exactly one bucket (delays are not failures).
    let stats = server.stats();
    assert_eq!(stats.served, submitted);
    assert_eq!(stats.outcomes.ok, client_ok);
    assert_eq!(stats.outcomes.failed, client_injected);
    assert_eq!(stats.outcomes.total(), submitted);
    assert_eq!(stats.queue_depth, 0);
    for tenant in &stats.tenants {
        assert_eq!(tenant.in_flight, 0, "{tenant:?}");
        assert_eq!(
            tenant.outcomes.total(),
            (PASSES * SsbQuery::all().len()) as u64,
            "{tenant:?}"
        );
    }

    // The metrics registry was fed at the same sites as the outcome
    // buckets, so its counters reconcile exactly — even after a chaos run.
    let metrics = server.metrics();
    assert_eq!(
        metrics.counter_total("morph_queries_total"),
        stats.outcomes.total()
    );
    for tenant in &stats.tenants {
        for (outcome, expected) in [
            ("ok", tenant.outcomes.ok),
            ("failed", tenant.outcomes.failed),
            ("cancelled", tenant.outcomes.cancelled),
            ("deadline_exceeded", tenant.outcomes.deadline_exceeded),
            ("memory_exceeded", tenant.outcomes.memory_exceeded),
            ("shed", tenant.outcomes.shed),
        ] {
            assert_eq!(
                metrics
                    .counter_value(
                        "morph_queries_total",
                        &[("tenant", tenant.tenant.as_str()), ("outcome", outcome)],
                    )
                    .unwrap_or(0),
                expected,
                "{}/{outcome} diverges from OutcomeCounts",
                tenant.tenant
            );
        }
    }
    let text = server.metrics_text();
    assert!(
        text.contains(&format!("morph_latency_ns_count {submitted}")),
        "latency histogram count != served: {text}"
    );
}

#[test]
fn determinism_of_the_seeded_schedule_across_runs() {
    // The same seed over the same submission order arms the same number of
    // faults and yields the same per-client outcome counts, run after run.
    let data = Arc::new(dbgen::generate(SCALE, SEED));
    let mut signatures = Vec::new();
    for _ in 0..2 {
        let fault_plan = Arc::new(FaultPlan::seeded(SEED, FAULT_RATE_PERCENT));
        let server = server_over(Arc::clone(&data), Some(Arc::clone(&fault_plan)));
        let session = server.session("alpha").unwrap();
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            for query in SsbQuery::all() {
                outcomes.push(session.submit(query.sql()).is_ok());
            }
        }
        signatures.push((outcomes, fault_plan.armed_count()));
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn fusion_does_not_change_the_fault_schedule_or_the_results() {
    // Faults are armed per *query occurrence* — a pure hash of
    // (seed, tenant-qualified name, occurrence) decided before execution —
    // so enabling operator fusion must not move a single fault: the same
    // outcome sequence and the same armed count as the unfused run, and
    // every successful query stays byte-identical to the fault-free
    // reference even when its plan executes as fused pipelines under
    // injected chunk-checkpoint faults.
    let data = Arc::new(dbgen::generate(SCALE, SEED));
    let expected = reference_results(&data);
    let mut signatures = Vec::new();
    for fused in [false, true] {
        let settings = if fused {
            ExecSettings::vectorized_compressed().with_fusion()
        } else {
            ExecSettings::vectorized_compressed()
        };
        let fault_plan = Arc::new(FaultPlan::seeded(SEED, FAULT_RATE_PERCENT));
        let server = server_with(Arc::clone(&data), Some(Arc::clone(&fault_plan)), settings);
        let session = server.session("alpha").unwrap();
        let mut outcomes = Vec::new();
        for pass in 0..PASSES {
            for (query, group_keys, values) in expected.iter() {
                match session.submit(query.sql()) {
                    Ok(output) => {
                        assert_eq!(
                            &output.group_keys, group_keys,
                            "fused={fused} {query}: keys diverge (pass {pass})"
                        );
                        assert_eq!(
                            &output.values, values,
                            "fused={fused} {query}: values diverge (pass {pass})"
                        );
                        outcomes.push(true);
                    }
                    Err(error) => {
                        assert!(
                            is_injected(&error),
                            "fused={fused} {query}: unexpected failure {error:?}"
                        );
                        outcomes.push(false);
                    }
                }
            }
        }
        assert!(
            outcomes.iter().any(|ok| !ok),
            "fused={fused}: no faults fired"
        );
        signatures.push((outcomes, fault_plan.armed_count()));
    }
    assert_eq!(
        signatures[0], signatures[1],
        "fusion changed the seeded fault schedule"
    );
}

#[test]
fn cancel_mid_delay_returns_within_latency_bound() {
    let data = Arc::new(dbgen::generate(SCALE, SEED));
    // Pin a long (sliced) delay onto one query so it is reliably executing
    // when the client cancels.
    let query = SsbQuery::all()[0];
    let fault_plan = Arc::new(FaultPlan::targeted());
    fault_plan.inject(
        &format!("alpha:{}", query.sql()),
        FaultSite::Chunk,
        2,
        FaultKind::Delay(Duration::from_secs(2)),
    );
    let server = server_over(Arc::clone(&data), Some(fault_plan));
    let session = server.session("alpha").unwrap();
    let pending = session.enqueue(query.sql()).unwrap();
    // Let the worker pick it up and enter the injected delay.
    std::thread::sleep(Duration::from_millis(50));
    pending.cancel();
    let triggered = Instant::now();
    let result = pending.wait();
    let latency = triggered.elapsed();
    assert_eq!(result, Err(ServerError::Cancelled));
    assert!(
        latency < Duration::from_millis(50),
        "cancel took {latency:?} to surface"
    );
    assert_eq!(server.stats().outcomes.cancelled, 1);
}

#[test]
fn deadline_mid_delay_returns_within_latency_bound() {
    let data = Arc::new(dbgen::generate(SCALE, SEED));
    let query = SsbQuery::all()[0];
    let deadline = Duration::from_millis(60);
    let fault_plan = Arc::new(FaultPlan::targeted());
    fault_plan.inject(
        &format!("strict:{}", query.sql()),
        FaultSite::Chunk,
        2,
        FaultKind::Delay(Duration::from_secs(2)),
    );
    let server = server_over(Arc::clone(&data), Some(fault_plan));
    let session = server
        .session_with_limits(
            "strict",
            TenantLimits {
                deadline: Some(deadline),
                ..TenantLimits::default()
            },
        )
        .unwrap();
    let enqueued = Instant::now();
    let result = session.submit(query.sql());
    let elapsed = enqueued.elapsed();
    match result {
        Err(ServerError::DeadlineExceeded {
            deadline: reported, ..
        }) => assert_eq!(reported, deadline),
        other => panic!("unexpected {other:?}"),
    }
    // The deadline fired at most one delay slice plus scheduling slack
    // past its expiry, well inside the 50 ms responsiveness bound.
    assert!(
        elapsed < deadline + Duration::from_millis(50),
        "deadline surfaced {elapsed:?} after admission (deadline {deadline:?})"
    );
    assert_eq!(server.stats().outcomes.deadline_exceeded, 1);
}
