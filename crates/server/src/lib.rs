//! # morph-server
//!
//! A concurrent, multi-tenant query server over the MorphStore engine: SQL
//! in, decompressed result columns out.
//!
//! ## Model
//!
//! A [`Server`] owns a worker pool and a shared, immutable column store
//! (any [`ColumnSource`]).  Clients open a [`Session`] for a named
//! *tenant* and call [`Session::submit`] from as many threads as they
//! like; submissions are multiplexed onto the workers through per-tenant
//! bounded admission queues:
//!
//! * **Admission** — each tenant has its own FIFO queue of at most
//!   [`ServerConfig::queue_capacity`] waiting queries.  A full queue
//!   rejects immediately with [`ServerError::QueueFull`] (structured
//!   back-pressure, never a panic or a silent drop).
//! * **Fairness** — workers pick the next query round-robin across
//!   tenants, so a tenant flooding its queue cannot starve the others:
//!   with k active tenants each gets ~1/k of the workers' attention.
//! * **Isolation** — every tenant gets a private [`QueryCache`] shard
//!   carved out of [`ServerConfig::cache_budget_bytes`] (budget divided
//!   evenly across [`ServerConfig::max_tenants`]).  Shards are separate
//!   cache instances: one tenant's queries can never hit — or evict —
//!   another tenant's entries, structurally.
//! * **Failure containment** — compilation failures are returned as
//!   structured [`ServerError`]s with positions and did-you-mean
//!   suggestions; engine panics during execution are caught at the worker
//!   boundary and returned as [`ServerError::Execution`].
//! * **Observability** — a process-wide [`MetricsRegistry`] counts every
//!   admission outcome at the same sites as [`OutcomeCounts`] (so the two
//!   reconcile exactly) and observes queue-wait, execution and end-to-end
//!   latency histograms, rendered as Prometheus text by
//!   [`Server::metrics_text`].  Queries prefixed `EXPLAIN ANALYZE` execute
//!   under a tracer and carry their per-node profile in
//!   [`QueryResponse::profile`]; with
//!   [`ServerConfig::slow_query_threshold`] set, every query is traced and
//!   those whose service time crosses the threshold land in a bounded
//!   slow-query log ([`Server::slow_queries`]) with the profile attached.
//!
//! Results are *deterministic*: the same SQL over the same data returns
//! byte-identical [`PlanOutput`]s regardless of worker count, concurrency
//! or cache state (the `server_determinism` test drives 1/2/4/8-client
//! sessions against the serial hand-built SSB plans).
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod stats;

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use morph_cache::{CacheConfig, QueryCache};
use morph_sql::{Catalog, CompiledQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::plan::{ColumnSource, PlanOutput};
use morphstore_engine::{ExecSettings, ExecutionContext, Histogram, QueryGovernor, QueryTracer};

pub use error::ServerError;
pub use morphstore_engine::MetricsRegistry;
pub use stats::{OutcomeCounts, ServerStats, TenantStats};

/// Per-tenant query-lifecycle limits, applied to every query the tenant
/// submits (the governance contract of the server: every limit surfaces as
/// a structured [`ServerError`], never a panic or a hung worker).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantLimits {
    /// Wall-clock deadline per query, measured from admission — queue wait
    /// counts against it, which is what makes load shedding sound.
    pub deadline: Option<Duration>,
    /// Per-query memory budget in bytes (materialised intermediates plus
    /// peak transient carry).
    pub memory_budget_bytes: Option<usize>,
    /// Maximum queries this tenant may have admitted (queued or executing)
    /// at once.
    pub max_in_flight: Option<usize>,
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries (0 accepts submissions but never
    /// completes them — useful only for tests).
    pub workers: usize,
    /// Intra-query parallelism: worker threads each query's plan executor
    /// uses (1 = serial execution per query).
    pub threads_per_query: usize,
    /// Maximum queued (admitted but not yet executing) queries per tenant.
    pub queue_capacity: usize,
    /// Total cache budget in bytes, divided evenly into per-tenant shards.
    pub cache_budget_bytes: usize,
    /// Maximum number of distinct tenants; the budget division uses this
    /// as the denominator, so it is fixed up front.
    pub max_tenants: usize,
    /// Admission thresholds applied to every tenant's cache shard.
    pub cache_admission: CacheConfig,
    /// Engine settings queries execute under (any cache handle in here is
    /// replaced by the tenant's shard).
    pub settings: ExecSettings,
    /// Per-column format assignment for intermediates.
    pub formats: FormatConfig,
    /// Lifecycle limits applied to tenants that do not override them via
    /// [`Server::session_with_limits`].
    pub default_limits: TenantLimits,
    /// When set, every query executes under a tracer and queries whose
    /// worker service time reaches the threshold are recorded — with their
    /// per-node profile — in the slow-query log ([`Server::slow_queries`]).
    pub slow_query_threshold: Option<Duration>,
    /// Deterministic fault schedule consulted once per admitted query
    /// (fault-injection harness; test builds only).  Queries are named
    /// `"<tenant>:<sql>"`, so co-tenant schedules are independent.
    #[cfg(feature = "faults")]
    pub fault_plan: Option<Arc<morphstore_engine::faults::FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            threads_per_query: 1,
            queue_capacity: 64,
            cache_budget_bytes: 64 << 20,
            max_tenants: 8,
            cache_admission: CacheConfig::default(),
            settings: ExecSettings::vectorized_compressed(),
            formats: FormatConfig::default(),
            default_limits: TenantLimits::default(),
            slow_query_threshold: None,
            #[cfg(feature = "faults")]
            fault_plan: None,
        }
    }
}

/// A query result with its observability side-channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// The decompressed result columns.
    pub output: PlanOutput,
    /// The rendered per-node profile, present when the query was submitted
    /// as `EXPLAIN ANALYZE SELECT ...`.
    pub profile: Option<String>,
}

/// One entry of the slow-query log ([`Server::slow_queries`]).
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The tenant that submitted the query.
    pub tenant: String,
    /// The SQL text as submitted.
    pub sql: String,
    /// Worker service time (execution only, excluding queue wait).
    pub service: Duration,
    /// End-to-end latency (enqueue → reply).
    pub latency: Duration,
    /// The per-node EXPLAIN ANALYZE profile captured for the run, when the
    /// query executed far enough to produce a trace.
    pub profile: Option<String>,
}

/// Entries kept in the slow-query log before the oldest is dropped.
const SLOW_QUERY_LOG_CAPACITY: usize = 64;

/// One queued query.
struct Job {
    tenant: usize,
    sql: String,
    enqueued_at: Instant,
    reply: Arc<ReplySlot>,
    governor: Arc<QueryGovernor>,
}

/// The rendezvous a [`PendingQuery`] waits on.
struct ReplySlot {
    result: Mutex<Option<Result<QueryResponse, ServerError>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// First write wins: a cancellation racing the worker (or shutdown)
    /// cannot overwrite an already-delivered result.
    fn fill(&self, result: Result<QueryResponse, ServerError>) {
        let mut slot = self.result.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> Result<QueryResponse, ServerError> {
        let mut slot = self.result.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }
}

/// Per-tenant server-side state.
struct TenantState {
    name: String,
    cache: Arc<QueryCache>,
    queue: VecDeque<Job>,
    limits: TenantLimits,
    /// Admitted queries not yet replied to (queued or executing).
    in_flight: usize,
    served: u64,
    rejected: u64,
    outcomes: OutcomeCounts,
}

/// State behind the scheduler lock.
struct Inner {
    tenants: Vec<TenantState>,
    /// Round-robin position: the tenant index to try first.
    cursor: usize,
    shutdown: bool,
    /// End-to-end latency histogram (enqueue → reply), shared with the
    /// metrics registry — `stats()` and `metrics_text()` read one source.
    latency: Arc<Histogram>,
    /// Most recent queries over the slow-query threshold, oldest first.
    slow_queries: VecDeque<SlowQuery>,
    /// Running sum/count of worker service times, for the admission-time
    /// queue-wait estimate behind load shedding and `retry_after` hints.
    service_total_ns: u64,
    service_samples: u64,
}

impl Inner {
    /// Mean worker service time observed so far, `None` until a query has
    /// completed (no shedding before the server has evidence).
    fn avg_service(&self) -> Option<Duration> {
        (self.service_samples > 0)
            .then(|| Duration::from_nanos(self.service_total_ns / self.service_samples))
    }

    /// Estimated wait before a query admitted now starts executing:
    /// today's total backlog drained by `workers` at the observed mean
    /// service time.
    fn estimated_queue_wait(&self, workers: usize) -> Option<Duration> {
        let queued: usize = self.tenants.iter().map(|t| t.queue.len()).sum();
        let queued = u32::try_from(queued).unwrap_or(u32::MAX);
        let avg = self.avg_service()?;
        (workers > 0).then(|| avg.saturating_mul(queued) / workers as u32)
    }
}

/// Pick the tenant to serve next: the first tenant with a non-empty queue
/// at or after `cursor`, wrapping around.  Pure so fairness is unit-testable.
fn next_tenant(queue_lens: &[usize], cursor: usize) -> Option<usize> {
    let n = queue_lens.len();
    (0..n)
        .map(|offset| (cursor + offset) % n)
        .find(|&index| queue_lens[index] > 0)
}

struct Shared {
    inner: Mutex<Inner>,
    work: Condvar,
    catalog: Catalog,
    source: Arc<dyn ColumnSource + Send + Sync>,
    config: ServerConfig,
    metrics: MetricsRegistry,
}

/// Counter of admitted-query outcomes; mirrors [`OutcomeCounts`] exactly.
const QUERIES_TOTAL: &str = "morph_queries_total";
/// Counter of admission rejections (queue full, in-flight limit, shed).
const REJECTED_TOTAL: &str = "morph_rejected_total";

/// The metrics `outcome` label a finished query's result maps to — one
/// value per [`OutcomeCounts`] bucket a worker can produce.
fn outcome_label(result: &Result<QueryResponse, ServerError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(ServerError::Cancelled) => "cancelled",
        Err(ServerError::DeadlineExceeded { .. }) => "deadline_exceeded",
        Err(ServerError::MemoryExceeded { .. }) => "memory_exceeded",
        Err(_) => "failed",
    }
}

/// What [`Shared::run_job`] hands back to the worker loop: the client
/// reply plus the observability side-channel of the run.
struct JobRun {
    result: Result<QueryResponse, ServerError>,
    /// Rendered per-node profile, whenever a tracer captured a trace
    /// (`EXPLAIN ANALYZE` queries and slow-query-log candidates).
    profile: Option<String>,
    /// Plan nodes completed from the tenant's cache shard.
    cache_hits: u64,
    /// Intermediate bytes never materialised thanks to operator fusion.
    bytes_avoided: u64,
}

impl Shared {
    fn take_job(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.shutdown {
                return None;
            }
            let lens: Vec<usize> = inner.tenants.iter().map(|t| t.queue.len()).collect();
            if let Some(index) = next_tenant(&lens, inner.cursor) {
                inner.cursor = (index + 1) % inner.tenants.len();
                let job = inner.tenants[index].queue.pop_front().expect("non-empty");
                return Some(job);
            }
            inner = self.work.wait(inner).unwrap();
        }
    }

    fn run_job(&self, job: &Job) -> JobRun {
        let cache = {
            let inner = self.inner.lock().unwrap();
            Arc::clone(&inner.tenants[job.tenant].cache)
        };
        let compiled: CompiledQuery = match morph_sql::compile(&job.sql, &self.catalog) {
            Ok(compiled) => compiled,
            Err(error) => {
                return JobRun {
                    result: Err(error.into()),
                    profile: None,
                    cache_hits: 0,
                    bytes_avoided: 0,
                }
            }
        };
        let mut settings = self
            .config
            .settings
            .clone()
            .with_cache(cache)
            .with_governor(Arc::clone(&job.governor));
        // EXPLAIN ANALYZE always traces; a configured slow-query threshold
        // traces every query so the log can attach a profile after the fact.
        let explain = compiled.is_explain_analyze();
        let tracer = (explain || self.config.slow_query_threshold.is_some())
            .then(|| Arc::new(QueryTracer::new()));
        if let Some(tracer) = &tracer {
            settings = settings.with_tracer(Arc::clone(tracer));
        }
        let formats = self.config.formats.clone();
        let source = Arc::clone(&self.source);
        let threads = self.config.threads_per_query;
        // Two containment layers: `try_execute*` converts governance trips
        // and decode failures into structured `ExecError`s, and the outer
        // `catch_unwind` contains any *other* engine panic (a genuine bug,
        // or an injected one) so the worker survives either way.
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = ExecutionContext::new(settings, formats);
            let result = if threads > 1 {
                compiled.try_execute_parallel(source.as_ref(), &mut ctx, threads)
            } else {
                compiled.try_execute(source.as_ref(), &mut ctx)
            };
            (
                result,
                ctx.cache_hit_count() as u64,
                ctx.intermediate_bytes_avoided(),
            )
        }));
        let (result, cache_hits, bytes_avoided) = match run {
            Ok((result, hits, avoided)) => (result.map_err(ServerError::from), hits, avoided),
            Err(panic) => (Err(error::execution_error(panic)), 0, 0),
        };
        let profile = tracer
            .and_then(|tracer| tracer.last_trace())
            .map(|trace| compiled.plan().explain_analyze(&trace));
        let result = result.map(|output| QueryResponse {
            output,
            profile: if explain { profile.clone() } else { None },
        });
        JobRun {
            result,
            profile,
            cache_hits,
            bytes_avoided,
        }
    }

    /// Count one query outcome for `tenant` — the metrics mirror of the
    /// [`OutcomeCounts`] bucket the caller just incremented, so
    /// `metrics_text()` reconciles exactly with `stats()`.
    fn count_outcome(&self, tenant: &str, outcome: &str) {
        self.metrics
            .counter(
                QUERIES_TOTAL,
                "Admitted queries by final outcome (reconciles with OutcomeCounts)",
                &[("tenant", tenant), ("outcome", outcome)],
            )
            .inc();
    }

    /// Count one admission rejection for `tenant`.
    fn count_rejected(&self, tenant: &str) {
        self.metrics
            .counter(
                REJECTED_TOTAL,
                "Admission rejections (queue full, in-flight limit, load shed)",
                &[("tenant", tenant)],
            )
            .inc();
    }

    fn worker_loop(&self) {
        while let Some(job) = self.take_job() {
            let started = Instant::now();
            let queue_wait = started.duration_since(job.enqueued_at);
            let run = self.run_job(&job);
            let service = started.elapsed();
            let latency = job.enqueued_at.elapsed();
            let outcome = outcome_label(&run.result);
            let tenant_name = {
                let mut inner = self.inner.lock().unwrap();
                inner.latency.observe(latency.as_nanos() as u64);
                inner.service_total_ns += service.as_nanos() as u64;
                inner.service_samples += 1;
                let tenant = &mut inner.tenants[job.tenant];
                tenant.served += 1;
                tenant.in_flight = tenant.in_flight.saturating_sub(1);
                match outcome {
                    "ok" => tenant.outcomes.ok += 1,
                    "cancelled" => tenant.outcomes.cancelled += 1,
                    "deadline_exceeded" => tenant.outcomes.deadline_exceeded += 1,
                    "memory_exceeded" => tenant.outcomes.memory_exceeded += 1,
                    _ => tenant.outcomes.failed += 1,
                }
                let name = tenant.name.clone();
                if let Some(threshold) = self.config.slow_query_threshold {
                    if service >= threshold {
                        if inner.slow_queries.len() == SLOW_QUERY_LOG_CAPACITY {
                            inner.slow_queries.pop_front();
                        }
                        inner.slow_queries.push_back(SlowQuery {
                            tenant: name.clone(),
                            sql: job.sql.clone(),
                            service,
                            latency,
                            profile: run.profile.clone(),
                        });
                    }
                }
                name
            };
            self.count_outcome(&tenant_name, outcome);
            let labels = [("tenant", tenant_name.as_str())];
            self.metrics
                .histogram(
                    "morph_queue_wait_ns",
                    "Admission-to-start wait per query",
                    &labels,
                )
                .observe(queue_wait.as_nanos() as u64);
            self.metrics
                .histogram(
                    "morph_execution_ns",
                    "Worker service time per query",
                    &labels,
                )
                .observe(service.as_nanos() as u64);
            if run.cache_hits > 0 {
                self.metrics
                    .counter(
                        "morph_cache_hit_nodes_total",
                        "Plan nodes completed from the tenant's cache shard",
                        &labels,
                    )
                    .add(run.cache_hits);
            }
            if run.bytes_avoided > 0 {
                self.metrics
                    .counter(
                        "morph_intermediate_bytes_avoided_total",
                        "Intermediate bytes never materialised thanks to operator fusion",
                        &labels,
                    )
                    .add(run.bytes_avoided);
            }
            job.reply.fill(run.result);
        }
    }
}

/// A multi-tenant SQL query server over a shared column store.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server over `source`, resolving queries against `catalog`,
    /// with `config.workers` worker threads.
    pub fn new(
        catalog: Catalog,
        source: Arc<dyn ColumnSource + Send + Sync>,
        config: ServerConfig,
    ) -> Server {
        let metrics = MetricsRegistry::new();
        let latency = metrics.histogram(
            "morph_latency_ns",
            "End-to-end query latency (enqueue to reply)",
            &[],
        );
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                tenants: Vec::new(),
                cursor: 0,
                shutdown: false,
                latency,
                slow_queries: VecDeque::new(),
                service_total_ns: 0,
                service_samples: 0,
            }),
            work: Condvar::new(),
            catalog,
            source,
            config: config.clone(),
            metrics,
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("morph-server-worker-{index}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Open a session for `tenant`, registering the tenant (and carving out
    /// its cache shard) on first use.
    ///
    /// Returns [`ServerError::TenantLimit`] if the tenant is new and the
    /// server already serves [`ServerConfig::max_tenants`] tenants, and
    /// [`ServerError::Shutdown`] after [`Server::shutdown`].
    pub fn session(&self, tenant: &str) -> Result<Session, ServerError> {
        self.open_session(tenant, None)
    }

    /// Like [`Server::session`], but install `limits` as the tenant's
    /// lifecycle limits (replacing the config default, and any limits a
    /// previous session installed).
    pub fn session_with_limits(
        &self,
        tenant: &str,
        limits: TenantLimits,
    ) -> Result<Session, ServerError> {
        self.open_session(tenant, Some(limits))
    }

    fn open_session(
        &self,
        tenant: &str,
        limits: Option<TenantLimits>,
    ) -> Result<Session, ServerError> {
        let config = &self.shared.config;
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.shutdown {
            return Err(ServerError::Shutdown);
        }
        let index = match inner.tenants.iter().position(|t| t.name == tenant) {
            Some(index) => index,
            None => {
                if inner.tenants.len() >= config.max_tenants {
                    return Err(ServerError::TenantLimit {
                        max_tenants: config.max_tenants,
                    });
                }
                let shard_budget = config.cache_budget_bytes / config.max_tenants.max(1);
                inner.tenants.push(TenantState {
                    name: tenant.to_string(),
                    cache: Arc::new(QueryCache::with_config(
                        shard_budget,
                        config.cache_admission,
                    )),
                    queue: VecDeque::new(),
                    limits: config.default_limits.clone(),
                    in_flight: 0,
                    served: 0,
                    rejected: 0,
                    outcomes: OutcomeCounts::default(),
                });
                inner.tenants.len() - 1
            }
        };
        if let Some(limits) = limits {
            inner.tenants[index].limits = limits;
        }
        Ok(Session {
            shared: Arc::clone(&self.shared),
            tenant: index,
            tenant_name: tenant.to_string(),
            submitted: Arc::new(AtomicU64::new(0)),
            completed: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Server-wide statistics (queries served, rejections, queue depth and
    /// end-to-end latency percentiles) with a per-tenant breakdown.
    pub fn stats(&self) -> ServerStats {
        let inner = self.shared.inner.lock().unwrap();
        let tenants: Vec<TenantStats> = inner
            .tenants
            .iter()
            .map(|t| TenantStats {
                tenant: t.name.clone(),
                served: t.served,
                rejected: t.rejected,
                queue_depth: t.queue.len(),
                in_flight: t.in_flight,
                outcomes: t.outcomes,
                cache: t.cache.stats(),
            })
            .collect();
        let mut outcomes = OutcomeCounts::default();
        for tenant in &tenants {
            outcomes.add(&tenant.outcomes);
        }
        ServerStats {
            served: tenants.iter().map(|t| t.served).sum(),
            rejected: tenants.iter().map(|t| t.rejected).sum(),
            queue_depth: tenants.iter().map(|t| t.queue_depth).sum(),
            outcomes,
            p50_latency_ns: inner.latency.value_at_quantile(0.50),
            p95_latency_ns: inner.latency.value_at_quantile(0.95),
            p99_latency_ns: inner.latency.value_at_quantile(0.99),
            max_latency_ns: inner.latency.max(),
            tenants,
        }
    }

    /// Render the server's metrics in the Prometheus text exposition
    /// format.
    ///
    /// Counters (`morph_queries_total`, `morph_rejected_total`, cache and
    /// fusion byte counters) are incremented at the same sites as the
    /// [`OutcomeCounts`] they mirror, so the rendered totals reconcile
    /// exactly with [`Server::stats`].  Point-in-time gauges (queue depth,
    /// in-flight queries, cache shard state) are refreshed on every call.
    pub fn metrics_text(&self) -> String {
        let metrics = &self.shared.metrics;
        {
            let inner = self.shared.inner.lock().unwrap();
            metrics
                .gauge("morph_tenants", "Registered tenants", &[])
                .set(inner.tenants.len() as u64);
            for tenant in &inner.tenants {
                let labels = [("tenant", tenant.name.as_str())];
                metrics
                    .gauge(
                        "morph_queue_depth",
                        "Queries waiting in the tenant's admission queue",
                        &labels,
                    )
                    .set(tenant.queue.len() as u64);
                metrics
                    .gauge(
                        "morph_in_flight",
                        "Queries admitted (queued or executing)",
                        &labels,
                    )
                    .set(tenant.in_flight as u64);
                let cache = tenant.cache.stats();
                metrics
                    .gauge("morph_cache_hits", "Cache shard lookups that hit", &labels)
                    .set(cache.hits);
                metrics
                    .gauge(
                        "morph_cache_misses",
                        "Cache shard lookups that missed",
                        &labels,
                    )
                    .set(cache.misses);
                metrics
                    .gauge(
                        "morph_cache_bytes_used",
                        "Physical bytes held by the cache shard",
                        &labels,
                    )
                    .set(cache.bytes_used as u64);
            }
        }
        metrics.render()
    }

    /// Direct access to the server's metrics registry, for embedding extra
    /// metrics or reconciling counters in tests.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The slow-query log: the most recent queries whose worker service
    /// time reached [`ServerConfig::slow_query_threshold`] (always empty
    /// when unset), oldest first, each with its per-node profile.  Bounded
    /// at 64 entries.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        let inner = self.shared.inner.lock().unwrap();
        inner.slow_queries.iter().cloned().collect()
    }

    /// Stop accepting work, fail every queued query with
    /// [`ServerError::Shutdown`], and join the workers.  Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.shutdown = true;
            let mut pending: Vec<Job> = Vec::new();
            for tenant in inner.tenants.iter_mut() {
                let drained: Vec<Job> = tenant.queue.drain(..).collect();
                tenant.in_flight = tenant.in_flight.saturating_sub(drained.len());
                pending.extend(drained);
            }
            drop(inner);
            for job in pending {
                job.reply.fill(Err(ServerError::Shutdown));
            }
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client handle bound to one tenant.  Cheap to clone; safe to share
/// across client threads (submissions from any number of threads are
/// multiplexed onto the server's workers).
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    tenant: usize,
    tenant_name: String,
    submitted: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

/// An admitted query waiting for its result.
pub struct PendingQuery {
    shared: Arc<Shared>,
    tenant: usize,
    reply: Arc<ReplySlot>,
    governor: Arc<QueryGovernor>,
    completed: Arc<AtomicU64>,
}

impl std::fmt::Debug for PendingQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingQuery").finish_non_exhaustive()
    }
}

impl PendingQuery {
    /// Block until the query finishes and return its result columns.
    pub fn wait(self) -> Result<PlanOutput, ServerError> {
        self.wait_response().map(|response| response.output)
    }

    /// Block until the query finishes and return the full response —
    /// including the per-node profile when the query was submitted as
    /// `EXPLAIN ANALYZE SELECT ...`.
    pub fn wait_response(self) -> Result<QueryResponse, ServerError> {
        let result = self.reply.wait();
        self.completed.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Cancel the query.  A still-queued query is removed and replied to
    /// with [`ServerError::Cancelled`] immediately; an executing query's
    /// governor token is flipped, and the worker unwinds cooperatively at
    /// its next chunk or node checkpoint.  A query that already completed
    /// is unaffected.  Idempotent; [`PendingQuery::wait`] never hangs.
    pub fn cancel(&self) {
        self.governor.cancel();
        let removed = {
            let mut inner = self.shared.inner.lock().unwrap();
            let tenant = &mut inner.tenants[self.tenant];
            match tenant
                .queue
                .iter()
                .position(|job| Arc::ptr_eq(&job.reply, &self.reply))
            {
                Some(position) => {
                    tenant.queue.remove(position);
                    tenant.in_flight = tenant.in_flight.saturating_sub(1);
                    tenant.outcomes.cancelled += 1;
                    Some(tenant.name.clone())
                }
                None => None,
            }
        };
        if let Some(tenant) = removed {
            self.shared.count_outcome(&tenant, "cancelled");
            self.reply.fill(Err(ServerError::Cancelled));
        }
    }
}

/// Per-session counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries this session successfully enqueued.
    pub submitted: u64,
    /// Queries this session has collected results for.
    pub completed: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.tenant_name)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant_name
    }

    /// Enqueue `sql` without waiting.  Fails fast with
    /// [`ServerError::QueueFull`] when the tenant's queue is at capacity
    /// — or when the estimated queue wait already exceeds the tenant's
    /// deadline (load shedding; both carry a `retry_after` hint) —
    /// [`ServerError::InFlightLimit`] at the tenant's in-flight maximum,
    /// and [`ServerError::Shutdown`] when the server is stopping.
    pub fn enqueue(&self, sql: &str) -> Result<PendingQuery, ServerError> {
        let (reply, governor) = {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.shutdown {
                return Err(ServerError::Shutdown);
            }
            let capacity = self.shared.config.queue_capacity;
            let workers = self.shared.config.workers;
            let estimated_wait = inner.estimated_queue_wait(workers);
            let tenant = &mut inner.tenants[self.tenant];
            if let Some(max_in_flight) = tenant.limits.max_in_flight {
                if tenant.in_flight >= max_in_flight {
                    tenant.rejected += 1;
                    self.shared.count_rejected(&tenant.name);
                    return Err(ServerError::InFlightLimit {
                        tenant: tenant.name.clone(),
                        max_in_flight,
                    });
                }
            }
            if tenant.queue.len() >= capacity {
                tenant.rejected += 1;
                self.shared.count_rejected(&tenant.name);
                return Err(ServerError::QueueFull {
                    tenant: tenant.name.clone(),
                    capacity,
                    retry_after: estimated_wait,
                });
            }
            // Deadline-aware load shedding: when the backlog alone is
            // estimated to outlast the query's deadline, admitting it
            // would only burn a worker slot on a query doomed to time
            // out — reject now, hinting when the backlog should have
            // drained below the deadline.
            if let (Some(deadline), Some(wait)) = (tenant.limits.deadline, estimated_wait) {
                if wait > deadline {
                    tenant.rejected += 1;
                    tenant.outcomes.shed += 1;
                    self.shared.count_rejected(&tenant.name);
                    self.shared.count_outcome(&tenant.name, "shed");
                    return Err(ServerError::QueueFull {
                        tenant: tenant.name.clone(),
                        capacity,
                        retry_after: Some(wait - deadline),
                    });
                }
            }
            let mut governor = QueryGovernor::new();
            if let Some(deadline) = tenant.limits.deadline {
                governor = governor.with_deadline(deadline);
            }
            if let Some(budget) = tenant.limits.memory_budget_bytes {
                governor = governor.with_memory_budget(budget);
            }
            #[cfg(feature = "faults")]
            if let Some(plan) = &self.shared.config.fault_plan {
                governor = governor.with_fault(plan.arm(&format!("{}:{sql}", tenant.name)));
            }
            let governor = Arc::new(governor);
            let reply = ReplySlot::new();
            tenant.in_flight += 1;
            tenant.queue.push_back(Job {
                tenant: self.tenant,
                sql: sql.to_string(),
                enqueued_at: Instant::now(),
                reply: Arc::clone(&reply),
                governor: Arc::clone(&governor),
            });
            (reply, governor)
        };
        self.shared.work.notify_one();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(PendingQuery {
            shared: Arc::clone(&self.shared),
            tenant: self.tenant,
            reply,
            governor,
            completed: Arc::clone(&self.completed),
        })
    }

    /// Submit `sql` and block until its result: enqueue, wait, return the
    /// decompressed output columns.
    pub fn submit(&self, sql: &str) -> Result<PlanOutput, ServerError> {
        self.enqueue(sql)?.wait()
    }

    /// Submit `sql` and block until the full [`QueryResponse`] — like
    /// [`Session::submit`], but carrying the per-node profile when the
    /// query was prefixed `EXPLAIN ANALYZE`.
    pub fn submit_full(&self, sql: &str) -> Result<QueryResponse, ServerError> {
        self.enqueue(sql)?.wait_response()
    }

    /// This session's submission counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_sql::TableDef;
    use morph_storage::Column;
    use std::collections::HashMap;

    fn catalog() -> Catalog {
        Catalog::new().with_table(
            TableDef::new("t")
                .with_column("x")
                .with_column("y")
                .with_column("ghost"),
        )
    }

    fn source() -> Arc<dyn ColumnSource + Send + Sync> {
        let mut columns: HashMap<String, Column> = HashMap::new();
        columns.insert("x".to_string(), Column::from_vec(vec![1, 2, 3, 1, 2, 1]));
        columns.insert(
            "y".to_string(),
            Column::from_vec(vec![10, 20, 30, 40, 50, 60]),
        );
        // "ghost" is declared in the catalog but absent from the store, so
        // executing a query over it panics inside the engine — which the
        // server must catch and convert.
        Arc::new(columns)
    }

    fn server(config: ServerConfig) -> Server {
        Server::new(catalog(), source(), config)
    }

    #[test]
    fn round_robin_is_fair_and_live() {
        // Pure scheduler: starts at the cursor, wraps, skips empty queues.
        assert_eq!(next_tenant(&[], 0), None);
        assert_eq!(next_tenant(&[0, 0], 1), None);
        assert_eq!(next_tenant(&[1, 1, 1], 0), Some(0));
        assert_eq!(next_tenant(&[1, 1, 1], 2), Some(2));
        assert_eq!(next_tenant(&[0, 5, 0], 2), Some(1));
        // A tenant with a huge backlog cannot shadow later tenants: after
        // serving tenant 0 the cursor moves past it.
        assert_eq!(next_tenant(&[100, 1], 1), Some(1));
    }

    #[test]
    fn submit_executes_and_returns_rows() {
        let server = server(ServerConfig::default());
        let session = server.session("acme").unwrap();
        let output = session.submit("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        assert!(output.group_keys.is_empty());
        assert_eq!(output.values, vec![10 + 40 + 60]);
        assert_eq!(session.stats().submitted, 1);
        assert_eq!(session.stats().completed, 1);
    }

    #[test]
    fn compile_errors_are_structured() {
        let server = server(ServerConfig::default());
        let session = server.session("acme").unwrap();
        match session.submit("SELECT SUM(y) FROM tt WHERE x = 1") {
            Err(ServerError::UnknownTable { name, did_you_mean }) => {
                assert_eq!(name, "tt");
                assert_eq!(did_you_mean.as_deref(), Some("t"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match session.submit("SELECT SUM(y FROM t") {
            Err(ServerError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn execution_panics_become_errors_and_workers_survive() {
        let server = server(ServerConfig::default());
        let session = server.session("acme").unwrap();
        match session.submit("SELECT SUM(ghost) FROM t WHERE x = 1") {
            Err(ServerError::Execution { message, .. }) => {
                assert!(!message.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        // The worker that caught the panic keeps serving.
        let output = session.submit("SELECT SUM(y) FROM t WHERE x = 2").unwrap();
        assert_eq!(output.values, vec![20 + 50]);
    }

    #[test]
    fn full_queue_rejects_with_queue_full() {
        // No workers: nothing drains the queue.
        let server = server(ServerConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let session = server.session("acme").unwrap();
        let _a = session.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        let _b = session.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        match session.enqueue("SELECT SUM(y) FROM t WHERE x = 1") {
            Err(ServerError::QueueFull {
                tenant, capacity, ..
            }) => {
                assert_eq!(tenant, "acme");
                assert_eq!(capacity, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().rejected, 1);
        assert_eq!(server.stats().queue_depth, 2);
    }

    /// A source whose every column lookup sleeps: the deterministic way to
    /// keep a query in flight while the test acts on the server.
    struct SlowSource {
        inner: HashMap<String, Column>,
        delay: Duration,
    }

    impl ColumnSource for SlowSource {
        fn column(&self, name: &str) -> &Column {
            std::thread::sleep(self.delay);
            self.inner.column(name)
        }
    }

    fn slow_source(delay: Duration) -> Arc<dyn ColumnSource + Send + Sync> {
        let mut columns: HashMap<String, Column> = HashMap::new();
        columns.insert("x".to_string(), Column::from_vec(vec![1, 2, 3, 1, 2, 1]));
        columns.insert(
            "y".to_string(),
            Column::from_vec(vec![10, 20, 30, 40, 50, 60]),
        );
        Arc::new(SlowSource {
            inner: columns,
            delay,
        })
    }

    #[test]
    fn cancel_of_queued_query_replies_immediately() {
        // No workers: the query stays queued until cancelled.
        let server = server(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        });
        let session = server.session("acme").unwrap();
        let pending = session.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        assert_eq!(server.stats().queue_depth, 1);
        pending.cancel();
        assert_eq!(server.stats().queue_depth, 0);
        // Idempotent, and wait() does not hang.
        pending.cancel();
        assert_eq!(pending.wait(), Err(ServerError::Cancelled));
        let stats = server.stats();
        assert_eq!(stats.outcomes.cancelled, 1);
        assert_eq!(stats.tenants[0].in_flight, 0);
    }

    #[test]
    fn in_flight_limit_is_enforced_per_tenant() {
        let server = server(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        });
        let limited = server
            .session_with_limits(
                "limited",
                TenantLimits {
                    max_in_flight: Some(1),
                    ..TenantLimits::default()
                },
            )
            .unwrap();
        let other = server.session("other").unwrap();
        let _held = limited.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        match limited.enqueue("SELECT SUM(y) FROM t WHERE x = 1") {
            Err(ServerError::InFlightLimit {
                tenant,
                max_in_flight,
            }) => {
                assert_eq!(tenant, "limited");
                assert_eq!(max_in_flight, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The limit is per tenant, not server-wide.
        other.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
    }

    #[test]
    fn deadline_and_memory_limits_surface_structurally() {
        let server = server(ServerConfig::default());
        let deadline = server
            .session_with_limits(
                "deadline",
                TenantLimits {
                    deadline: Some(Duration::ZERO),
                    ..TenantLimits::default()
                },
            )
            .unwrap();
        match deadline.submit("SELECT SUM(y) FROM t WHERE x = 1") {
            Err(ServerError::DeadlineExceeded { deadline, .. }) => {
                assert_eq!(deadline, Duration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
        let memory = server
            .session_with_limits(
                "memory",
                TenantLimits {
                    memory_budget_bytes: Some(1),
                    ..TenantLimits::default()
                },
            )
            .unwrap();
        match memory.submit("SELECT SUM(y) FROM t WHERE x = 1") {
            Err(ServerError::MemoryExceeded { budget_bytes, .. }) => {
                assert_eq!(budget_bytes, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The workers survived both trips, and an unlimited tenant is
        // unaffected.
        let free = server.session("free").unwrap();
        let output = free.submit("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        assert_eq!(output.values, vec![110]);
        let stats = server.stats();
        assert_eq!(stats.outcomes.deadline_exceeded, 1);
        assert_eq!(stats.outcomes.memory_exceeded, 1);
        assert_eq!(stats.outcomes.ok, 1);
    }

    #[test]
    fn cancel_of_executing_query_unwinds_cooperatively() {
        let server = Server::new(
            catalog(),
            slow_source(Duration::from_millis(40)),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let session = server.session("acme").unwrap();
        let pending = session.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        // Give the worker time to take the job (the queue drains, but the
        // slow source keeps the query executing).
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.stats().queue_depth > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        pending.cancel();
        let cancelled_at = Instant::now();
        let result = pending.wait();
        let latency = cancelled_at.elapsed();
        assert_eq!(result, Err(ServerError::Cancelled));
        assert!(latency < Duration::from_millis(200), "took {latency:?}");
        // The worker survives and keeps serving.
        let output = session.submit("SELECT SUM(y) FROM t WHERE x = 2").unwrap();
        assert_eq!(output.values, vec![70]);
        assert_eq!(server.stats().outcomes.cancelled, 1);
    }

    #[test]
    fn backlogged_queries_are_shed_against_their_deadline() {
        let server = Server::new(
            catalog(),
            slow_source(Duration::from_millis(50)),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        // Hand the estimator its evidence directly: a 200 ms mean service
        // time, so one queued query predicts a 200 ms wait.
        {
            let mut inner = server.shared.inner.lock().unwrap();
            inner.service_total_ns = 200_000_000;
            inner.service_samples = 1;
        }
        let slow = server.session("slow").unwrap();
        let strict = server
            .session_with_limits(
                "strict",
                TenantLimits {
                    deadline: Some(Duration::from_millis(10)),
                    ..TenantLimits::default()
                },
            )
            .unwrap();
        // Occupy the only worker, then build a backlog of one.
        let running = slow.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.stats().queue_depth > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = slow.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        // 200 ms estimated wait > 10 ms deadline: shed at admission with a
        // drain hint, without ever burning a worker slot.
        match strict.enqueue("SELECT SUM(y) FROM t WHERE x = 1") {
            Err(ServerError::QueueFull {
                tenant,
                retry_after: Some(retry_after),
                ..
            }) => {
                assert_eq!(tenant, "strict");
                assert_eq!(retry_after, Duration::from_millis(190));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.tenants[1].outcomes.shed, 1);
        assert_eq!(stats.tenants[1].rejected, 1);
        running.wait().unwrap();
        queued.wait().unwrap();
    }

    /// Satellite: shutdown lets in-flight queries run to completion while
    /// queued ones fail fast, and nothing hangs.
    #[test]
    fn shutdown_completes_in_flight_and_fails_queued() {
        let mut server = Server::new(
            catalog(),
            slow_source(Duration::from_millis(40)),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let session = server.session("acme").unwrap();
        let executing = session.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.stats().queue_depth > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = session.enqueue("SELECT SUM(y) FROM t WHERE x = 2").unwrap();
        server.shutdown();
        // The in-flight query completed normally; the queued one was
        // failed structurally; neither wait() hangs.
        assert_eq!(executing.wait().unwrap().values, vec![110]);
        assert_eq!(queued.wait(), Err(ServerError::Shutdown));
        let stats = server.stats();
        assert_eq!(stats.outcomes.ok, 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.tenants[0].in_flight, 0);
    }

    #[test]
    fn shutdown_fails_pending_queries() {
        let mut server = server(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        });
        let session = server.session("acme").unwrap();
        let pending = session.enqueue("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        server.shutdown();
        assert_eq!(pending.wait(), Err(ServerError::Shutdown));
        match session.enqueue("SELECT SUM(y) FROM t WHERE x = 1") {
            Err(ServerError::Shutdown) => {}
            _ => panic!("enqueue after shutdown must fail"),
        }
    }

    #[test]
    fn tenant_limit_is_enforced() {
        let server = server(ServerConfig {
            max_tenants: 2,
            ..ServerConfig::default()
        });
        server.session("a").unwrap();
        server.session("b").unwrap();
        // Existing tenants reopen fine; a third is rejected.
        server.session("a").unwrap();
        match server.session("c") {
            Err(ServerError::TenantLimit { max_tenants }) => assert_eq!(max_tenants, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tenant_caches_are_isolated_shards() {
        let server = server(ServerConfig {
            workers: 1,
            cache_budget_bytes: 1 << 20,
            max_tenants: 4,
            ..ServerConfig::default()
        });
        let a = server.session("a").unwrap();
        let b = server.session("b").unwrap();
        let sql = "SELECT SUM(y) FROM t WHERE x = 1";
        // Warm tenant a twice: the second run hits a's shard.
        a.submit(sql).unwrap();
        a.submit(sql).unwrap();
        let stats = server.stats();
        let shard_a = &stats.tenants[0];
        assert_eq!(shard_a.tenant, "a");
        assert!(shard_a.cache.hits > 0, "warm rerun should hit: {shard_a:?}");
        // Tenant b runs the same SQL but must not see a's entries.
        b.submit(sql).unwrap();
        let stats = server.stats();
        let shard_b = &stats.tenants[1];
        assert_eq!(shard_b.tenant, "b");
        assert_eq!(shard_b.cache.hits, 0, "cross-tenant leak: {shard_b:?}");
        // Shard budgets partition the configured total.
        let per_shard = (1 << 20) / 4;
        let inner = server.shared.inner.lock().unwrap();
        for tenant in &inner.tenants {
            assert_eq!(tenant.cache.budget_bytes(), per_shard);
        }
    }

    #[test]
    fn admission_config_reaches_tenant_shards() {
        let server = server(ServerConfig {
            workers: 1,
            cache_admission: CacheConfig::new(u64::MAX, usize::MAX),
            ..ServerConfig::default()
        });
        let session = server.session("acme").unwrap();
        let sql = "SELECT SUM(y) FROM t WHERE x = 1";
        session.submit(sql).unwrap();
        session.submit(sql).unwrap();
        let stats = server.stats();
        let shard = &stats.tenants[0];
        // Impossible thresholds: every subplan result is skipped, so the
        // warm rerun cannot hit (format decisions may still be cached).
        assert!(
            shard.cache.admission_skipped > 0,
            "thresholds not applied: {shard:?}"
        );
    }

    #[test]
    fn concurrent_submissions_from_many_threads() {
        let server = Arc::new(server(ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        }));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                let session = server.session(&format!("tenant-{}", t % 4)).unwrap();
                for _ in 0..5 {
                    let output = session.submit("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
                    assert_eq!(output.values, vec![110]);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.served, 40);
        assert!(stats.p50_latency_ns > 0);
        assert!(stats.p95_latency_ns >= stats.p50_latency_ns);
        assert!(stats.p99_latency_ns >= stats.p95_latency_ns);
        assert!(stats.max_latency_ns >= stats.p99_latency_ns);
    }

    #[test]
    fn explain_analyze_returns_a_profile() {
        let server = server(ServerConfig::default());
        let session = server.session("acme").unwrap();
        let response = session
            .submit_full("EXPLAIN ANALYZE SELECT SUM(y) FROM t WHERE x = 1")
            .unwrap();
        assert_eq!(response.output.values, vec![110]);
        let profile = response.profile.expect("EXPLAIN ANALYZE carries a profile");
        assert!(profile.starts_with("explain analyze"), "{profile}");
        assert!(profile.contains("rows"), "{profile}");
        // The profile is a side-channel: the result columns are identical
        // to the unprofiled run, and a plain SELECT has no profile.
        let plain = session
            .submit_full("SELECT SUM(y) FROM t WHERE x = 1")
            .unwrap();
        assert_eq!(plain.output, response.output);
        assert_eq!(plain.profile, None);
    }

    #[test]
    fn slow_query_log_captures_profiles() {
        let traced = server(ServerConfig {
            // Zero threshold: every query is "slow".
            slow_query_threshold: Some(Duration::ZERO),
            ..ServerConfig::default()
        });
        let session = traced.session("acme").unwrap();
        session.submit("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        let slow = traced.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].tenant, "acme");
        assert_eq!(slow[0].sql, "SELECT SUM(y) FROM t WHERE x = 1");
        assert!(slow[0].latency >= slow[0].service);
        let profile = slow[0].profile.as_deref().expect("threshold traces");
        assert!(profile.starts_with("explain analyze"), "{profile}");
        // Without a threshold nothing is logged (and nothing is traced).
        let untraced = server(ServerConfig::default());
        let session = untraced.session("acme").unwrap();
        session.submit("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        assert!(untraced.slow_queries().is_empty());
    }

    /// Every `OutcomeCounts` bucket equals its `morph_queries_total`
    /// counter cell — exercised over ok, failed, cancelled, deadline,
    /// memory and shed outcomes.
    #[test]
    fn metrics_reconcile_with_outcome_counts() {
        let server = server(ServerConfig::default());
        let ok = server.session("acme").unwrap();
        ok.submit("SELECT SUM(y) FROM t WHERE x = 1").unwrap();
        ok.submit("SELECT SUM(ghost) FROM t WHERE x = 1")
            .unwrap_err();
        let strict = server
            .session_with_limits(
                "strict",
                TenantLimits {
                    deadline: Some(Duration::ZERO),
                    memory_budget_bytes: None,
                    max_in_flight: None,
                },
            )
            .unwrap();
        strict
            .submit("SELECT SUM(y) FROM t WHERE x = 1")
            .unwrap_err();
        let tiny = server
            .session_with_limits(
                "tiny",
                TenantLimits {
                    memory_budget_bytes: Some(1),
                    ..TenantLimits::default()
                },
            )
            .unwrap();
        tiny.submit("SELECT SUM(y) FROM t WHERE x = 1").unwrap_err();

        let stats = server.stats();
        let metrics = server.metrics();
        let outcomes = [
            "ok",
            "failed",
            "cancelled",
            "deadline_exceeded",
            "memory_exceeded",
            "shed",
        ];
        for tenant in &stats.tenants {
            for outcome in outcomes {
                let counted = metrics
                    .counter_value(
                        QUERIES_TOTAL,
                        &[("tenant", tenant.tenant.as_str()), ("outcome", outcome)],
                    )
                    .unwrap_or(0);
                let expected = match outcome {
                    "ok" => tenant.outcomes.ok,
                    "failed" => tenant.outcomes.failed,
                    "cancelled" => tenant.outcomes.cancelled,
                    "deadline_exceeded" => tenant.outcomes.deadline_exceeded,
                    "memory_exceeded" => tenant.outcomes.memory_exceeded,
                    _ => tenant.outcomes.shed,
                };
                assert_eq!(counted, expected, "{}/{outcome}", tenant.tenant);
            }
        }
        assert_eq!(metrics.counter_total(QUERIES_TOTAL), stats.outcomes.total());
        assert_eq!(metrics.counter_total(REJECTED_TOTAL), stats.rejected);
        // The rendered text carries the same numbers.
        let text = server.metrics_text();
        assert!(
            text.contains("# TYPE morph_queries_total counter"),
            "{text}"
        );
        assert!(
            text.contains("morph_queries_total{outcome=\"ok\",tenant=\"acme\"} 1"),
            "{text}"
        );
        assert!(text.contains("morph_latency_ns_count 4"), "{text}");
    }
}
