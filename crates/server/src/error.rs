//! Structured server errors.
//!
//! Every failure mode of the serving path is a [`ServerError`] variant the
//! client can match on — compilation problems keep their source positions
//! and did-you-mean suggestions from `morph-sql`, admission failures name
//! the tenant and the capacity that was exceeded, and execution failures
//! carry the decoded panic message (wrapping a
//! [`DecodeError`](morph_compression::DecodeError) when a compressed
//! intermediate was corrupt).  Nothing in the server panics across the
//! session boundary.

use std::fmt;
use std::time::Duration;

use morph_compression::DecodeError;
use morph_sql::SqlError;
use morphstore_engine::ExecError;

/// An error produced by the query server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The SQL text failed to parse; positions are 1-based.
    Parse {
        /// Line of the offending token.
        line: u32,
        /// Column of the offending token.
        column: u32,
        /// What the parser expected or found.
        message: String,
    },
    /// A `FROM` table is not in the catalog.
    UnknownTable {
        /// The name as written.
        name: String,
        /// Closest catalog table, if any is plausibly near.
        did_you_mean: Option<String>,
    },
    /// A referenced column exists in none of the query's tables.
    UnknownColumn {
        /// The name as written.
        name: String,
        /// Closest column of the query's tables, if plausibly near.
        did_you_mean: Option<String>,
    },
    /// The query parses and resolves but falls outside the supported
    /// star-join subset.
    Unsupported {
        /// Why the planner rejected it.
        message: String,
    },
    /// The tenant's admission queue is at capacity — or the estimated
    /// queue wait already exceeds the query's deadline (load shedding).
    /// The query was rejected rather than enqueued (back-pressure, not an
    /// exception).
    QueueFull {
        /// The tenant whose queue is full.
        tenant: String,
        /// The configured per-tenant capacity.
        capacity: usize,
        /// Hint for the client: how long to wait before retrying, when the
        /// server can estimate it from recent service times.
        retry_after: Option<Duration>,
    },
    /// The tenant already has its configured maximum number of in-flight
    /// (queued or executing) queries.
    InFlightLimit {
        /// The tenant at its in-flight limit.
        tenant: String,
        /// The configured per-tenant in-flight maximum.
        max_in_flight: usize,
    },
    /// Opening a session for a new tenant would exceed the configured
    /// tenant limit.
    TenantLimit {
        /// The configured maximum number of tenants.
        max_tenants: usize,
    },
    /// Plan execution failed (the engine panicked); the message is the
    /// panic payload, and `decode` carries the structured
    /// [`DecodeError`] when a compressed buffer was corrupt.
    Execution {
        /// The panic message.
        message: String,
        /// The decode failure, when that is what brought execution down.
        decode: Option<DecodeError>,
    },
    /// The query was cancelled — via [`PendingQuery::cancel`]
    /// (crate::PendingQuery::cancel) while queued or executing.
    Cancelled,
    /// The query ran past its deadline (tenant limit), measured from
    /// admission so queue wait counts against it.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// Elapsed wall clock when the violation was observed.
        elapsed: Duration,
    },
    /// The query exceeded its per-query memory budget (tenant limit).
    MemoryExceeded {
        /// Bytes charged to the query when the violation was observed.
        used_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// The server shut down while the query was queued or running.
    Shutdown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at line {line}, column {column}: {message}"),
            ServerError::UnknownTable { name, did_you_mean } => {
                write!(f, "unknown table `{name}`")?;
                if let Some(suggestion) = did_you_mean {
                    write!(f, " (did you mean `{suggestion}`?)")?;
                }
                Ok(())
            }
            ServerError::UnknownColumn { name, did_you_mean } => {
                write!(f, "unknown column `{name}`")?;
                if let Some(suggestion) = did_you_mean {
                    write!(f, " (did you mean `{suggestion}`?)")?;
                }
                Ok(())
            }
            ServerError::Unsupported { message } => write!(f, "unsupported query: {message}"),
            ServerError::QueueFull {
                tenant,
                capacity,
                retry_after,
            } => {
                write!(
                    f,
                    "admission queue of tenant `{tenant}` is full ({capacity} queued queries)"
                )?;
                if let Some(retry_after) = retry_after {
                    write!(f, "; retry after {retry_after:?}")?;
                }
                Ok(())
            }
            ServerError::InFlightLimit {
                tenant,
                max_in_flight,
            } => write!(
                f,
                "tenant `{tenant}` is at its in-flight limit ({max_in_flight} queries)"
            ),
            ServerError::TenantLimit { max_tenants } => {
                write!(f, "tenant limit reached ({max_tenants} tenants)")
            }
            ServerError::Execution { message, decode } => {
                write!(f, "query execution failed: {message}")?;
                if let Some(decode) = decode {
                    write!(f, " ({decode})")?;
                }
                Ok(())
            }
            ServerError::Cancelled => write!(f, "query cancelled"),
            ServerError::DeadlineExceeded { deadline, elapsed } => write!(
                f,
                "query deadline exceeded: ran {elapsed:?} against a deadline of {deadline:?}"
            ),
            ServerError::MemoryExceeded {
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "query memory budget exceeded: {used_bytes} bytes used, budget {budget_bytes}"
            ),
            ServerError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl From<ExecError> for ServerError {
    fn from(error: ExecError) -> ServerError {
        match error {
            ExecError::Cancelled => ServerError::Cancelled,
            ExecError::DeadlineExceeded { deadline, elapsed } => {
                ServerError::DeadlineExceeded { deadline, elapsed }
            }
            ExecError::MemoryExceeded {
                used_bytes,
                budget_bytes,
            } => ServerError::MemoryExceeded {
                used_bytes,
                budget_bytes,
            },
            ExecError::Decode(decode) => ServerError::from(decode),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SqlError> for ServerError {
    fn from(error: SqlError) -> ServerError {
        match error {
            SqlError::Parse {
                line,
                column,
                message,
            } => ServerError::Parse {
                line,
                column,
                message,
            },
            SqlError::UnknownTable { name, did_you_mean } => {
                ServerError::UnknownTable { name, did_you_mean }
            }
            SqlError::UnknownColumn { name, did_you_mean } => {
                ServerError::UnknownColumn { name, did_you_mean }
            }
            SqlError::Unsupported { message } => ServerError::Unsupported { message },
            SqlError::InvalidPlan { error } => ServerError::Execution {
                message: format!("compiled plan failed verification: {error}"),
                decode: None,
            },
        }
    }
}

impl From<DecodeError> for ServerError {
    fn from(error: DecodeError) -> ServerError {
        ServerError::Execution {
            message: error.to_string(),
            decode: Some(error),
        }
    }
}

/// Convert a caught panic payload into an [`ServerError::Execution`],
/// preserving a [`DecodeError`] payload structurally.
pub(crate) fn execution_error(payload: Box<dyn std::any::Any + Send>) -> ServerError {
    let payload = match payload.downcast::<DecodeError>() {
        Ok(decode) => return ServerError::from(*decode),
        Err(payload) => payload,
    };
    let message = if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else {
        "query execution panicked".to_string()
    };
    ServerError::Execution {
        message,
        decode: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_keep_positions() {
        let error = ServerError::from(morph_sql::parse("SELECT a\nFROM").unwrap_err());
        match &error {
            ServerError::Parse { line, column, .. } => assert_eq!((*line, *column), (2, 5)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(error.to_string().contains("line 2, column 5"));
    }

    #[test]
    fn unknown_names_keep_suggestions() {
        let error = ServerError::UnknownTable {
            name: "lineorderz".to_string(),
            did_you_mean: Some("lineorder".to_string()),
        };
        assert!(error.to_string().contains("did you mean `lineorder`?"));
        let error = ServerError::UnknownColumn {
            name: "lo_revenu".to_string(),
            did_you_mean: None,
        };
        assert_eq!(error.to_string(), "unknown column `lo_revenu`");
    }

    #[test]
    fn queue_full_names_tenant_and_capacity() {
        let error = ServerError::QueueFull {
            tenant: "acme".to_string(),
            capacity: 4,
            retry_after: None,
        };
        let text = error.to_string();
        assert!(text.contains("acme") && text.contains('4'), "{text}");
        let error = ServerError::QueueFull {
            tenant: "acme".to_string(),
            capacity: 4,
            retry_after: Some(Duration::from_millis(12)),
        };
        assert!(error.to_string().contains("retry after"), "{error}");
    }

    #[test]
    fn governance_errors_map_structurally() {
        assert_eq!(
            ServerError::from(ExecError::Cancelled),
            ServerError::Cancelled
        );
        let deadline = ExecError::DeadlineExceeded {
            deadline: Duration::from_millis(5),
            elapsed: Duration::from_millis(9),
        };
        match ServerError::from(deadline) {
            ServerError::DeadlineExceeded { deadline, elapsed } => {
                assert_eq!(deadline, Duration::from_millis(5));
                assert_eq!(elapsed, Duration::from_millis(9));
            }
            other => panic!("unexpected {other:?}"),
        }
        let memory = ExecError::MemoryExceeded {
            used_bytes: 2048,
            budget_bytes: 1024,
        };
        match ServerError::from(memory) {
            ServerError::MemoryExceeded {
                used_bytes,
                budget_bytes,
            } => assert_eq!((used_bytes, budget_bytes), (2048, 1024)),
            other => panic!("unexpected {other:?}"),
        }
        let decode = DecodeError::CorruptHeader {
            format: "fault-injection",
            detail: "injected".to_string(),
        };
        match ServerError::from(ExecError::Decode(decode.clone())) {
            ServerError::Execution {
                decode: Some(inner),
                ..
            } => assert_eq!(inner, decode),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_errors_are_wrapped_structurally() {
        let decode = DecodeError::CorruptHeader {
            format: "rle",
            detail: "zero run length".to_string(),
        };
        let error = ServerError::from(decode.clone());
        match &error {
            ServerError::Execution {
                decode: Some(inner),
                ..
            } => assert_eq!(*inner, decode),
            other => panic!("unexpected {other:?}"),
        }
        assert!(error.to_string().contains("corrupt rle header"));
    }

    #[test]
    fn panic_payloads_become_execution_errors() {
        let error = execution_error(Box::new("boom".to_string()));
        assert_eq!(
            error,
            ServerError::Execution {
                message: "boom".to_string(),
                decode: None
            }
        );
        let error = execution_error(Box::new("static boom"));
        match error {
            ServerError::Execution { message, decode } => {
                assert_eq!(message, "static boom");
                assert!(decode.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        let decode = DecodeError::Truncated {
            format: "delta",
            offset: 8,
            needed: 16,
            available: 3,
        };
        match execution_error(Box::new(decode.clone())) {
            ServerError::Execution {
                decode: Some(inner),
                ..
            } => assert_eq!(inner, decode),
            other => panic!("unexpected {other:?}"),
        }
    }
}
