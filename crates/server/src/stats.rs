//! Server- and tenant-level serving statistics.

use morph_cache::CacheStats;

/// Per-outcome query counters: every query a tenant ever admitted (and
/// every load-shed rejection) lands in exactly one bucket, so the chaos
/// harness can reconcile submissions against outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Queries that completed successfully.
    pub ok: u64,
    /// Queries that failed in compilation or execution (including decode
    /// failures and contained engine panics).
    pub failed: u64,
    /// Queries cancelled while queued or executing.
    pub cancelled: u64,
    /// Queries that ran past their deadline.
    pub deadline_exceeded: u64,
    /// Queries that exceeded their memory budget.
    pub memory_exceeded: u64,
    /// Queries rejected at admission because their estimated queue wait
    /// already exceeded their deadline (load shedding).
    pub shed: u64,
}

impl OutcomeCounts {
    /// Total queries accounted across all buckets.
    pub fn total(&self) -> u64 {
        self.ok
            + self.failed
            + self.cancelled
            + self.deadline_exceeded
            + self.memory_exceeded
            + self.shed
    }

    pub(crate) fn add(&mut self, other: &OutcomeCounts) {
        self.ok += other.ok;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.deadline_exceeded += other.deadline_exceeded;
        self.memory_exceeded += other.memory_exceeded;
        self.shed += other.shed;
    }
}

/// Statistics of one tenant.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// The tenant name.
    pub tenant: String,
    /// Queries completed for this tenant (successfully or with an
    /// execution error — both went through a worker).
    pub served: u64,
    /// Queries rejected at admission because the tenant's queue was full.
    pub rejected: u64,
    /// Queries currently waiting in the tenant's admission queue.
    pub queue_depth: usize,
    /// Queries currently admitted (queued or executing).
    pub in_flight: usize,
    /// Per-outcome breakdown of everything this tenant submitted.
    pub outcomes: OutcomeCounts,
    /// Counters of the tenant's private cache shard.
    pub cache: CacheStats,
}

impl TenantStats {
    /// Fraction of cache lookups served from the tenant's shard.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Server-wide statistics.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Total queries completed across all tenants.
    pub served: u64,
    /// Total admission rejections across all tenants.
    pub rejected: u64,
    /// Total queries currently queued across all tenants.
    pub queue_depth: usize,
    /// Per-outcome breakdown across all tenants.
    pub outcomes: OutcomeCounts,
    /// Median end-to-end latency (enqueue → reply) in nanoseconds, 0 when
    /// nothing has been served.  Quantiles are read from the shared
    /// log-linear latency histogram (bounded relative error, exact max).
    pub p50_latency_ns: u64,
    /// 95th-percentile end-to-end latency in nanoseconds.
    pub p95_latency_ns: u64,
    /// 99th-percentile end-to-end latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Largest end-to-end latency observed, in nanoseconds (exact).
    pub max_latency_ns: u64,
    /// Per-tenant breakdown, in tenant-registration order.
    pub tenants: Vec<TenantStats>,
}
