//! Property-based test of the fused pipeline executor: **any** generated
//! fusible chain — a random sequence of position-preserving stages
//! (`select` / `select_between` / `project`) over a driver scan, terminated
//! by an `agg_sum` root — produces output, footprint records and timing
//! labels byte-identical to node-by-node execution, under every execution
//! path (serial fused, parallel fused, parallel fused with morsel fan-out)
//! and several format assignments.
//!
//! The generator keeps every stage single-consumer, so the whole chain is
//! one maximal fusible region; the test asserts the region was actually
//! detected and that the fused run reports the dropped interior bytes.

use std::collections::HashMap;

use morph_compression::Format;
use morph_storage::Column;
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::plan::{PlanBuilder, QueryPlan};
use morphstore_engine::{CmpOp, ExecSettings, ExecutionContext, FusionPlan, ParallelExecutor};
use proptest::prelude::*;

const ROWS: u64 = 6000;

/// One chain stage.  Values stay below 97 (driver) or 50 (project data), so
/// constants in `0..100` cover empty, partial and full selectivity.
#[derive(Debug, Clone)]
enum Step {
    SelectLt(u64),
    SelectGt(u64),
    Between(u64, u64),
    Project,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..100).prop_map(Step::SelectLt),
        (0u64..100).prop_map(Step::SelectGt),
        (0u64..60, 0u64..50).prop_map(|(low, span)| Step::Between(low, low + span)),
        Just(Step::Project),
    ]
}

fn chain() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(step(), 1..5)
}

/// Driver values are `i % 97`; the shared project data column is longer
/// than any position stream the chain can produce and holds values `< 50`,
/// so positions stay in bounds no matter how selects and projects nest.
fn source() -> HashMap<String, Column> {
    let mut columns = HashMap::new();
    columns.insert(
        "x".to_string(),
        Column::from_vec((0..ROWS).map(|i| i % 97).collect()),
    );
    columns.insert(
        "d".to_string(),
        Column::from_vec((0..ROWS).map(|i| i % 50).collect()),
    );
    columns
}

fn build_chain(steps: &[Step]) -> QueryPlan {
    let mut b = PlanBuilder::new("chain");
    let x = b.scan("x");
    let d = b.scan("d");
    let mut current = x;
    for (i, s) in steps.iter().enumerate() {
        current = match s {
            Step::SelectLt(c) => b.select(&format!("s{i}"), current, CmpOp::Lt, *c),
            Step::SelectGt(c) => b.select(&format!("s{i}"), current, CmpOp::Gt, *c),
            Step::Between(low, high) => b.select_between(&format!("s{i}"), current, *low, *high),
            Step::Project => b.project(&format!("s{i}"), d, current),
        };
    }
    let total = b.agg_sum("total", current);
    b.finish_scalar(total)
}

type RecordRow = (String, Format, usize, usize);

/// Execute `plan` and flatten the observable bookkeeping.
fn observe(
    plan: &QueryPlan,
    source: &HashMap<String, Column>,
    settings: ExecSettings,
    formats: &FormatConfig,
    threads: usize,
) -> (
    morphstore_engine::plan::PlanOutput,
    Vec<RecordRow>,
    Vec<String>,
    usize,
    u64,
) {
    let mut ctx = ExecutionContext::new(settings, formats.clone());
    let out = if threads > 1 {
        ParallelExecutor::new(threads).execute(plan, source, &mut ctx)
    } else {
        plan.execute(source, &mut ctx)
    };
    let records = ctx
        .records()
        .iter()
        .map(|r| (r.name.clone(), r.format, r.len, r.bytes))
        .collect();
    let labels = ctx.timings().iter().map(|(n, _)| n.clone()).collect();
    (
        out,
        records,
        labels,
        ctx.fused_region_count(),
        ctx.intermediate_bytes_avoided(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_fusible_chain_matches_node_by_node_execution(
        steps in chain(),
        format_pick in 0usize..3,
    ) {
        let source = source();
        let plan = build_chain(&steps);
        let formats = match format_pick {
            0 => FormatConfig::uncompressed(),
            1 => FormatConfig::with_default(Format::DynBp),
            _ => FormatConfig::with_default(Format::DeltaDynBp)
                .set("chain/s0", Format::DynBp),
        };
        let settings = if format_pick == 0 {
            ExecSettings::scalar_uncompressed()
        } else {
            ExecSettings::vectorized_compressed()
        };

        // Every generated chain is one maximal fusible region: all stages
        // are single-consumer and position-preserving over the driver scan.
        prop_assert_eq!(FusionPlan::analyze(&plan).region_count(), 1);

        let (ref_out, ref_records, ref_labels, ref_regions, _) =
            observe(&plan, &source, settings.clone(), &formats, 1);
        prop_assert_eq!(ref_regions, 0, "fusion must stay off by default");

        // The bytes a fused run avoids materialising are exactly the
        // recorded interior intermediates (every `chain/s*` edge; the root
        // is a scalar).
        let expected_avoided: u64 = ref_records
            .iter()
            .filter(|r| r.0.starts_with("chain/s"))
            .map(|r| r.3 as u64)
            .sum();

        let fused = settings.with_fusion();
        let configs = [
            (1usize, None),
            (3, None),
            (3, Some(256usize)),
        ];
        for (threads, morsel) in configs {
            let run_settings = match morsel {
                Some(threshold) => fused.clone().with_morsel_threshold(threshold),
                None => fused.clone(),
            };
            let (out, records, labels, regions, avoided) =
                observe(&plan, &source, run_settings, &formats, threads);
            prop_assert_eq!(&out, &ref_out, "threads={} morsel={:?}", threads, morsel);
            prop_assert_eq!(
                &records, &ref_records,
                "threads={} morsel={:?}", threads, morsel
            );
            prop_assert_eq!(
                &labels, &ref_labels,
                "threads={} morsel={:?}", threads, morsel
            );
            prop_assert_eq!(regions, 1, "threads={} morsel={:?}", threads, morsel);
            prop_assert_eq!(
                avoided, expected_avoided,
                "threads={} morsel={:?}", threads, morsel
            );
        }
    }
}
