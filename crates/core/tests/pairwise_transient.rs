//! CI assertion for the streaming pairwise reader: the transient carry
//! buffers of every position-wise binary operator stay O(chunk), never
//! O(column).
//!
//! `ops::transient` records the high-water mark of every pairwise carry
//! buffer (serial `zip_chunks`, the sorted merges, and the partitioned
//! calc/intersect kernels).  This test drives all of them over columns far
//! larger than one chunk — in every format — and asserts the recorded peak
//! never exceeds one chunk-sized carry.  Run in release mode by CI, where
//! a regression back to `decompress()`-one-side would also be invisible to
//! the determinism suites (results stay identical, memory does not).

use morph_compression::Format;
use morph_storage::Column;
use morphstore_engine::ops::partitioned;
use morphstore_engine::{
    agg_sum_grouped, calc_binary, group_by, group_by_refine, intersect_sorted, merge_sorted,
    transient, BinaryOp, ExecSettings,
};

/// ~64 chunks worth of data: any O(column) transient buffer would exceed
/// the carry bound by more than an order of magnitude.
const N: usize = 128 * 1024;

/// The peak counter is process-global; the harness runs tests on parallel
/// threads, so each test holds this lock while it resets and reads it.
static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn assert_bound(context: &str) {
    let peak = transient::peak_bytes();
    assert!(
        peak <= transient::CARRY_BOUND_BYTES,
        "{context}: peak transient carry of {peak} bytes exceeds the \
         one-chunk bound of {} bytes",
        transient::CARRY_BOUND_BYTES
    );
    assert!(
        peak > 0,
        "{context}: nothing was recorded — instrumentation lost?"
    );
    transient::reset();
}

#[test]
fn pairwise_operators_stay_chunk_bounded_in_every_format() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let settings = ExecSettings::vectorized_compressed();
    let lhs_values: Vec<u64> = (0..N as u64).map(|i| (i * 131) % 10_000).collect();
    let rhs_values: Vec<u64> = (0..N as u64).map(|i| (i * 31) % 4000 + 1).collect();
    let max = 10_000;
    for format in Format::all_formats(max) {
        let lhs = Column::compress(&lhs_values, &format);
        // A different chunk grid on the pulled side.
        let rhs = Column::compress(&rhs_values, &Format::DeltaDynBp);

        transient::reset();
        let out = calc_binary(BinaryOp::Add, &lhs, &rhs, &Format::DynBp, &settings);
        assert_eq!(out.logical_len(), N);
        assert_bound(&format!("calc_binary on {format}"));

        let grouped = group_by(
            &Column::compress(&(0..N as u64).map(|i| i % 16).collect::<Vec<_>>(), &format),
            (&Format::StaticBp(8), &Format::DeltaDynBp),
            &settings,
        );
        transient::reset();
        let refined = group_by_refine(
            &grouped,
            &rhs,
            (&Format::StaticBp(20), &Format::DeltaDynBp),
            &settings,
        );
        assert!(refined.group_count >= grouped.group_count);
        assert_bound(&format!("group_by_refine on {format}"));

        transient::reset();
        let sums = agg_sum_grouped(
            &grouped.group_ids,
            &lhs,
            grouped.group_count,
            &Format::Uncompressed,
            &settings,
        );
        assert_eq!(sums.logical_len(), grouped.group_count);
        assert_bound(&format!("agg_sum_grouped on {format}"));
    }
}

#[test]
fn sorted_merges_stay_chunk_bounded() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let settings = ExecSettings::vectorized_compressed();
    let a_values: Vec<u64> = (0..3 * N as u64).filter(|i| i % 3 == 0).collect();
    let b_values: Vec<u64> = (0..3 * N as u64).filter(|i| i % 5 == 0).collect();
    for format in [Format::DeltaDynBp, Format::DynBp, Format::Uncompressed] {
        let a = Column::compress(&a_values, &format);
        let b = Column::compress(&b_values, &format);

        transient::reset();
        let both = intersect_sorted(&a, &b, &Format::DeltaDynBp, &settings);
        assert!(!both.is_empty());
        assert_bound(&format!("intersect_sorted on {format}"));

        transient::reset();
        let either = merge_sorted(&a, &b, &Format::DeltaDynBp, &settings);
        assert!(either.logical_len() >= a.logical_len());
        assert_bound(&format!("merge_sorted on {format}"));
    }
}

#[test]
fn partitioned_pairwise_kernels_stay_chunk_bounded() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let settings = ExecSettings::vectorized_compressed();
    let lhs_values: Vec<u64> = (0..N as u64).map(|i| (i * 131) % 10_000).collect();
    let rhs_values: Vec<u64> = (0..N as u64).map(|i| (i * 31) % 4000 + 1).collect();
    let lhs = Column::compress(&lhs_values, &Format::DynBp);
    let rhs = Column::compress(&rhs_values, &Format::DeltaDynBp);
    transient::reset();
    for range in partitioned::partition(&lhs, 4) {
        let part = partitioned::calc_binary_part(
            BinaryOp::Mul,
            &lhs,
            &rhs,
            range,
            &Format::DynBp,
            settings.style,
        );
        assert!(!part.is_empty());
    }
    assert_bound("calc_binary_part");

    let a_values: Vec<u64> = (0..3 * N as u64).filter(|i| i % 3 == 0).collect();
    let b_values: Vec<u64> = (0..3 * N as u64).filter(|i| i % 5 == 0).collect();
    let a = Column::compress(&a_values, &Format::DeltaDynBp);
    let b = Column::compress(&b_values, &Format::DeltaDynBp);
    transient::reset();
    for range in partitioned::partition(&a, 4) {
        let part = partitioned::intersect_sorted_part(&a, &b, range, &Format::DeltaDynBp);
        assert!(!part.is_empty());
    }
    assert_bound("intersect_sorted_part");
}
