//! Property-based tests of cache-key canonicalisation, through the public
//! executor API:
//!
//! * **same subplan ⇒ same key** — re-executing an identical plan under an
//!   identical format assignment hits on every non-scan node, and the hits
//!   are byte-identical to recomputation (results *and* footprint records
//!   match a cache-free reference execution);
//! * **any differing parameter / format / generation ⇒ different key** — a
//!   mutated plan executed against the *polluted* cache still produces
//!   exactly what a fresh cache-free execution produces.  If two distinct
//!   subplans ever aliased one key, the stale hit would leak the other
//!   subplan's bytes into the result or the records, and the comparison
//!   would fail;
//! * **fusion is key-invariant** — the plan family's fusible tail
//!   (`project → agg_sum` over the intersect output) caches its members
//!   under the same per-node keys whether the region executes fused or
//!   node-by-node, in both directions (unfused inserts serve fused warm
//!   runs and vice versa), and never enables stale reuse for a mutated
//!   plan.

use std::collections::HashMap;
use std::sync::Arc;

use morph_compression::Format;
use morph_storage::Column;
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::plan::{PlanBuilder, QueryPlan};
use morphstore_engine::{CmpOp, ExecSettings, ExecutionContext, QueryCache};
use proptest::prelude::*;

/// A small parameterised plan family: two filtered scans intersected,
/// projected and summed — every operator parameter and edge format below is
/// part of the canonical key.
#[derive(Debug, Clone, PartialEq)]
struct PlanParams {
    select_constant: u64,
    between_low: u64,
    between_span: u64,
    pos_format: usize,
    out_format: usize,
}

const EDGE_FORMATS: [Format; 4] = [
    Format::Uncompressed,
    Format::DynBp,
    Format::DeltaDynBp,
    Format::Rle,
];

fn params() -> impl Strategy<Value = PlanParams> {
    (0u64..97, 0u64..50, 0u64..60, 0usize..4, 0usize..4).prop_map(
        |(select_constant, between_low, between_span, pos_format, out_format)| PlanParams {
            select_constant,
            between_low,
            between_span,
            pos_format,
            out_format,
        },
    )
}

fn build_plan(p: &PlanParams) -> QueryPlan {
    let mut b = PlanBuilder::new("prop");
    let x = b.scan("x");
    let y = b.scan("y");
    let left = b.select("left", x, CmpOp::Lt, p.select_constant);
    let right = b.select_between("right", y, p.between_low, p.between_low + p.between_span);
    let both = b.intersect_sorted("both", left, right);
    let projected = b.project("projected", y, both);
    let total = b.agg_sum("total", projected);
    b.finish_scalar(total)
}

fn formats_of(p: &PlanParams) -> FormatConfig {
    FormatConfig::with_default(Format::DynBp)
        .set("prop/left", EDGE_FORMATS[p.pos_format])
        .set("prop/projected", EDGE_FORMATS[p.out_format])
}

fn source() -> HashMap<String, Column> {
    let mut columns = HashMap::new();
    columns.insert(
        "x".to_string(),
        Column::from_vec((0..3000u64).map(|i| i % 97).collect()),
    );
    columns.insert(
        "y".to_string(),
        Column::from_vec((0..3000u64).map(|i| (i * 7) % 113).collect()),
    );
    columns
}

/// One footprint record, flattened for comparison.
type RecordRow = (String, Format, usize, usize);

/// Execute under the given cache (or none), returning the output, the
/// record sequence and the number of cache hits.
fn run(
    p: &PlanParams,
    source: &HashMap<String, Column>,
    cache: Option<&Arc<QueryCache>>,
    fused: bool,
) -> (morphstore_engine::plan::PlanOutput, Vec<RecordRow>, usize) {
    let mut settings = ExecSettings::vectorized_compressed();
    if fused {
        settings = settings.with_fusion();
    }
    if let Some(cache) = cache {
        settings = settings.with_cache(Arc::clone(cache));
    }
    let mut ctx = ExecutionContext::new(settings, formats_of(p));
    let out = build_plan(p).execute(source, &mut ctx);
    let records = ctx
        .records()
        .iter()
        .map(|r| (r.name.clone(), r.format, r.len, r.bytes))
        .collect();
    (out, records, ctx.cache_hit_count())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identical_subplans_hit_and_any_difference_misses(
        original in params(),
        mutated in params(),
    ) {
        let source = source();
        let cache = Arc::new(QueryCache::unbounded());

        // Cache-free references for both parameterisations.
        let (ref_out, ref_records, _) = run(&original, &source, None, false);
        let (mut_out, mut_records, _) = run(&mutated, &source, None, false);

        // Cold run populates; identical warm run hits on all 5 non-scan
        // nodes, byte-identical to the reference.
        let (cold_out, cold_records, cold_hits) = run(&original, &source, Some(&cache), false);
        prop_assert_eq!(cold_hits, 0);
        prop_assert_eq!(&cold_out, &ref_out);
        prop_assert_eq!(&cold_records, &ref_records);
        let (warm_out, warm_records, warm_hits) = run(&original, &source, Some(&cache), false);
        prop_assert_eq!(warm_hits, 5, "same subplan must produce the same keys");
        prop_assert_eq!(&warm_out, &ref_out);
        prop_assert_eq!(&warm_records, &ref_records);

        // The mutated plan against the polluted cache must behave exactly
        // like its own fresh execution — and when anything differs, the
        // mutated root select (or range / format) must not hit.
        let (poll_out, poll_records, poll_hits) = run(&mutated, &source, Some(&cache), false);
        prop_assert_eq!(&poll_out, &mut_out);
        prop_assert_eq!(&poll_records, &mut_records);
        if mutated == original {
            prop_assert_eq!(poll_hits, 5);
        }

        // Bumping a base generation invalidates every subplan scanning that
        // column.  Only the `right` select depends on `y` alone, so after
        // bumping `x` at most that one node can still hit; bumping `y` too
        // leaves nothing.
        cache.bump_generation("x");
        let (after_out, after_records, after_hits) = run(&original, &source, Some(&cache), false);
        prop_assert!(after_hits <= 1, "only the y-only subplan may survive an x bump");
        prop_assert_eq!(&after_out, &ref_out);
        prop_assert_eq!(&after_records, &ref_records);
        // The post-bump run re-populated every entry under the new `x`
        // generation; bumping `y` now drops everything that scans `y`,
        // leaving exactly the x-only `left` select to hit.
        cache.bump_generation("y");
        let (_, _, final_hits) = run(&original, &source, Some(&cache), false);
        prop_assert_eq!(final_hits, 1, "only the x-only subplan survives a y bump");
    }

    #[test]
    fn fusion_never_changes_cache_keys_or_reuses_stale_entries(
        original in params(),
        mutated in params(),
    ) {
        let source = source();

        // Cache-free references: fusion is output- and record-invariant.
        let (ref_out, ref_records, _) = run(&original, &source, None, false);
        let (fused_out, fused_records, _) = run(&original, &source, None, true);
        prop_assert_eq!(&fused_out, &ref_out);
        prop_assert_eq!(&fused_records, &ref_records);

        // An unfused cold run populates; the *fused* warm run hits on all 5
        // non-scan nodes (the fully-cached region is demoted back to
        // node-by-node hits) — fusion must not change a single key.
        let cache = Arc::new(QueryCache::unbounded());
        let (_, _, cold_hits) = run(&original, &source, Some(&cache), false);
        prop_assert_eq!(cold_hits, 0);
        let (warm_out, warm_records, warm_hits) = run(&original, &source, Some(&cache), true);
        prop_assert_eq!(warm_hits, 5, "fused warm run must hit every unfused key");
        prop_assert_eq!(&warm_out, &ref_out);
        prop_assert_eq!(&warm_records, &ref_records);

        // The other direction: a fused cold run inserts every region member
        // under its unfused key, so an unfused warm run hits all 5.
        let cache = Arc::new(QueryCache::unbounded());
        let (_, _, fused_cold_hits) = run(&original, &source, Some(&cache), true);
        prop_assert_eq!(fused_cold_hits, 0);
        let (unfused_out, unfused_records, unfused_hits) =
            run(&original, &source, Some(&cache), false);
        prop_assert_eq!(unfused_hits, 5, "unfused warm run must hit the fused inserts");
        prop_assert_eq!(&unfused_out, &ref_out);
        prop_assert_eq!(&unfused_records, &ref_records);

        // No stale reuse: a mutated plan executed fused against the
        // fused-populated cache behaves exactly like its own cache-free
        // execution.
        let (mut_out, mut_records, _) = run(&mutated, &source, None, false);
        let (poll_out, poll_records, poll_hits) = run(&mutated, &source, Some(&cache), true);
        prop_assert_eq!(&poll_out, &mut_out);
        prop_assert_eq!(&poll_records, &mut_records);
        if mutated == original {
            prop_assert_eq!(poll_hits, 5);
        }
    }
}
