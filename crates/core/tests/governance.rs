//! Governance and fault-injection tests through the public executor API
//! (`--features faults`).
//!
//! Covers the full lifecycle contract end to end on real multi-node plans:
//! cancellation, deadlines and memory budgets surface as structured
//! [`ExecError`]s from `try_execute` on both executors (serial, parallel and
//! morsel-parallel); injected decode faults surface structurally while
//! injected plain panics resume as panics without poisoning anything; a
//! cooperative cancel returns well inside the 50 ms bound; and — the cache
//! consistency property — *any* cancel/deadline interleaving mid-plan
//! leaves a shared [`QueryCache`] consistent: no partially computed subplan
//! is ever admitted, and an identical re-query recomputes byte-identical
//! results.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use morph_compression::{DecodeError, Format};
use morph_storage::Column;
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::faults::{FaultKind, FaultPlan, FaultSite};
use morphstore_engine::plan::{PlanBuilder, PlanOutput, QueryPlan};
use morphstore_engine::{
    CmpOp, ExecError, ExecSettings, ExecutionContext, ParallelExecutor, QueryCache, QueryGovernor,
};
use proptest::prelude::*;

/// A five-operator plan over two scans: enough nodes and chunks that every
/// checkpoint family fires several times per execution.
fn build_plan() -> QueryPlan {
    let mut b = PlanBuilder::new("gov");
    let x = b.scan("x");
    let y = b.scan("y");
    let left = b.select("left", x, CmpOp::Lt, 80);
    let right = b.select_between("right", y, 10, 90);
    let both = b.intersect_sorted("both", left, right);
    let projected = b.project("projected", y, both);
    let total = b.agg_sum("total", projected);
    b.finish_scalar(total)
}

fn source() -> HashMap<String, Column> {
    let mut columns = HashMap::new();
    columns.insert(
        "x".to_string(),
        Column::from_vec((0..20_000u64).map(|i| i % 97).collect()),
    );
    columns.insert(
        "y".to_string(),
        Column::from_vec((0..20_000u64).map(|i| (i * 7) % 113).collect()),
    );
    columns
}

fn formats() -> FormatConfig {
    FormatConfig::with_default(Format::DynBp)
}

/// One footprint record, flattened for byte-identical comparison.
type RecordRow = (String, Format, usize, usize);

fn rows(ctx: &ExecutionContext) -> Vec<RecordRow> {
    ctx.records()
        .iter()
        .map(|r| (r.name.clone(), r.format, r.len, r.bytes))
        .collect()
}

/// Serial `try_execute` under `settings` against the shared plan/source.
fn run(settings: ExecSettings) -> (Result<PlanOutput, ExecError>, Vec<RecordRow>) {
    let mut ctx = ExecutionContext::new(settings, formats());
    let result = build_plan().try_execute(&source(), &mut ctx);
    let records = rows(&ctx);
    (result, records)
}

fn governed(governor: &Arc<QueryGovernor>) -> ExecSettings {
    ExecSettings::vectorized_compressed().with_governor(Arc::clone(governor))
}

/// Arm one targeted fault and hand it to a fresh governor.
fn governor_with_fault(site: FaultSite, at: u64, kind: FaultKind) -> Arc<QueryGovernor> {
    let plan = FaultPlan::targeted();
    plan.inject("gov", site, at, kind);
    Arc::new(QueryGovernor::new().with_fault(plan.arm("gov")))
}

#[test]
fn ungoverned_and_governed_runs_are_byte_identical() {
    let (reference, reference_records) = run(ExecSettings::vectorized_compressed());
    let governor = Arc::new(QueryGovernor::new());
    let (governed_out, governed_records) = run(governed(&governor));
    assert_eq!(governed_out, reference);
    assert_eq!(governed_records, reference_records);
    // The checkpoints actually fired — governance was live, not bypassed.
    assert!(governor.chunk_checkpoints() > 10, "chunk checkpoints fired");
    assert_eq!(governor.node_checkpoints(), 7, "one per plan node");
    assert!(governor.used_bytes() > 0, "intermediates were charged");
}

#[test]
fn pre_cancelled_governor_fails_before_any_work() {
    let governor = Arc::new(QueryGovernor::new());
    governor.cancel();
    let (result, records) = run(governed(&governor));
    assert_eq!(result, Err(ExecError::Cancelled));
    assert!(records.is_empty(), "no node completed: {records:?}");
}

#[test]
fn cancel_fault_mid_plan_returns_cancelled() {
    let governor = governor_with_fault(FaultSite::Chunk, 4, FaultKind::Cancel);
    let (result, _) = run(governed(&governor));
    assert_eq!(result, Err(ExecError::Cancelled));
    assert!(governor.is_cancelled());
}

#[test]
fn deadline_trips_after_injected_delay() {
    let governor = Arc::new(
        QueryGovernor::new()
            .with_deadline(Duration::from_millis(1))
            .with_fault(Some(morphstore_engine::faults::ArmedFault {
                site: FaultSite::Chunk,
                at: 2,
                kind: FaultKind::Delay(Duration::from_millis(10)),
                query: "gov".to_string(),
            })),
    );
    let (result, _) = run(governed(&governor));
    match result {
        Err(ExecError::DeadlineExceeded { deadline, elapsed }) => {
            assert_eq!(deadline, Duration::from_millis(1));
            assert!(elapsed >= Duration::from_millis(1));
        }
        other => panic!("expected deadline violation, got {other:?}"),
    }
}

#[test]
fn memory_budget_trips_with_structured_accounting() {
    let governor = Arc::new(QueryGovernor::new().with_memory_budget(64));
    let (result, _) = run(governed(&governor));
    match result {
        Err(ExecError::MemoryExceeded {
            used_bytes,
            budget_bytes,
        }) => {
            assert!(used_bytes > budget_bytes);
            assert_eq!(budget_bytes, 64);
        }
        other => panic!("expected memory violation, got {other:?}"),
    }
}

#[test]
fn decode_fault_surfaces_structured_error() {
    let governor = governor_with_fault(FaultSite::Node, 3, FaultKind::Decode);
    let (result, _) = run(governed(&governor));
    match result {
        Err(ExecError::Decode(DecodeError::CorruptHeader { format, detail })) => {
            assert_eq!(format, "fault-injection");
            assert!(detail.contains("gov"), "{detail}");
        }
        other => panic!("expected decode fault, got {other:?}"),
    }
}

#[test]
fn panic_fault_resumes_as_a_genuine_panic() {
    let governor = governor_with_fault(FaultSite::Chunk, 1, FaultKind::Panic);
    let payload = std::panic::catch_unwind(|| run(governed(&governor)))
        .expect_err("injected panic must escape try_execute");
    let message = payload
        .downcast_ref::<String>()
        .expect("plain panic payload");
    assert!(message.contains("injected panic"), "{message}");
}

#[test]
fn parallel_executors_observe_the_same_governance() {
    let (reference, _) = run(ExecSettings::vectorized_compressed());
    let reference = reference.expect("ungoverned run succeeds");
    let executor = ParallelExecutor::new(4);
    for morsels in [None, Some(1024)] {
        let settings = |governor: &Arc<QueryGovernor>| {
            let mut s = governed(governor);
            if let Some(threshold) = morsels {
                s = s.with_morsel_threshold(threshold);
            }
            s
        };

        // A cancel fault trips, and the pool drains without poisoning.
        let governor = governor_with_fault(FaultSite::Chunk, 4, FaultKind::Cancel);
        let mut ctx = ExecutionContext::new(settings(&governor), formats());
        let result = executor.try_execute(&build_plan(), &source(), &mut ctx);
        assert_eq!(result, Err(ExecError::Cancelled), "morsels={morsels:?}");

        // A decode fault surfaces structurally on the same executor.
        let governor = governor_with_fault(FaultSite::Chunk, 2, FaultKind::Decode);
        let mut ctx = ExecutionContext::new(settings(&governor), formats());
        let result = executor.try_execute(&build_plan(), &source(), &mut ctx);
        assert!(
            matches!(result, Err(ExecError::Decode(_))),
            "morsels={morsels:?}: {result:?}"
        );

        // The very same executor then completes a clean governed run,
        // byte-identical to the serial reference.
        let governor = Arc::new(QueryGovernor::new());
        let mut ctx = ExecutionContext::new(settings(&governor), formats());
        let output = executor
            .try_execute(&build_plan(), &source(), &mut ctx)
            .expect("clean run succeeds after faults");
        assert_eq!(output, reference, "morsels={morsels:?}");
    }
}

#[test]
fn cross_thread_cancel_is_observed_within_the_latency_bound() {
    // Slow the query down with an injected mid-plan delay, cancel from
    // another thread while it sleeps, and verify the cooperative unwind
    // completes within 50 ms of the trigger.  The margins are generous:
    // the delay (200 ms) dwarfs the cancel point (20 ms in).
    let plan = FaultPlan::targeted();
    plan.inject(
        "gov",
        FaultSite::Chunk,
        2,
        FaultKind::Delay(Duration::from_millis(200)),
    );
    let governor = Arc::new(QueryGovernor::new().with_fault(plan.arm("gov")));
    let canceller = {
        let governor = Arc::clone(&governor);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            governor.cancel();
            Instant::now()
        })
    };
    let (result, _) = run(governed(&governor));
    let returned = Instant::now();
    let triggered = canceller.join().expect("canceller thread");
    assert_eq!(result, Err(ExecError::Cancelled));
    let latency = returned.duration_since(triggered);
    assert!(
        latency < Duration::from_millis(50),
        "cancel took {latency:?} to surface"
    );
}

/// Run the shared plan with `cache` attached and, optionally, a governor.
fn run_cached(
    cache: &Arc<QueryCache>,
    governor: Option<Arc<QueryGovernor>>,
) -> (Result<PlanOutput, ExecError>, Vec<RecordRow>, usize) {
    let mut settings = ExecSettings::vectorized_compressed().with_cache(Arc::clone(cache));
    if let Some(governor) = governor {
        settings = settings.with_governor(governor);
    }
    let mut ctx = ExecutionContext::new(settings, formats());
    let result = build_plan().try_execute(&source(), &mut ctx);
    let hits = ctx.cache_hit_count();
    let records = rows(&ctx);
    (result, records, hits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite: any cancel/deadline interleaving mid-plan leaves the
    // query cache consistent.  A fault (cancel or delay-past-deadline) is
    // armed at an arbitrary checkpoint; whatever happens, an identical
    // ungoverned re-query against the *same* cache must reproduce the
    // cache-free reference byte for byte — a partially computed subplan
    // admitted to the cache would surface here as a divergent record or
    // output.
    #[test]
    fn interrupted_queries_never_corrupt_the_cache(
        site_pick in 0usize..2,
        at in 1u64..80,
        kind_pick in 0usize..2,
    ) {
        let site = [FaultSite::Chunk, FaultSite::Node][site_pick];
        let (reference, reference_records) = run(ExecSettings::vectorized_compressed());
        let reference = reference.expect("reference run succeeds");

        let cache = Arc::new(QueryCache::unbounded());
        let governor = if kind_pick == 0 {
            governor_with_fault(site, at, FaultKind::Cancel)
        } else {
            let plan = FaultPlan::targeted();
            plan.inject("gov", site, at, FaultKind::Delay(Duration::from_millis(5)));
            Arc::new(
                QueryGovernor::new()
                    .with_deadline(Duration::from_millis(1))
                    .with_fault(plan.arm("gov")),
            )
        };

        // The governed run either completes identically (fault point past
        // the plan's checkpoints) or stops with the structured error.
        let (interrupted, _, _) = run_cached(&cache, Some(governor));
        match &interrupted {
            Ok(output) => prop_assert_eq!(output, &reference),
            Err(ExecError::Cancelled) | Err(ExecError::DeadlineExceeded { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }

        // Identical ungoverned re-query on the same cache: byte-identical
        // to the cache-free reference, wherever the interruption landed.
        let (requery, requery_records, _) = run_cached(&cache, None);
        prop_assert_eq!(requery.expect("re-query succeeds"), reference.clone());
        prop_assert_eq!(&requery_records, &reference_records);

        // And the now-warm cache replays the same bytes again.
        let (warm, warm_records, warm_hits) = run_cached(&cache, None);
        prop_assert_eq!(warm.expect("warm run succeeds"), reference);
        prop_assert_eq!(&warm_records, &reference_records);
        prop_assert_eq!(warm_hits, 5, "all non-scan nodes hit");
    }
}
