//! Property-based test of the telemetry span tree: for **any** generated
//! fusible chain, executing under a tracer yields one span per plan node
//! whose parent edges are exactly [`QueryPlan::dependencies`] — across
//! serial, parallel, morsel-splitting and fused execution — with
//! deterministic span ids (the same plan produces the same ids on every
//! run) and byte-identical results to the untraced execution.

use std::collections::HashMap;
use std::sync::Arc;

use morph_compression::Format;
use morph_storage::Column;
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::plan::{PlanBuilder, QueryPlan};
use morphstore_engine::{
    CmpOp, ExecSettings, ExecutionContext, ParallelExecutor, PlanTrace, QueryTracer,
};
use proptest::prelude::*;

const ROWS: u64 = 4000;

/// One chain stage (same shape as the fusion chain proptest: every stage
/// is single-consumer and position-preserving, so fused runs exercise the
/// region-recording path too).
#[derive(Debug, Clone)]
enum Step {
    SelectLt(u64),
    SelectGt(u64),
    Between(u64, u64),
    Project,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..100).prop_map(Step::SelectLt),
        (0u64..100).prop_map(Step::SelectGt),
        (0u64..60, 0u64..50).prop_map(|(low, span)| Step::Between(low, low + span)),
        Just(Step::Project),
    ]
}

fn source() -> HashMap<String, Column> {
    let mut columns = HashMap::new();
    columns.insert(
        "x".to_string(),
        Column::from_vec((0..ROWS).map(|i| i % 97).collect()),
    );
    columns.insert(
        "d".to_string(),
        Column::from_vec((0..ROWS).map(|i| i % 50).collect()),
    );
    columns
}

fn build_chain(steps: &[Step]) -> QueryPlan {
    let mut b = PlanBuilder::new("chain");
    let x = b.scan("x");
    let d = b.scan("d");
    let mut current = x;
    for (i, s) in steps.iter().enumerate() {
        current = match s {
            Step::SelectLt(c) => b.select(&format!("s{i}"), current, CmpOp::Lt, *c),
            Step::SelectGt(c) => b.select(&format!("s{i}"), current, CmpOp::Gt, *c),
            Step::Between(low, high) => b.select_between(&format!("s{i}"), current, *low, *high),
            Step::Project => b.project(&format!("s{i}"), d, current),
        };
    }
    let total = b.agg_sum("total", current);
    b.finish_scalar(total)
}

/// Execute `plan` under a fresh tracer and return (output, trace).
fn traced_run(
    plan: &QueryPlan,
    source: &HashMap<String, Column>,
    settings: ExecSettings,
    formats: &FormatConfig,
    threads: usize,
) -> (morphstore_engine::plan::PlanOutput, Arc<PlanTrace>) {
    let tracer = Arc::new(QueryTracer::new());
    let mut ctx = ExecutionContext::new(settings.with_tracer(Arc::clone(&tracer)), formats.clone());
    let out = if threads > 1 {
        ParallelExecutor::new(threads).execute(plan, source, &mut ctx)
    } else {
        plan.execute(source, &mut ctx)
    };
    assert_eq!(tracer.traced_count(), 1);
    (
        out,
        tracer.last_trace().expect("executor finished the trace"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn span_tree_edges_match_plan_dependencies(
        steps in prop::collection::vec(step(), 1..5),
        compressed in any::<bool>(),
    ) {
        let source = source();
        let plan = build_chain(&steps);
        let deps = plan.dependencies();
        let formats = if compressed {
            FormatConfig::with_default(Format::DynBp)
        } else {
            FormatConfig::uncompressed()
        };
        let settings = if compressed {
            ExecSettings::vectorized_compressed()
        } else {
            ExecSettings::scalar_uncompressed()
        };

        // Untraced serial reference for byte-identity.
        let mut ref_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let ref_out = plan.execute(&source, &mut ref_ctx);

        let configs = [
            ("serial", settings.clone(), 1usize),
            ("serial fused", settings.clone().with_fusion(), 1),
            ("parallel", settings.clone(), 3),
            ("morsel", settings.clone().with_morsel_threshold(256), 3),
            ("parallel fused", settings.clone().with_fusion(), 3),
            (
                "morsel fused",
                settings.clone().with_fusion().with_morsel_threshold(256),
                3,
            ),
        ];
        let mut span_ids: Option<Vec<u64>> = None;
        for (name, run_settings, threads) in configs {
            let (out, trace) =
                traced_run(&plan, &source, run_settings, &formats, threads);
            prop_assert_eq!(&out, &ref_out, "{}: traced result diverged", name);
            prop_assert_eq!(trace.node_count(), deps.len(), "{}", name);
            for (index, node_deps) in deps.iter().enumerate() {
                // The topology mirrors the plan's dependency lists ...
                prop_assert_eq!(
                    &trace.topology().nodes[index].deps, node_deps,
                    "{}: node {} topology deps", name, index
                );
                // ... and the span tree's parent edges resolve to exactly
                // the span ids of those dependencies.
                let parents: Vec<u64> =
                    node_deps.iter().map(|&d| trace.span_id(d)).collect();
                prop_assert_eq!(
                    trace.parent_span_ids(index), parents,
                    "{}: node {} parent spans", name, index
                );
                prop_assert!(
                    trace.node(index).is_recorded(),
                    "{}: node {} has no span", name, index
                );
            }
            // Span ids are a pure function of the plan's structural
            // fingerprint: identical across every execution strategy.
            let ids: Vec<u64> = (0..trace.node_count())
                .map(|i| trace.span_id(i))
                .collect();
            match &span_ids {
                None => span_ids = Some(ids),
                Some(expected) => prop_assert_eq!(&ids, expected, "{}", name),
            }
        }
    }
}
