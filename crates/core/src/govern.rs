//! Query-lifecycle governance: cooperative cancellation, wall-clock
//! deadlines, and per-query transient-memory budgets.
//!
//! A [`QueryGovernor`] is a small shared token attached to
//! [`ExecSettings`](crate::ExecSettings). Both plan executors enter a
//! thread-local [`GovernorScope`] around execution, and every operator loop
//! calls [`checkpoint_chunk`] once per decoded chunk (the pull-based chunk
//! cursors make this nearly free: one thread-local read and one atomic
//! increment per ~2048 values). [`execute_node`](crate::plan) calls
//! [`checkpoint_node`] once per plan node. A violated limit unwinds the
//! current worker with an [`ExecError`] payload; the fallible entry points
//! (`PlanExecutor::try_execute`, `ParallelExecutor::try_execute`) catch that
//! payload — and structured [`DecodeError`] payloads from the decoders — and
//! return it as a `Result`, resuming any *other* panic unchanged. The
//! parallel scheduler's existing `PanicRelease` guard unblocks sibling
//! workers, so a governor trip on any one morsel cleanly drains the whole
//! pool.
//!
//! Memory accounting is **per query**: materialised intermediates are
//! charged via [`charge_materialized`] as they are recorded, and the
//! pairwise operators' transient carry buffers via [`charge_transient`]
//! (routed through [`ops::transient`](crate::ops::transient), which keeps
//! the process-global high-water mark for the bench harness alongside the
//! governor-scoped one). One tenant's spike can therefore never trip
//! another query's memory verdict.

use std::cell::RefCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use morph_compression::DecodeError;

/// A structured reason why a governed query execution stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The query's cancellation token was flipped (cooperatively observed
    /// at the next chunk or node boundary).
    Cancelled,
    /// The query ran past its wall-clock deadline.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// Elapsed wall clock when the violation was observed.
        elapsed: Duration,
    },
    /// The query's materialised intermediates plus transient carry buffers
    /// exceeded its memory budget.
    MemoryExceeded {
        /// Bytes in use when the violation was observed.
        used_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// A compressed buffer failed to decode mid-plan; the structured cause
    /// is preserved instead of a stringly panic.
    Decode(DecodeError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded { deadline, elapsed } => write!(
                f,
                "query deadline exceeded: ran {elapsed:?} against a deadline of {deadline:?}"
            ),
            ExecError::MemoryExceeded {
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "query memory budget exceeded: {used_bytes} bytes used, budget {budget_bytes}"
            ),
            ExecError::Decode(error) => write!(f, "decode failure during execution: {error}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<DecodeError> for ExecError {
    fn from(error: DecodeError) -> ExecError {
        ExecError::Decode(error)
    }
}

/// Shared per-query governance token: cancellation flag, wall-clock
/// deadline, and transient-memory budget, plus the per-query memory and
/// checkpoint counters. Cheap to share (`Arc`) between the submitting
/// session (which may cancel) and the worker threads executing the plan.
#[derive(Debug)]
pub struct QueryGovernor {
    started: Instant,
    deadline: Option<Duration>,
    budget_bytes: Option<usize>,
    cancelled: AtomicBool,
    materialized_bytes: AtomicUsize,
    transient_peak_bytes: AtomicUsize,
    chunk_checks: AtomicU64,
    node_checks: AtomicU64,
    #[cfg(feature = "faults")]
    fault: std::sync::Mutex<Option<crate::faults::ArmedFault>>,
}

impl Default for QueryGovernor {
    fn default() -> QueryGovernor {
        QueryGovernor::new()
    }
}

impl QueryGovernor {
    /// An unlimited governor: cancellable, but with no deadline and no
    /// memory budget.
    pub fn new() -> QueryGovernor {
        QueryGovernor {
            started: Instant::now(),
            deadline: None,
            budget_bytes: None,
            cancelled: AtomicBool::new(false),
            materialized_bytes: AtomicUsize::new(0),
            transient_peak_bytes: AtomicUsize::new(0),
            chunk_checks: AtomicU64::new(0),
            node_checks: AtomicU64::new(0),
            #[cfg(feature = "faults")]
            fault: std::sync::Mutex::new(None),
        }
    }

    /// Set a wall-clock deadline, measured from the governor's creation
    /// (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> QueryGovernor {
        self.deadline = Some(deadline);
        self
    }

    /// Set a per-query memory budget in bytes, covering materialised
    /// intermediates plus the peak transient carry (builder style).
    pub fn with_memory_budget(mut self, budget_bytes: usize) -> QueryGovernor {
        self.budget_bytes = Some(budget_bytes);
        self
    }

    /// Arm one deterministic fault against this query (builder style; fault
    /// harness only).
    #[cfg(feature = "faults")]
    pub fn with_fault(self, fault: Option<crate::faults::ArmedFault>) -> QueryGovernor {
        *self.fault.lock().expect("fault slot lock") = fault;
        self
    }

    /// Flip the cancellation token. Execution observes the flag at the next
    /// chunk or node boundary and unwinds with [`ExecError::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the cancellation token was flipped.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured memory budget in bytes, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget_bytes
    }

    /// Wall clock elapsed since the governor was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Per-query bytes currently charged: materialised intermediates plus
    /// the peak transient carry buffer.
    pub fn used_bytes(&self) -> usize {
        self.materialized_bytes.load(Ordering::Relaxed)
            + self.transient_peak_bytes.load(Ordering::Relaxed)
    }

    /// Peak transient carry-buffer size charged to this query (the
    /// governor-scoped counterpart of
    /// [`transient::peak_bytes`](crate::ops::transient::peak_bytes)).
    pub fn transient_peak_bytes(&self) -> usize {
        self.transient_peak_bytes.load(Ordering::Relaxed)
    }

    /// Number of chunk-boundary checkpoints this query has passed.
    pub fn chunk_checkpoints(&self) -> u64 {
        self.chunk_checks.load(Ordering::Relaxed)
    }

    /// Number of node-boundary checkpoints this query has passed.
    pub fn node_checkpoints(&self) -> u64 {
        self.node_checks.load(Ordering::Relaxed)
    }

    /// Verify every limit; `Err` names the first violated one.
    pub fn check(&self) -> Result<(), ExecError> {
        if self.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                return Err(ExecError::DeadlineExceeded { deadline, elapsed });
            }
        }
        self.check_memory()
    }

    fn check_memory(&self) -> Result<(), ExecError> {
        if let Some(budget_bytes) = self.budget_bytes {
            let used_bytes = self.used_bytes();
            if used_bytes > budget_bytes {
                return Err(ExecError::MemoryExceeded {
                    used_bytes,
                    budget_bytes,
                });
            }
        }
        Ok(())
    }

    /// Charge one materialised intermediate to the query's budget.
    fn add_materialized(&self, bytes: usize) -> Result<(), ExecError> {
        self.materialized_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.check_memory()
    }

    /// Raise the query's transient carry high-water mark.
    fn note_transient(&self, bytes: usize) -> Result<(), ExecError> {
        self.transient_peak_bytes
            .fetch_max(bytes, Ordering::Relaxed);
        self.check_memory()
    }

    /// One chunk-boundary checkpoint: count, inject any armed fault whose
    /// trigger has come due, and verify the limits.
    fn on_chunk(&self) -> Result<(), ExecError> {
        let count = self.chunk_checks.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "faults")]
        self.maybe_inject(crate::faults::FaultSite::Chunk, count)?;
        #[cfg(not(feature = "faults"))]
        let _ = count;
        self.check()
    }

    /// One node-boundary checkpoint (counterpart of [`Self::on_chunk`]).
    fn on_node(&self) -> Result<(), ExecError> {
        let count = self.node_checks.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "faults")]
        self.maybe_inject(crate::faults::FaultSite::Node, count)?;
        #[cfg(not(feature = "faults"))]
        let _ = count;
        self.check()
    }

    /// Trigger the armed fault if this checkpoint is (or is past) its
    /// trigger point; each armed fault fires at most once.
    #[cfg(feature = "faults")]
    fn maybe_inject(&self, site: crate::faults::FaultSite, count: u64) -> Result<(), ExecError> {
        use crate::faults::FaultKind;
        let due = {
            let mut slot = self.fault.lock().expect("fault slot lock");
            match slot.as_ref() {
                Some(armed) if armed.site == site && count >= armed.at => slot.take(),
                _ => None,
            }
        };
        let Some(armed) = due else { return Ok(()) };
        match armed.kind {
            FaultKind::Decode => Err(ExecError::Decode(DecodeError::CorruptHeader {
                format: "fault-injection",
                detail: format!(
                    "injected decode fault at {site:?} {count} of `{}`",
                    armed.query
                ),
            })),
            FaultKind::Panic => panic!("injected panic at {site:?} {count} of `{}`", armed.query),
            FaultKind::Delay(pause) => {
                // Sleep in short slices so a cancellation or deadline
                // expiry arriving mid-delay is still observed promptly by
                // the following limit check instead of waiting out the
                // whole pause.
                let mut remaining = pause;
                while !remaining.is_zero() && self.check().is_ok() {
                    let slice = remaining.min(Duration::from_millis(5));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                Ok(())
            }
            FaultKind::Cancel => {
                self.cancel();
                Ok(())
            }
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<QueryGovernor>>> = const { RefCell::new(None) };
}

/// RAII registration of the governor consulted by [`checkpoint_chunk`] /
/// [`checkpoint_node`] on the current thread. The executors enter a scope
/// per worker thread (and per serial execution); dropping restores the
/// previous registration, so nested governed executions behave.
#[derive(Debug)]
pub struct GovernorScope {
    previous: Option<Arc<QueryGovernor>>,
}

impl GovernorScope {
    /// Register `governor` (possibly none) as the current thread's governor.
    pub fn enter(governor: Option<Arc<QueryGovernor>>) -> GovernorScope {
        GovernorScope {
            previous: CURRENT.with(|cell| cell.replace(governor)),
        }
    }
}

impl Drop for GovernorScope {
    fn drop(&mut self) {
        CURRENT.with(|cell| {
            *cell.borrow_mut() = self.previous.take();
        });
    }
}

/// The governor registered on the current thread, if any.
pub fn current() -> Option<Arc<QueryGovernor>> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Run `check` against the current thread's governor, unwinding with the
/// violation as payload; a no-op when no governor is registered.
#[inline]
fn with_current(check: impl FnOnce(&QueryGovernor) -> Result<(), ExecError>) {
    let violation = CURRENT.with(|cell| match cell.borrow().as_ref() {
        Some(governor) => check(governor).err(),
        None => None,
    });
    if let Some(error) = violation {
        panic::panic_any(error);
    }
}

/// Chunk-boundary checkpoint, called by every operator loop once per
/// decoded chunk. Nearly free without a governor (one thread-local read).
#[inline]
pub fn checkpoint_chunk() {
    with_current(QueryGovernor::on_chunk);
}

/// Node-boundary checkpoint, called by `execute_node` once per plan node.
#[inline]
pub fn checkpoint_node() {
    with_current(QueryGovernor::on_node);
}

/// Charge one materialised intermediate to the current query's memory
/// budget (no-op without a governor).
#[inline]
pub(crate) fn charge_materialized(bytes: usize) {
    with_current(|governor| governor.add_materialized(bytes));
}

/// Raise the current query's transient carry high-water mark (no-op
/// without a governor).
#[inline]
pub(crate) fn charge_transient(bytes: usize) {
    with_current(|governor| governor.note_transient(bytes));
}

/// Recover a structured [`ExecError`] from a caught panic payload;
/// `Err` returns the payload untouched when it is neither an `ExecError`
/// nor a [`DecodeError`].
pub fn error_from_panic(
    payload: Box<dyn std::any::Any + Send>,
) -> Result<ExecError, Box<dyn std::any::Any + Send>> {
    let payload = match payload.downcast::<ExecError>() {
        Ok(error) => return Ok(*error),
        Err(payload) => payload,
    };
    match payload.downcast::<DecodeError>() {
        Ok(decode) => Ok(ExecError::Decode(*decode)),
        Err(payload) => Err(payload),
    }
}

static SILENT_UNWIND_HOOK: std::sync::Once = std::sync::Once::new();

/// Install (once, process-wide) a panic hook that stays silent for
/// governance unwinds: an [`ExecError`] payload is control flow — raised
/// only at governor checkpoints and recovered into a `Result` by
/// [`run_governed`] — so the default hook's "thread panicked" backtrace
/// would spam stderr on every cancelled or deadline-expired query. Every
/// other panic (including [`DecodeError`] payloads, which can legitimately
/// escape through the infallible decode paths and then deserve a trace) is
/// delegated to the previously installed hook.
fn install_silent_unwind_hook() {
    SILENT_UNWIND_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<ExecError>() {
                previous(info);
            }
        }));
    });
}

/// Run `f`, converting a governance or decode unwind into `Err` and
/// resuming any other panic unchanged — the shared core of the executors'
/// `try_execute` entry points.
pub fn run_governed<R>(f: impl FnOnce() -> R) -> Result<R, ExecError> {
    install_silent_unwind_hook();
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => match error_from_panic(payload) {
            Ok(error) => Err(error),
            Err(other) => panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_passes_checks() {
        let governor = QueryGovernor::new();
        assert!(governor.check().is_ok());
        assert!(!governor.is_cancelled());
        assert_eq!(governor.used_bytes(), 0);
    }

    #[test]
    fn cancel_is_observed() {
        let governor = QueryGovernor::new();
        governor.cancel();
        assert_eq!(governor.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn deadline_is_observed() {
        let governor = QueryGovernor::new().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        match governor.check() {
            Err(ExecError::DeadlineExceeded { deadline, elapsed }) => {
                assert_eq!(deadline, Duration::ZERO);
                assert!(elapsed > Duration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_budget_covers_materialized_and_transient() {
        let governor = QueryGovernor::new().with_memory_budget(100);
        assert!(governor.add_materialized(60).is_ok());
        assert!(governor.note_transient(30).is_ok());
        assert_eq!(governor.used_bytes(), 90);
        // The transient charge is a high-water mark, not a sum.
        assert!(governor.note_transient(20).is_ok());
        assert_eq!(governor.used_bytes(), 90);
        match governor.add_materialized(20) {
            Err(ExecError::MemoryExceeded {
                used_bytes,
                budget_bytes,
            }) => {
                assert_eq!(used_bytes, 110);
                assert_eq!(budget_bytes, 100);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checkpoints_without_scope_are_noops() {
        checkpoint_chunk();
        checkpoint_node();
    }

    #[test]
    fn scope_registers_and_restores() {
        assert!(current().is_none());
        let governor = Arc::new(QueryGovernor::new());
        {
            let _scope = GovernorScope::enter(Some(governor.clone()));
            assert!(Arc::ptr_eq(&current().expect("registered"), &governor));
            checkpoint_chunk();
            checkpoint_node();
            {
                let inner = Arc::new(QueryGovernor::new());
                let _nested = GovernorScope::enter(Some(inner.clone()));
                assert!(Arc::ptr_eq(&current().expect("nested"), &inner));
            }
            assert!(Arc::ptr_eq(&current().expect("restored"), &governor));
        }
        assert!(current().is_none());
        assert_eq!(governor.chunk_checkpoints(), 1);
        assert_eq!(governor.node_checkpoints(), 1);
    }

    #[test]
    fn cancelled_checkpoint_unwinds_with_structured_payload() {
        let governor = Arc::new(QueryGovernor::new());
        governor.cancel();
        let result = {
            let _scope = GovernorScope::enter(Some(governor));
            run_governed(|| {
                checkpoint_chunk();
                unreachable!("checkpoint must unwind")
            })
        };
        assert_eq!(result, Err(ExecError::Cancelled));
    }

    #[test]
    fn decode_panics_convert_and_foreign_panics_resume() {
        let decode = DecodeError::CorruptHeader {
            format: "rle",
            detail: "zero run length".to_string(),
        };
        let result = run_governed(|| -> () {
            panic::panic_any(decode.clone());
        });
        assert_eq!(result, Err(ExecError::Decode(decode)));

        let foreign = panic::catch_unwind(|| {
            let _ = run_governed(|| -> () { panic!("a genuine bug") });
        });
        let payload = foreign.expect_err("foreign panic must resume");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"a genuine bug"));
    }

    #[test]
    fn display_is_informative() {
        assert!(ExecError::Cancelled.to_string().contains("cancelled"));
        let text = ExecError::DeadlineExceeded {
            deadline: Duration::from_millis(5),
            elapsed: Duration::from_millis(9),
        }
        .to_string();
        assert!(text.contains("deadline"), "{text}");
        let text = ExecError::MemoryExceeded {
            used_bytes: 2048,
            budget_bytes: 1024,
        }
        .to_string();
        assert!(text.contains("2048") && text.contains("1024"), "{text}");
    }
}
