//! The logical query-plan DAG: construction ([`PlanBuilder`]), inspection
//! ([`QueryPlan`]) and execution ([`PlanExecutor`]).
//!
//! The paper's processing model deliberately keeps query planning ordinary:
//! a plan is "constructed using our compression-enabled query operators in
//! the same manner as for uncompressed processing" (Section 3.3), and the
//! per-column compression format is the *only* new degree of freedom.  This
//! module makes that plan a first-class value instead of a hand-written
//! sequence of operator calls:
//!
//! * [`PlanBuilder`] offers one constructor per physical operator
//!   ([`PlanBuilder::scan`], [`PlanBuilder::select`],
//!   [`PlanBuilder::project`], [`PlanBuilder::join`], …) and returns typed
//!   node handles ([`ColRef`], [`GroupRef`], [`ScalarRef`]) that later
//!   constructors consume.  Handles can only refer to nodes that already
//!   exist, so the node list is always in topological order.
//! * [`QueryPlan`] is the finished DAG.  It knows every *edge* — every base
//!   column and every named intermediate the plan materialises — which is
//!   what the format-selection strategies enumerate ([`QueryPlan::edges`])
//!   and what the debug printer renders ([`QueryPlan::describe`]).
//! * [`PlanExecutor`] walks the DAG in topological order, resolves each
//!   edge's format from the [`FormatConfig`] of the given
//!   [`ExecutionContext`] under the stable name `"<plan label>/<step>"`,
//!   runs the physical operator, and records footprints and timings exactly
//!   like the paper's evaluation requires — the bookkeeping every query
//!   used to copy-paste by hand.
//!
//! The DAG is also an explicit dependency graph ([`QueryPlan::dependencies`],
//! [`QueryPlan::ready_sets`]): the [`crate::parallel::ParallelExecutor`]
//! schedules independent subtrees on a worker pool through the same
//! node-execution core, with identical observable bookkeeping.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use morph_cache::{CacheKey, CachedValue, Fingerprint, QueryCache};
use morph_compression::Format;
use morph_storage::Column;

use crate::exec::{ExecSettings, ExecutionContext, FormatConfig, NodeRecords};
use crate::ops::agg::{agg_sum, agg_sum_grouped};
use crate::ops::calc::calc_binary;
use crate::ops::group::{group_by, group_by_refine, GroupResult};
use crate::ops::join::{join, semi_join};
use crate::ops::merge::{intersect_sorted, merge_sorted};
use crate::ops::morph_op::morph;
use crate::ops::project::project;
use crate::ops::select::{select, select_between};
use crate::{BinaryOp, CmpOp};

/// A provider of base columns by name — the leaf inputs of a plan.
///
/// [`crate::exec::ExecutionContext`] is deliberately not involved: a source
/// is pure storage, the context only records what an execution touched.
pub trait ColumnSource {
    /// The base column named `name`.
    ///
    /// # Panics
    /// Implementations panic when no column of that name exists; a plan
    /// referencing an unknown column is a construction bug, not a runtime
    /// condition.
    fn column(&self, name: &str) -> &Column;
}

impl ColumnSource for HashMap<String, Column> {
    fn column(&self, name: &str) -> &Column {
        self.get(name)
            .unwrap_or_else(|| panic!("unknown base column {name:?}"))
    }
}

/// Typed handle to the single column produced by a plan node (or to one of
/// the two columns of a grouping node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColRef {
    pub(crate) node: usize,
    pub(crate) port: u8,
}

/// Typed handle to a grouping node (which produces *two* columns — per-row
/// group identifiers and per-group representative positions — plus the group
/// count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupRef {
    pub(crate) node: usize,
}

impl GroupRef {
    /// The per-row dense group identifiers (recorded under the node's own
    /// step name).
    pub fn ids(&self) -> ColRef {
        ColRef {
            node: self.node,
            port: 0,
        }
    }

    /// The per-group representative positions (recorded under
    /// `"<step>_reps"`).
    pub fn representatives(&self) -> ColRef {
        ColRef {
            node: self.node,
            port: 1,
        }
    }
}

/// Typed handle to a scalar-producing node (whole-column aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalarRef {
    pub(crate) node: usize,
}

/// The physical operator a plan node executes.
#[derive(Debug, Clone)]
pub(crate) enum PlanOp {
    Scan {
        column: String,
    },
    Select {
        input: ColRef,
        op: CmpOp,
        constant: u64,
    },
    SelectBetween {
        input: ColRef,
        low: u64,
        high: u64,
    },
    SelectIn2 {
        input: ColRef,
        first: u64,
        second: u64,
    },
    IntersectSorted {
        a: ColRef,
        b: ColRef,
    },
    MergeSorted {
        a: ColRef,
        b: ColRef,
    },
    Project {
        data: ColRef,
        positions: ColRef,
    },
    SemiJoin {
        probe: ColRef,
        build: ColRef,
    },
    Join {
        probe: ColRef,
        build: ColRef,
    },
    CalcBinary {
        op: BinaryOp,
        lhs: ColRef,
        rhs: ColRef,
    },
    GroupBy {
        keys: ColRef,
    },
    GroupByRefine {
        previous: GroupRef,
        keys: ColRef,
    },
    AggSumGrouped {
        group: GroupRef,
        values: ColRef,
    },
    AggSum {
        values: ColRef,
    },
    Morph {
        input: ColRef,
        target: Format,
    },
}

impl PlanOp {
    /// The operator mnemonic used in timing labels and the debug printer.
    pub(crate) fn mnemonic(&self) -> &'static str {
        match self {
            PlanOp::Scan { .. } => "scan",
            PlanOp::Select { .. } | PlanOp::SelectBetween { .. } | PlanOp::SelectIn2 { .. } => {
                "select"
            }
            PlanOp::IntersectSorted { .. } => "intersect",
            PlanOp::MergeSorted { .. } => "merge",
            PlanOp::Project { .. } => "project",
            PlanOp::SemiJoin { .. } => "semijoin",
            PlanOp::Join { .. } => "join",
            PlanOp::CalcBinary { .. } => "calc",
            PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. } => "group",
            PlanOp::AggSumGrouped { .. } | PlanOp::AggSum { .. } => "agg",
            PlanOp::Morph { .. } => "morph",
        }
    }

    /// The column handles this operator consumes (for the debug printer and
    /// the fusion analysis).
    pub(crate) fn inputs(&self) -> Vec<ColRef> {
        match *self {
            PlanOp::Scan { .. } => vec![],
            PlanOp::Select { input, .. }
            | PlanOp::SelectBetween { input, .. }
            | PlanOp::SelectIn2 { input, .. }
            | PlanOp::Morph { input, .. } => vec![input],
            PlanOp::IntersectSorted { a, b } | PlanOp::MergeSorted { a, b } => vec![a, b],
            PlanOp::Project { data, positions } => vec![data, positions],
            PlanOp::SemiJoin { probe, build } | PlanOp::Join { probe, build } => {
                vec![probe, build]
            }
            PlanOp::CalcBinary { lhs, rhs, .. } => vec![lhs, rhs],
            PlanOp::GroupBy { keys } => vec![keys],
            PlanOp::GroupByRefine { previous, keys } => {
                vec![previous.ids(), previous.representatives(), keys]
            }
            PlanOp::AggSumGrouped { group, values } => vec![group.ids(), values],
            PlanOp::AggSum { values } => vec![values],
        }
    }
}

/// One node of the DAG: a step name plus the operator it runs.
#[derive(Debug, Clone)]
pub(crate) struct PlanNode {
    pub(crate) name: String,
    pub(crate) op: PlanOp,
}

/// What the plan returns to the caller.
#[derive(Debug, Clone)]
pub(crate) enum PlanOutputs {
    /// A single scalar (the ungrouped SSB flight-1 queries).
    Scalar(ScalarRef),
    /// Row-aligned group-key columns plus the aggregated measure.
    Grouped { keys: Vec<ColRef>, values: ColRef },
}

/// One materialised column of a plan: a base column or a named intermediate.
///
/// The format-selection strategies enumerate these instead of hard-coded
/// per-query column-name lists — the set of assignable columns is a property
/// of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEdge {
    /// The name the column is recorded (and format-assigned) under: the bare
    /// column name for base columns, `"<plan label>/<step>"` for
    /// intermediates.
    pub name: String,
    /// Mnemonic of the operator producing the column.
    pub op: &'static str,
    /// Whether this is a base column (scan) rather than an intermediate.
    pub is_base: bool,
}

/// The decompressed result of executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOutput {
    /// One vector per group-key output column, row-aligned with `values`
    /// (empty for scalar plans).
    pub group_keys: Vec<Vec<u64>>,
    /// The aggregated value per result row (a single element for scalar
    /// plans).
    pub values: Vec<u64>,
}

/// A finished logical operator DAG.
///
/// Nodes are stored in construction order, which [`PlanBuilder`] guarantees
/// to be a topological order; [`PlanExecutor`] therefore walks the node list
/// linearly.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    label: String,
    pub(crate) nodes: Vec<PlanNode>,
    pub(crate) outputs: PlanOutputs,
}

impl QueryPlan {
    /// The plan label, used as the prefix of every intermediate name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of operator nodes (including scans).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The full (prefixed) name of the column produced by `node`, given its
    /// step `name`; grouping nodes record their second output under
    /// `"<step>_reps"`.
    fn full_name(&self, name: &str) -> String {
        format!("{}/{}", self.label, name)
    }

    /// The distinct base columns the plan scans, in first-use order.
    pub fn base_columns(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for node in &self.nodes {
            if let PlanOp::Scan { column } = &node.op {
                if !seen.iter().any(|s| s == column) {
                    seen.push(column.clone());
                }
            }
        }
        seen
    }

    /// The full names of every intermediate the plan materialises, in
    /// execution order (grouping nodes contribute two names).
    pub fn intermediate_names(&self) -> Vec<String> {
        self.edges()
            .into_iter()
            .filter(|e| !e.is_base)
            .map(|e| e.name)
            .collect()
    }

    /// Every materialised column of the plan — base columns and
    /// intermediates — in execution order.
    ///
    /// Scalar aggregations produce no column and therefore no edge.
    pub fn edges(&self) -> Vec<PlanEdge> {
        let mut edges = Vec::new();
        let mut seen_bases: Vec<&str> = Vec::new();
        for node in &self.nodes {
            match &node.op {
                PlanOp::Scan { column } => {
                    if !seen_bases.contains(&column.as_str()) {
                        seen_bases.push(column);
                        edges.push(PlanEdge {
                            name: column.clone(),
                            op: "scan",
                            is_base: true,
                        });
                    }
                }
                PlanOp::AggSum { .. } => {}
                PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. } => {
                    edges.push(PlanEdge {
                        name: self.full_name(&node.name),
                        op: node.op.mnemonic(),
                        is_base: false,
                    });
                    edges.push(PlanEdge {
                        name: self.full_name(&format!("{}_reps", node.name)),
                        op: node.op.mnemonic(),
                        is_base: false,
                    });
                }
                _ => {
                    edges.push(PlanEdge {
                        name: self.full_name(&node.name),
                        op: node.op.mnemonic(),
                        is_base: false,
                    });
                }
            }
        }
        edges
    }

    /// Render the plan with the format every edge would be materialised in
    /// under `formats` — the debug printer of the plan layer.  Formats are
    /// spelled via [`Format`]'s `Display` implementation, the same canonical
    /// spelling the benchmark harness uses.
    pub fn describe(&self, formats: &FormatConfig) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "plan {:?} ({} nodes)", self.label, self.nodes.len());
        for (idx, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<String> = node
                .op
                .inputs()
                .iter()
                .map(|r| {
                    if r.port == 0 {
                        format!("#{}", r.node)
                    } else {
                        format!("#{}.reps", r.node)
                    }
                })
                .collect();
            let detail = match &node.op {
                // The step name of a scan *is* the column name.
                PlanOp::Scan { .. } => String::new(),
                PlanOp::Select { op, constant, .. } => format!("{op:?} {constant}"),
                PlanOp::SelectBetween { low, high, .. } => format!("between {low} {high}"),
                PlanOp::SelectIn2 { first, second, .. } => format!("in ({first}, {second})"),
                PlanOp::CalcBinary { op, .. } => format!("{op:?}"),
                PlanOp::Morph { target, .. } => format!("to {target}"),
                _ => String::new(),
            };
            let format_of = |name: &str| formats.format_for(name, Format::Uncompressed);
            let materialised = match &node.op {
                PlanOp::Scan { .. } => String::new(),
                PlanOp::AggSum { .. } => " -> scalar".to_string(),
                PlanOp::AggSumGrouped { .. } => {
                    format!(
                        " -> {} : {}",
                        self.full_name(&node.name),
                        Format::Uncompressed
                    )
                }
                PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. } => {
                    let ids = self.full_name(&node.name);
                    let reps = self.full_name(&format!("{}_reps", node.name));
                    format!(
                        " -> {} : {}, {} : {}",
                        ids,
                        format_of(&ids),
                        reps,
                        format_of(&reps)
                    )
                }
                _ => {
                    let name = self.full_name(&node.name);
                    format!(" -> {} : {}", name, format_of(&name))
                }
            };
            let detail = if detail.is_empty() {
                String::new()
            } else {
                format!(" {detail}")
            };
            let sources = if inputs.is_empty() {
                String::new()
            } else {
                format!(" <- [{}]", inputs.join(", "))
            };
            let _ = writeln!(
                out,
                "  [{idx:>3}] {:<9} {}{detail}{sources}{materialised}",
                node.op.mnemonic(),
                node.name,
            );
        }
        match &self.outputs {
            PlanOutputs::Scalar(s) => {
                let _ = writeln!(out, "  output: scalar #{}", s.node);
            }
            PlanOutputs::Grouped { keys, values } => {
                let keys: Vec<String> = keys.iter().map(|k| format!("#{}", k.node)).collect();
                let _ = writeln!(
                    out,
                    "  output: keys [{}], values #{}",
                    keys.join(", "),
                    values.node
                );
            }
        }
        out
    }

    /// [`QueryPlan::describe`] plus the plan's fused pipelines as bracketed
    /// groups — what EXPLAIN shows when operator fusion is enabled.  The
    /// node listing is identical to [`QueryPlan::describe`]; the trailing
    /// `fused pipelines:` section (absent when nothing fuses) names each
    /// region's member chain, its driver column, the interior columns that
    /// are no longer retained, and whether the region can fan out as
    /// morsels.
    pub fn describe_with_fusion(&self, formats: &FormatConfig) -> String {
        let mut out = self.describe(formats);
        out.push_str(&crate::fusion::FusionPlan::analyze(self).render(self));
        out
    }

    /// The plain-data description of this plan the tracing layer records
    /// against: one [`NodeInfo`](morph_telemetry::NodeInfo) per node (name,
    /// mnemonic, dependency edges, resolved output format) and one
    /// [`RegionInfo`](morph_telemetry::RegionInfo) per fused region of
    /// `fusion`.  The executors build this at trace begin from the
    /// *executed* fusion analysis, so the trace mirrors what actually ran
    /// (pass [`crate::fusion::FusionPlan::empty`]-like analyses for unfused
    /// runs — [`crate::fusion::FusionPlan::analyze`] for tooling).
    pub fn topology(
        &self,
        fusion: &crate::fusion::FusionPlan,
        formats: &FormatConfig,
    ) -> morph_telemetry::PlanTopology {
        let deps = self.dependencies();
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                let (name, format) = match &node.op {
                    PlanOp::Scan { column } => (
                        column.clone(),
                        formats.format_for(column, Format::Uncompressed).to_string(),
                    ),
                    PlanOp::AggSum { .. } => (self.node_full_name(idx), "scalar".to_string()),
                    // Grouped sums are final outputs, always uncompressed.
                    PlanOp::AggSumGrouped { .. } => {
                        (self.node_full_name(idx), Format::Uncompressed.to_string())
                    }
                    _ => {
                        let full = self.node_full_name(idx);
                        let format = formats.format_for(&full, Format::Uncompressed).to_string();
                        (full, format)
                    }
                };
                morph_telemetry::NodeInfo {
                    name,
                    mnemonic: node.op.mnemonic().to_string(),
                    deps: deps[idx].clone(),
                    format,
                }
            })
            .collect();
        let regions = fusion
            .regions()
            .iter()
            .map(|region| morph_telemetry::RegionInfo {
                members: region.members.clone(),
                root: region.root,
                driver: crate::fusion::edge_name(self, region.driver),
                fan_out_eligible: region.prefix_independent,
            })
            .collect();
        morph_telemetry::PlanTopology {
            fingerprint: self.structural_fingerprint().0,
            label: self.label.clone(),
            nodes,
            regions,
        }
    }

    /// Render the executed plan annotated from a completed
    /// [`PlanTrace`](morph_telemetry::PlanTrace): per node the measured
    /// wall time, output rows, physical (compressed) versus logical bytes,
    /// the resolved format, whether the node was served from the plan
    /// cache, and its morsel fan-out degree; fused regions follow as
    /// bracketed pipeline groups with their drivers.  This is the
    /// `EXPLAIN ANALYZE` body of the SQL front-end and of the server's
    /// slow-query log.
    ///
    /// Attach a [`QueryTracer`](morph_telemetry::QueryTracer) via
    /// [`ExecSettings::with_tracer`](crate::exec::ExecSettings::with_tracer),
    /// execute the plan, and pass
    /// [`QueryTracer::last_trace`](morph_telemetry::QueryTracer::last_trace)
    /// here.  A trace from a different plan is flagged in the header rather
    /// than panicking.
    pub fn explain_analyze(&self, trace: &morph_telemetry::PlanTrace) -> String {
        use fmt::Write as _;
        let topo = trace.topology();
        let stale = if topo.fingerprint == self.structural_fingerprint().0 {
            ""
        } else {
            " [trace is from a different plan]"
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explain analyze {:?} ({} nodes, total {}){stale}",
            topo.label,
            topo.nodes.len(),
            fmt_duration(trace.total()),
        );
        for (idx, info) in topo.nodes.iter().enumerate() {
            let span = trace.node(idx);
            let step = format!("{}:{}", info.mnemonic, info.name);
            if !span.is_recorded() {
                let _ = writeln!(out, "  [{idx:>3}] {step:<40} (not executed)");
                continue;
            }
            let mut annotations = String::new();
            if span.cache_hit() {
                annotations.push_str("  cache hit");
            }
            if span.morsel_parts() > 0 {
                let _ = write!(annotations, "  fan-out x{}", span.morsel_parts());
            }
            if let Some((region, _)) = trace.region_of(idx) {
                let _ = write!(annotations, "  fused region {region}");
            }
            let _ = writeln!(
                out,
                "  [{idx:>3}] {step:<40} {:>10}  {:>9} rows  {:>10} phys / {:>10} logical  {}{annotations}",
                fmt_duration(span.elapsed()),
                span.rows(),
                fmt_bytes(span.bytes()),
                fmt_bytes(span.logical_bytes()),
                info.format,
            );
        }
        if !topo.regions.is_empty() {
            let _ = writeln!(out, "  fused pipelines:");
            for (index, region) in topo.regions.iter().enumerate() {
                let chain: Vec<String> = region.members.iter().map(|&m| format!("#{m}")).collect();
                let _ = writeln!(
                    out,
                    "    region {index}: [{}] driver {}; morsel fan-out: {}",
                    chain.join(" -> "),
                    region.driver,
                    if region.fan_out_eligible {
                        "eligible"
                    } else {
                        "no"
                    },
                );
            }
        }
        let _ = writeln!(
            out,
            "  query span {:#018x}, {} nodes recorded",
            trace.query_span_id(),
            (0..trace.node_count())
                .filter(|&i| trace.node(i).is_recorded())
                .count(),
        );
        out
    }

    /// Per node, the indices of the nodes whose outputs it consumes
    /// (sorted, deduplicated).  Handles can only refer to already-appended
    /// nodes, so `dependencies()[i]` contains only indices `< i` — this is
    /// the explicit dependency graph the parallel scheduler runs on.
    pub fn dependencies(&self) -> Vec<Vec<usize>> {
        self.nodes
            .iter()
            .map(|node| {
                let mut deps: Vec<usize> = node.op.inputs().iter().map(|r| r.node).collect();
                deps.sort_unstable();
                deps.dedup();
                deps
            })
            .collect()
    }

    /// Partition the nodes into *ready sets*: level 0 holds the nodes with
    /// no inputs (scans), level `k` the nodes whose inputs all lie in levels
    /// `< k` with at least one in level `k - 1`.  All nodes of one level are
    /// mutually independent and could run concurrently.
    ///
    /// This is the plan's parallelism profile (its length is the critical
    /// path in operator counts).  The [`crate::parallel::ParallelExecutor`]
    /// schedules *dynamically* by in-degree instead of level-by-level — a
    /// level barrier would serialise unbalanced subtrees — but the level
    /// structure is what tests and tools inspect.
    pub fn ready_sets(&self) -> Vec<Vec<usize>> {
        let deps = self.dependencies();
        let mut level_of = vec![0usize; self.nodes.len()];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for idx in 0..self.nodes.len() {
            // Nodes are in topological order, so dependency levels are known.
            let level = deps[idx]
                .iter()
                .map(|&d| level_of[d] + 1)
                .max()
                .unwrap_or(0);
            level_of[idx] = level;
            if levels.len() <= level {
                levels.resize(level + 1, Vec::new());
            }
            levels[level].push(idx);
        }
        levels
    }

    /// The full (prefixed) name node `idx` records its output column under.
    pub(crate) fn node_full_name(&self, idx: usize) -> String {
        self.full_name(&self.nodes[idx].name)
    }

    /// The timing label node `idx` is measured under
    /// (`"<label>/<mnemonic>:<step>"`).
    pub(crate) fn node_timing_label(&self, idx: usize) -> String {
        let node = &self.nodes[idx];
        format!("{}/{}:{}", self.label, node.op.mnemonic(), node.name)
    }

    /// A canonical fingerprint of the plan's *structure*: label, step names,
    /// operators with their parameters, the wiring between nodes, and the
    /// outputs — but no formats, no settings and no data.
    ///
    /// Two constructions of the same plan produce the same fingerprint; any
    /// differing step, parameter or edge produces a different one.  This is
    /// the "plan shape" component of memoised format decisions
    /// (`morph_cost`): strategy search runs once per plan shape and
    /// statistics digest.
    pub fn structural_fingerprint(&self) -> CacheKey {
        let mut fp = Fingerprint::with_tag("morph-plan");
        fp.write_str(&self.label);
        for node in &self.nodes {
            fp.write_str(&node.name);
            // Scans fingerprint as tag + column name and have no inputs, so
            // the uniform path covers them too.
            write_op_fingerprint(&mut fp, &node.op);
            for input in node.op.inputs() {
                fp.write_u64(input.node as u64);
                fp.write_u8(input.port);
            }
        }
        match &self.outputs {
            PlanOutputs::Scalar(value) => {
                fp.write_str("scalar");
                fp.write_u64(value.node as u64);
            }
            PlanOutputs::Grouped { keys, values } => {
                fp.write_str("grouped");
                for key in keys {
                    fp.write_u64(key.node as u64);
                    fp.write_u8(key.port);
                }
                fp.write_u64(values.node as u64);
                fp.write_u8(values.port);
            }
        }
        fp.finish()
    }

    /// The morsel decomposition of node `idx`, if its operator has a
    /// chunk-partitioned variant: which input column is streamed (and thus
    /// range-partitioned) and what per-part kernel applies.  `None` for
    /// operators without a partitioned variant.
    pub(crate) fn morsel_op(&self, idx: usize) -> Option<MorselOp> {
        match self.nodes[idx].op {
            PlanOp::Select {
                input,
                op,
                constant,
            } => Some(MorselOp::Select {
                input,
                op,
                constant,
            }),
            PlanOp::SelectBetween { input, low, high } => {
                Some(MorselOp::SelectBetween { input, low, high })
            }
            PlanOp::Project { data, positions } => Some(MorselOp::Project { data, positions }),
            PlanOp::SemiJoin { probe, build } => Some(MorselOp::SemiJoin { probe, build }),
            PlanOp::CalcBinary { op, lhs, rhs } => Some(MorselOp::CalcBinary { op, lhs, rhs }),
            PlanOp::IntersectSorted { a, b } => Some(MorselOp::IntersectSorted { a, b }),
            PlanOp::AggSum { values } => Some(MorselOp::AggSum { values }),
            _ => None,
        }
    }

    /// Assemble the caller-facing [`PlanOutput`] from the executed slots.
    pub(crate) fn collect_output<'a, 's, F>(&self, slots: F) -> PlanOutput
    where
        'a: 's,
        F: Fn(usize) -> &'s Slot<'a>,
    {
        match &self.outputs {
            PlanOutputs::Scalar(value) => PlanOutput {
                group_keys: vec![],
                values: vec![slots(value.node).scalar()],
            },
            PlanOutputs::Grouped { keys, values } => PlanOutput {
                group_keys: keys
                    .iter()
                    .map(|k| slots(k.node).column(k.port).decompress())
                    .collect(),
                values: slots(values.node).column(values.port).decompress(),
            },
        }
    }

    /// Execute the plan against `source`, recording footprints and timings
    /// in `ctx` (convenience wrapper around [`PlanExecutor`]).
    pub fn execute(&self, source: &dyn ColumnSource, ctx: &mut ExecutionContext) -> PlanOutput {
        PlanExecutor.execute(self, source, ctx)
    }

    /// Fallible counterpart of [`QueryPlan::execute`]: a tripped
    /// [`QueryGovernor`](crate::govern::QueryGovernor) limit or a decode
    /// failure returns a structured [`ExecError`](crate::govern::ExecError)
    /// instead of unwinding (convenience wrapper around
    /// [`PlanExecutor::try_execute`]).
    pub fn try_execute(
        &self,
        source: &dyn ColumnSource,
        ctx: &mut ExecutionContext,
    ) -> Result<PlanOutput, crate::govern::ExecError> {
        PlanExecutor.try_execute(self, source, ctx)
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe(&FormatConfig::default()))
    }
}

/// Incremental construction of a [`QueryPlan`].
///
/// Every method appends one node and returns a typed handle; because a
/// handle can only be obtained from this builder, every edge points
/// backwards and the node list is a topological order by construction.  Step
/// names must be unique within a plan — they become the
/// `"<label>/<step>"` intermediate names that [`FormatConfig`] assigns
/// formats to.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    label: String,
    nodes: Vec<PlanNode>,
}

impl PlanBuilder {
    /// Start a plan labelled `label` (the prefix of its intermediate names,
    /// e.g. the SSB query label `"1.1"`).
    pub fn new(label: impl Into<String>) -> PlanBuilder {
        PlanBuilder {
            label: label.into(),
            nodes: Vec::new(),
        }
    }

    /// The intermediate names a non-scan node records under: its step name,
    /// plus the reserved `"<step>_reps"` for grouping nodes.
    pub(crate) fn claimed_names(name: &str, op: &PlanOp) -> Vec<String> {
        match op {
            PlanOp::Scan { .. } => vec![],
            PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. } => {
                vec![name.to_string(), format!("{name}_reps")]
            }
            _ => vec![name.to_string()],
        }
    }

    fn push(&mut self, name: &str, op: PlanOp) -> usize {
        // Every intermediate name — including the implicit "<step>_reps" of
        // grouping nodes — must be unique: it is the column's identity in
        // the execution records and in the format assignment.
        let claims = Self::claimed_names(name, &op);
        for node in &self.nodes {
            for existing in Self::claimed_names(&node.name, &node.op) {
                assert!(
                    !claims.contains(&existing),
                    "duplicate plan step name {existing:?}"
                );
            }
        }
        for input in op.inputs() {
            assert!(
                input.node < self.nodes.len(),
                "plan step {name:?} references a node that does not exist yet"
            );
        }
        self.nodes.push(PlanNode {
            name: name.to_string(),
            op,
        });
        self.nodes.len() - 1
    }

    fn col(&mut self, name: &str, op: PlanOp) -> ColRef {
        ColRef {
            node: self.push(name, op),
            port: 0,
        }
    }

    /// Scan the base column `column`.  Scanning the same column twice
    /// returns the original handle (base columns are recorded once per
    /// query, as in the paper's footprint accounting).
    pub fn scan(&mut self, column: &str) -> ColRef {
        if let Some(existing) = self
            .nodes
            .iter()
            .position(|n| matches!(&n.op, PlanOp::Scan { column: c } if c == column))
        {
            return ColRef {
                node: existing,
                port: 0,
            };
        }
        self.col(
            column,
            PlanOp::Scan {
                column: column.to_string(),
            },
        )
    }

    /// Positions of `input` satisfying `value <op> constant`.
    pub fn select(&mut self, name: &str, input: ColRef, op: CmpOp, constant: u64) -> ColRef {
        self.col(
            name,
            PlanOp::Select {
                input,
                op,
                constant,
            },
        )
    }

    /// Positions of `input` with a value in `[low, high]`.
    pub fn select_between(&mut self, name: &str, input: ColRef, low: u64, high: u64) -> ColRef {
        self.col(name, PlanOp::SelectBetween { input, low, high })
    }

    /// Positions of `input` equal to `first` or `second` (`IN (a, b)`):
    /// two selections whose sorted position lists are merged, materialised
    /// as a single intermediate.
    pub fn select_in2(&mut self, name: &str, input: ColRef, first: u64, second: u64) -> ColRef {
        self.col(
            name,
            PlanOp::SelectIn2 {
                input,
                first,
                second,
            },
        )
    }

    /// Intersection of two sorted position columns.
    pub fn intersect_sorted(&mut self, name: &str, a: ColRef, b: ColRef) -> ColRef {
        self.col(name, PlanOp::IntersectSorted { a, b })
    }

    /// Union of two sorted position columns (duplicates collapse).
    pub fn merge_sorted(&mut self, name: &str, a: ColRef, b: ColRef) -> ColRef {
        self.col(name, PlanOp::MergeSorted { a, b })
    }

    /// `data[positions]`.
    pub fn project(&mut self, name: &str, data: ColRef, positions: ColRef) -> ColRef {
        self.col(name, PlanOp::Project { data, positions })
    }

    /// Positions of `probe` whose value occurs in `build`.
    pub fn semi_join(&mut self, name: &str, probe: ColRef, build: ColRef) -> ColRef {
        self.col(name, PlanOp::SemiJoin { probe, build })
    }

    /// N:1 join of `probe` (foreign keys) against `build` (a key column);
    /// materialises the build-side positions aligned with the probe rows.
    /// Execution asserts that every probe row finds exactly one match.
    pub fn join(&mut self, name: &str, probe: ColRef, build: ColRef) -> ColRef {
        self.col(name, PlanOp::Join { probe, build })
    }

    /// Element-wise binary calculation over two aligned columns.
    pub fn calc_binary(&mut self, name: &str, op: BinaryOp, lhs: ColRef, rhs: ColRef) -> ColRef {
        self.col(name, PlanOp::CalcBinary { op, lhs, rhs })
    }

    /// Group rows by a key column.  The per-row group identifiers and the
    /// per-group representatives are distinct intermediates with distinct
    /// data characteristics, named `<name>` and `<name>_reps`.
    pub fn group_by(&mut self, name: &str, keys: ColRef) -> GroupRef {
        GroupRef {
            node: self.push(name, PlanOp::GroupBy { keys }),
        }
    }

    /// Refine an existing grouping by an additional key column (multi-column
    /// `GROUP BY`, one refinement per further key).
    pub fn group_by_refine(&mut self, name: &str, previous: GroupRef, keys: ColRef) -> GroupRef {
        assert!(
            previous.node < self.nodes.len(),
            "plan step {name:?} references a grouping that does not exist yet"
        );
        GroupRef {
            node: self.push(name, PlanOp::GroupByRefine { previous, keys }),
        }
    }

    /// Per-group sum of `values`.  The output is a final query result and is
    /// always materialised uncompressed (Section 3.3 of the paper).
    pub fn agg_sum_grouped(&mut self, name: &str, group: GroupRef, values: ColRef) -> ColRef {
        assert!(
            group.node < self.nodes.len(),
            "plan step {name:?} references a grouping that does not exist yet"
        );
        self.col(name, PlanOp::AggSumGrouped { group, values })
    }

    /// Whole-column sum, producing a scalar.
    pub fn agg_sum(&mut self, name: &str, values: ColRef) -> ScalarRef {
        ScalarRef {
            node: self.push(name, PlanOp::AggSum { values }),
        }
    }

    /// Re-encode a column in `target` format (the morph operator as an
    /// explicit plan step).
    pub fn morph(&mut self, name: &str, input: ColRef, target: Format) -> ColRef {
        self.col(name, PlanOp::Morph { input, target })
    }

    /// Finish a plan whose result is the scalar produced by `value`.
    pub fn finish_scalar(self, value: ScalarRef) -> QueryPlan {
        assert!(value.node < self.nodes.len());
        QueryPlan {
            label: self.label,
            nodes: self.nodes,
            outputs: PlanOutputs::Scalar(value),
        }
    }

    /// Finish a plan returning row-aligned group-key columns plus the
    /// aggregated measure.
    pub fn finish_grouped(self, keys: Vec<ColRef>, values: ColRef) -> QueryPlan {
        for key in &keys {
            assert!(key.node < self.nodes.len());
        }
        assert!(values.node < self.nodes.len());
        QueryPlan {
            label: self.label,
            nodes: self.nodes,
            outputs: PlanOutputs::Grouped { keys, values },
        }
    }
}

/// The chunk-partitionable operator of a plan node, as seen by the morsel
/// scheduler: the handle of the input column that is range-partitioned plus
/// the operator parameters the per-part kernels need.
///
/// Only the hot operators dominated by one streamed input have partitioned
/// variants: `select` / `select_between` (partition the data column),
/// `project` (partition the position list), `semi_join` (partition the
/// probe side; the build set is shared), `calc_binary` (partition the left
/// operand; the right operand's aligned logical ranges are pulled per
/// part), `intersect_sorted` (partition the first position list; the second
/// is decompressed once and shared) and the whole-column `agg_sum`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MorselOp {
    /// Comparison select over a partitioned data column.
    Select {
        /// The filtered column (partitioned).
        input: ColRef,
        /// Comparison operator.
        op: CmpOp,
        /// Comparison constant.
        constant: u64,
    },
    /// Inclusive range select over a partitioned data column.
    SelectBetween {
        /// The filtered column (partitioned).
        input: ColRef,
        /// Lower bound (inclusive).
        low: u64,
        /// Upper bound (inclusive).
        high: u64,
    },
    /// Gather over a partitioned position list.
    Project {
        /// The random-accessed data column (shared).
        data: ColRef,
        /// The position list (partitioned).
        positions: ColRef,
    },
    /// Semi-join probing a partitioned column against a shared build set.
    SemiJoin {
        /// The probe column (partitioned).
        probe: ColRef,
        /// The build column (hashed once, shared).
        build: ColRef,
    },
    /// Element-wise binary calculation over a partitioned left operand.
    CalcBinary {
        /// The arithmetic operator.
        op: crate::BinaryOp,
        /// The left operand (partitioned).
        lhs: ColRef,
        /// The right operand (aligned logical ranges pulled per part).
        rhs: ColRef,
    },
    /// Sorted intersection over a partitioned first position list.
    IntersectSorted {
        /// The first position list (partitioned).
        a: ColRef,
        /// The second position list (decompressed once, shared).
        b: ColRef,
    },
    /// Whole-column sum over a partitioned column.
    AggSum {
        /// The summed column (partitioned).
        values: ColRef,
    },
}

impl MorselOp {
    /// The handle of the input column the morsel scheduler partitions.
    pub(crate) fn partitioned_input(&self) -> ColRef {
        match *self {
            MorselOp::Select { input, .. } | MorselOp::SelectBetween { input, .. } => input,
            MorselOp::Project { positions, .. } => positions,
            MorselOp::SemiJoin { probe, .. } => probe,
            MorselOp::CalcBinary { lhs, .. } => lhs,
            MorselOp::IntersectSorted { a, .. } => a,
            MorselOp::AggSum { values } => values,
        }
    }
}

/// Mix one operator's tag and parameters (not its inputs — the caller mixes
/// those, either as sub-fingerprints or as node indices).
///
/// Every operator kind gets a distinct tag and every parameter is mixed, so
/// two nodes fingerprint equal exactly when they run the same operator with
/// the same parameters.
fn write_op_fingerprint(fp: &mut Fingerprint, op: &PlanOp) {
    match op {
        PlanOp::Scan { column } => {
            fp.write_str("scan");
            fp.write_str(column);
        }
        PlanOp::Select { op, constant, .. } => {
            fp.write_str("select");
            fp.write_str(&format!("{op:?}"));
            fp.write_u64(*constant);
        }
        PlanOp::SelectBetween { low, high, .. } => {
            fp.write_str("select_between");
            fp.write_u64(*low);
            fp.write_u64(*high);
        }
        PlanOp::SelectIn2 { first, second, .. } => {
            fp.write_str("select_in2");
            fp.write_u64(*first);
            fp.write_u64(*second);
        }
        PlanOp::IntersectSorted { .. } => fp.write_str("intersect_sorted"),
        PlanOp::MergeSorted { .. } => fp.write_str("merge_sorted"),
        PlanOp::Project { .. } => fp.write_str("project"),
        PlanOp::SemiJoin { .. } => fp.write_str("semi_join"),
        PlanOp::Join { .. } => fp.write_str("join"),
        PlanOp::CalcBinary { op, .. } => {
            fp.write_str("calc_binary");
            fp.write_str(&format!("{op:?}"));
        }
        PlanOp::GroupBy { .. } => fp.write_str("group_by"),
        PlanOp::GroupByRefine { .. } => fp.write_str("group_by_refine"),
        PlanOp::AggSumGrouped { .. } => fp.write_str("agg_sum_grouped"),
        PlanOp::AggSum { .. } => fp.write_str("agg_sum"),
        PlanOp::Morph { target, .. } => {
            fp.write_str("morph");
            fp.write_format(target);
        }
    }
}

/// Human-readable duration for `EXPLAIN ANALYZE` (ns up to seconds, two
/// decimals past the microsecond scale).
fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Human-readable byte count for `EXPLAIN ANALYZE` (binary units).
fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    const GIB: u64 = 1024 * MIB;
    if bytes < KIB {
        format!("{bytes} B")
    } else if bytes < MIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else if bytes < GIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    }
}

/// Per-node cache data, precomputed by [`plan_cache_info`] before execution
/// starts (both executors share it; the parallel executor computes it once
/// on the coordinating thread).
#[derive(Debug, Clone)]
pub(crate) struct NodeCacheInfo {
    /// Canonical fingerprint of the subplan rooted at this node, under the
    /// current format assignment, settings digest and base-column
    /// generations.  `None` for scans — base columns are never cached.
    pub(crate) key: Option<CacheKey>,
    /// The base columns the subplan scans, in first-use order — the
    /// generation-invalidation tags of the node's cache entry.
    pub(crate) deps: Vec<String>,
}

/// Compute every node's canonical cache key and dependency tags.
///
/// A node's fingerprint mixes, bottom-up:
///
/// * the settings components that change materialised bytes (integration
///   degree, processing style — deliberately **not** the morsel threshold:
///   morsel merges are byte-identical to serial execution, so serial and
///   parallel runs at any thread count share entries),
/// * the operator tag and parameters,
/// * the fingerprints of its input nodes (with ports), which recursively
///   cover the whole subplan,
/// * the resolved output format(s) of the node's edge(s), and
/// * for scans: the base column's name, its cache *generation* and its
///   memoised content fingerprint — so a changed base table, a bumped
///   generation or a re-encoded column never serves stale entries.
pub(crate) fn plan_cache_info(
    plan: &QueryPlan,
    source: &dyn ColumnSource,
    formats: &FormatConfig,
    settings: &ExecSettings,
    cache: &QueryCache,
) -> Vec<NodeCacheInfo> {
    let mut fps: Vec<CacheKey> = Vec::with_capacity(plan.nodes.len());
    let mut infos: Vec<NodeCacheInfo> = Vec::with_capacity(plan.nodes.len());
    for (idx, node) in plan.nodes.iter().enumerate() {
        let mut fp = Fingerprint::with_tag("morph-subplan");
        fp.write_str(settings.degree.label());
        fp.write_str(settings.style.label());
        let info = match &node.op {
            PlanOp::Scan { column } => {
                let base = source.column(column);
                fp.write_str("scan");
                fp.write_str(column);
                fp.write_u64(cache.generation(column));
                fp.write_u64(base.fingerprint());
                fps.push(fp.finish());
                NodeCacheInfo {
                    key: None,
                    deps: vec![column.clone()],
                }
            }
            op => {
                write_op_fingerprint(&mut fp, op);
                let mut deps: Vec<String> = Vec::new();
                for input in op.inputs() {
                    fp.write_key(fps[input.node]);
                    fp.write_u8(input.port);
                    for dep in &infos[input.node].deps {
                        if !deps.contains(dep) {
                            deps.push(dep.clone());
                        }
                    }
                }
                let full = plan.node_full_name(idx);
                fp.write_format(&formats.format_for(&full, Format::Uncompressed));
                if matches!(op, PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. }) {
                    let reps_name = format!("{full}_reps");
                    fp.write_format(&formats.format_for(&reps_name, Format::Uncompressed));
                }
                let key = fp.finish();
                fps.push(key);
                NodeCacheInfo {
                    key: Some(key),
                    deps,
                }
            }
        };
        infos.push(info);
    }
    infos
}

/// Reconstruct a node's slot from a cache hit, replaying the bookkeeping an
/// execution would have produced (same record names, formats, sizes; the
/// timing label is pushed by the caller).  Returns `None` when the cached
/// value's shape does not match the node (a 128-bit key collision — treat
/// as a miss and execute).
fn slot_from_cached(
    plan: &QueryPlan,
    idx: usize,
    full: &str,
    value: CachedValue,
    rec: &mut NodeRecords,
) -> Option<Slot<'static>> {
    match (value, &plan.nodes[idx].op) {
        (CachedValue::Scalar(total), PlanOp::AggSum { .. }) => Some(Slot::Scalar(total)),
        (
            CachedValue::Pair { a, b, count },
            PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. },
        ) => {
            rec.record_intermediate(full, &a);
            rec.record_intermediate(&format!("{full}_reps"), &b);
            Some(Slot::Group(Box::new(GroupResult {
                group_ids: a,
                representatives: b,
                group_count: count,
            })))
        }
        (CachedValue::Column(column), op)
            if !matches!(
                op,
                PlanOp::Scan { .. }
                    | PlanOp::AggSum { .. }
                    | PlanOp::GroupBy { .. }
                    | PlanOp::GroupByRefine { .. }
            ) =>
        {
            rec.record_intermediate(full, &column);
            Some(Slot::Col(column))
        }
        _ => None,
    }
}

/// The cacheable image of a completed node's slot (`None` for scans — base
/// columns are never cached).  Columns and grouping outputs are
/// `Arc`-shared with the slot, so insertion copies no bytes.
pub(crate) fn cached_from_slot(slot: &Slot<'_>) -> Option<CachedValue> {
    match slot {
        Slot::Base(_) => None,
        Slot::Col(column) => Some(CachedValue::Column(Arc::clone(column))),
        Slot::Group(group) => Some(CachedValue::Pair {
            a: Arc::clone(&group.group_ids),
            b: Arc::clone(&group.representatives),
            count: group.group_count,
        }),
        Slot::Scalar(total) => Some(CachedValue::Scalar(*total)),
        // Fused interiors insert their own entries as the region finishes.
        Slot::Fused => None,
    }
}

/// One materialised value during execution.
///
/// Slots hold only owned data or borrows of the (shared) column source, so a
/// slot table can be filled by worker threads and read by their dependents.
/// Node outputs are `Arc`-shared so the plan cache can retain a result
/// without copying its bytes (insertion is an `Arc` clone).
pub(crate) enum Slot<'a> {
    Base(&'a Column),
    Col(Arc<Column>),
    // Boxed: a grouping's two inline columns dwarf the other variants.
    Group(Box<GroupResult>),
    Scalar(u64),
    /// Interior of an executed fused region: the column was recorded (and
    /// possibly cached) but deliberately *not retained* — fusion's whole
    /// point.  Region validation guarantees no node ever reads this slot.
    Fused,
}

impl Slot<'_> {
    pub(crate) fn column(&self, port: u8) -> &Column {
        match (self, port) {
            (Slot::Base(c), 0) => c,
            (Slot::Col(c), 0) => c,
            (Slot::Group(g), 0) => &g.group_ids,
            (Slot::Group(g), 1) => &g.representatives,
            _ => panic!("plan node does not produce the requested column"),
        }
    }

    pub(crate) fn group(&self) -> &GroupResult {
        match self {
            Slot::Group(g) => g,
            _ => panic!("plan node is not a grouping"),
        }
    }

    pub(crate) fn scalar(&self) -> u64 {
        match self {
            Slot::Scalar(v) => *v,
            _ => panic!("plan node does not produce a scalar"),
        }
    }
}

/// Walks a [`QueryPlan`] in topological order against a [`ColumnSource`],
/// materialising every node under the execution settings and format
/// assignment of an [`ExecutionContext`].
///
/// Per node, the executor
///
/// 1. resolves the output format from the context's [`FormatConfig`] under
///    the stable name `"<plan label>/<step>"` (grouped representatives:
///    `"<plan label>/<step>_reps"`),
/// 2. runs the physical operator under the context's [`crate::ExecSettings`],
///    timing it as `"<plan label>/<mnemonic>:<step>"`,
/// 3. records the result in the context — base columns once per query,
///    intermediates always — so footprints match the paper's accounting.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlanExecutor;

impl PlanExecutor {
    /// Execute `plan` against `source`, recording into `ctx`.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        source: &dyn ColumnSource,
        ctx: &mut ExecutionContext,
    ) -> PlanOutput {
        // Debug builds statically verify every plan before touching data,
        // so the determinism suites double as verifier suites.
        #[cfg(debug_assertions)]
        crate::verify::assert_verified(plan);
        let _governed = crate::govern::GovernorScope::enter(ctx.settings.governor.clone());
        let cache_info = ctx
            .settings
            .cache
            .as_deref()
            .map(|cache| plan_cache_info(plan, source, &ctx.formats, &ctx.settings, cache));
        let fusion =
            crate::fusion::FusionPlan::for_execution(plan, &ctx.settings, cache_info.as_deref());
        #[cfg(debug_assertions)]
        crate::verify::assert_fusion_verified(plan, &fusion);
        // Tracing is out of band: spans are recorded next to (never instead
        // of) the ordinary bookkeeping, so results, footprint records and
        // timing-label sequences stay byte-identical with a tracer attached.
        let tracer = ctx.settings.tracer.clone();
        let trace = tracer
            .as_ref()
            .map(|t| t.begin(plan.topology(&fusion, &ctx.formats)));
        if fusion.is_empty() {
            // Node-by-node execution, with records merged as each node
            // completes (on an unwind, `ctx` holds the completed prefix).
            let mut slots: Vec<Slot<'_>> = Vec::with_capacity(plan.nodes.len());
            for idx in 0..plan.nodes.len() {
                let mut rec = NodeRecords::new(ctx.capture_enabled());
                rec.set_node(idx);
                let slot = execute_node(
                    plan,
                    idx,
                    |i| &slots[i],
                    source,
                    &ctx.settings,
                    &ctx.formats,
                    cache_info.as_ref().map(|infos| &infos[idx]),
                    &mut rec,
                );
                if let Some(trace) = &trace {
                    rec.record_span(trace, idx);
                }
                ctx.merge_node_records(rec);
                slots.push(slot);
            }
            let output = plan.collect_output(|i| &slots[i]);
            if let (Some(tracer), Some(trace)) = (&tracer, trace) {
                tracer.finish(trace);
            }
            return output;
        }
        // Fused execution: a whole region runs (in one pass) when its root
        // comes up, so interior records only exist from that moment.  All
        // per-node records are therefore buffered and merged in node-list
        // order once the walk completes — the same order the unfused path
        // merges in, keeping footprints and timing labels byte-identical.
        let mut pending: Vec<Option<NodeRecords>> = (0..plan.nodes.len()).map(|_| None).collect();
        let mut slots: Vec<Slot<'_>> = Vec::with_capacity(plan.nodes.len());
        for idx in 0..plan.nodes.len() {
            match fusion.region_of(idx) {
                Some(region_index) if fusion.region(region_index).root == idx => {
                    let region = fusion.region(region_index);
                    let outcome = crate::fusion::execute_region(
                        plan,
                        region,
                        &|i: usize| &slots[i],
                        &ctx.settings,
                        &ctx.formats,
                        cache_info.as_deref(),
                        ctx.capture_enabled(),
                    );
                    ctx.note_fused_region(outcome.interior_bytes);
                    let mut root_slot = None;
                    for node in outcome.nodes {
                        if node.node == idx {
                            root_slot = Some(node.slot);
                        }
                        if let Some(trace) = &trace {
                            node.records.record_span(trace, node.node);
                        }
                        pending[node.node] = Some(node.records);
                    }
                    slots.push(root_slot.expect("region outcome includes its root"));
                }
                Some(_) => {
                    // Interior of a region: the region's single pass runs
                    // when its root comes up; until then (and after — the
                    // column is dropped once recorded) the slot is a
                    // placeholder no node ever reads.
                    slots.push(Slot::Fused);
                }
                None => {
                    let mut rec = NodeRecords::new(ctx.capture_enabled());
                    rec.set_node(idx);
                    let slot = execute_node(
                        plan,
                        idx,
                        |i| &slots[i],
                        source,
                        &ctx.settings,
                        &ctx.formats,
                        cache_info.as_ref().map(|infos| &infos[idx]),
                        &mut rec,
                    );
                    if let Some(trace) = &trace {
                        rec.record_span(trace, idx);
                    }
                    pending[idx] = Some(rec);
                    slots.push(slot);
                }
            }
        }
        for rec in pending.into_iter().flatten() {
            ctx.merge_node_records(rec);
        }
        let output = plan.collect_output(|i| &slots[i]);
        if let (Some(tracer), Some(trace)) = (&tracer, trace) {
            tracer.finish(trace);
        }
        output
    }

    /// Fallible counterpart of [`PlanExecutor::execute`]: runs the plan
    /// under the settings' [`QueryGovernor`](crate::govern::QueryGovernor)
    /// (when one is attached) and converts a governance or decode unwind
    /// into a structured [`ExecError`](crate::govern::ExecError).  Any
    /// other panic — a genuine bug — resumes unchanged.  On `Err`, `ctx`
    /// holds the records of the nodes that completed before the trip.
    pub fn try_execute(
        &self,
        plan: &QueryPlan,
        source: &dyn ColumnSource,
        ctx: &mut ExecutionContext,
    ) -> Result<PlanOutput, crate::govern::ExecError> {
        crate::govern::run_governed(|| self.execute(plan, source, ctx))
    }
}

/// Execute one plan node: the shared core of the serial [`PlanExecutor`] and
/// the [`crate::parallel::ParallelExecutor`].
///
/// `slots` resolves an already-executed node index to its materialised value
/// (a borrow of the serial slot vector, or of the parallel executor's
/// completed cells).  All bookkeeping goes to the node-local `rec`; the
/// caller merges it into the [`ExecutionContext`] in topological order.
///
/// With a plan cache attached (`settings.cache` plus this node's
/// precomputed `cache_info`), the node is first looked up by its canonical
/// subplan key: a hit replays the node's records under the identical names
/// and timing label — flagged via [`NodeRecords::note_cache_hit`] — and
/// returns without running the operator; a miss executes and inserts the
/// result, with the node's measured runtime as the eviction benefit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_node<'a, 's, F>(
    plan: &QueryPlan,
    idx: usize,
    slots: F,
    source: &'a dyn ColumnSource,
    settings: &ExecSettings,
    formats: &FormatConfig,
    cache_info: Option<&NodeCacheInfo>,
    rec: &mut NodeRecords,
) -> Slot<'a>
where
    'a: 's,
    F: Fn(usize) -> &'s Slot<'a>,
{
    crate::govern::checkpoint_node();
    let node = &plan.nodes[idx];
    if let PlanOp::Scan { column } = &node.op {
        let base = source.column(column);
        rec.record_base(column, base);
        return Slot::Base(base);
    }
    let col = |r: ColRef| slots(r.node).column(r.port);
    let full = plan.node_full_name(idx);
    let timing = plan.node_timing_label(idx);

    let cache = settings
        .cache
        .as_deref()
        .zip(cache_info.and_then(|info| info.key));
    if let Some((cache, key)) = cache {
        let lookup_started = Instant::now();
        if let Some(value) = cache.lookup(&key) {
            if let Some(slot) = slot_from_cached(plan, idx, &full, value, rec) {
                rec.note_cache_hit();
                rec.push_timing(&timing, lookup_started.elapsed());
                return slot;
            }
        }
    }

    let slot = run_node_op(
        plan, idx, &col, &slots, settings, formats, &full, &timing, rec,
    );
    if let Some((cache, key)) = cache {
        if let Some(value) = cached_from_slot(&slot) {
            let deps = cache_info.map(|info| info.deps.as_slice()).unwrap_or(&[]);
            cache.insert(key, value, rec.last_duration(), deps);
        }
    }
    slot
}

/// Run the physical operator of one (non-scan) plan node and record its
/// output — the execution half of [`execute_node`], shared by the hit-miss
/// wrapper above.
#[allow(clippy::too_many_arguments)]
fn run_node_op<'a, 's, F>(
    plan: &QueryPlan,
    idx: usize,
    col: &impl Fn(ColRef) -> &'s Column,
    slots: &F,
    settings: &ExecSettings,
    formats: &FormatConfig,
    full: &str,
    timing: &str,
    rec: &mut NodeRecords,
) -> Slot<'a>
where
    'a: 's,
    F: Fn(usize) -> &'s Slot<'a>,
{
    let node = &plan.nodes[idx];
    let out_format = formats.format_for(full, Format::Uncompressed);

    match &node.op {
        PlanOp::Scan { .. } => unreachable!("scans are handled by execute_node"),
        PlanOp::AggSum { values } => {
            let input = col(*values);
            let total = rec.time(timing, || agg_sum(input, settings));
            return Slot::Scalar(total);
        }
        PlanOp::GroupBy { keys } | PlanOp::GroupByRefine { keys, .. } => {
            let reps_name = format!("{full}_reps");
            let reps_format = formats.format_for(&reps_name, Format::Uncompressed);
            let keys = col(*keys);
            let result = match &node.op {
                PlanOp::GroupBy { .. } => rec.time(timing, || {
                    group_by(keys, (&out_format, &reps_format), settings)
                }),
                PlanOp::GroupByRefine { previous, .. } => {
                    let previous = slots(previous.node).group();
                    rec.time(timing, || {
                        group_by_refine(previous, keys, (&out_format, &reps_format), settings)
                    })
                }
                _ => unreachable!(),
            };
            rec.record_intermediate(full, &result.group_ids);
            rec.record_intermediate(&reps_name, &result.representatives);
            return Slot::Group(Box::new(result));
        }
        _ => {}
    }

    let out = match &node.op {
        PlanOp::Select {
            input,
            op,
            constant,
        } => {
            let input = col(*input);
            rec.time(timing, || {
                select(*op, input, *constant, &out_format, settings)
            })
        }
        PlanOp::SelectBetween { input, low, high } => {
            let input = col(*input);
            rec.time(timing, || {
                select_between(input, *low, *high, &out_format, settings)
            })
        }
        PlanOp::SelectIn2 {
            input,
            first,
            second,
        } => {
            let input = col(*input);
            rec.time(timing, || {
                let first = select(CmpOp::Eq, input, *first, &out_format, settings);
                let second = select(CmpOp::Eq, input, *second, &out_format, settings);
                merge_sorted(&first, &second, &out_format, settings)
            })
        }
        PlanOp::IntersectSorted { a, b } => {
            let (a, b) = (col(*a), col(*b));
            rec.time(timing, || intersect_sorted(a, b, &out_format, settings))
        }
        PlanOp::MergeSorted { a, b } => {
            let (a, b) = (col(*a), col(*b));
            rec.time(timing, || merge_sorted(a, b, &out_format, settings))
        }
        PlanOp::Project { data, positions } => {
            let (data, positions) = (col(*data), col(*positions));
            rec.time(timing, || project(data, positions, &out_format, settings))
        }
        PlanOp::SemiJoin { probe, build } => {
            let (probe, build) = (col(*probe), col(*build));
            rec.time(timing, || semi_join(probe, build, &out_format, settings))
        }
        PlanOp::Join { probe, build } => {
            let (probe, build) = (col(*probe), col(*build));
            // The probe-side positions of an N:1 key join are the
            // identity sequence 0..len; they are not part of the plan, so
            // they are materialised in DELTA + BP (ideal for a sorted
            // identity sequence) irrespective of the recorded output.
            let (probe_pos, build_pos) = rec.time(timing, || {
                join(probe, build, (&Format::DeltaDynBp, &out_format), settings)
            });
            assert_eq!(
                probe_pos.logical_len(),
                probe.logical_len(),
                "plan join is N:1 — every probe row must match exactly one build row"
            );
            build_pos
        }
        PlanOp::CalcBinary { op, lhs, rhs } => {
            let (lhs, rhs) = (col(*lhs), col(*rhs));
            rec.time(timing, || calc_binary(*op, lhs, rhs, &out_format, settings))
        }
        PlanOp::AggSumGrouped { group, values } => {
            let grouping = slots(group.node).group();
            let values = col(*values);
            // Grouped sums are final query outputs and stay uncompressed
            // (Section 3.3).
            rec.time(timing, || {
                agg_sum_grouped(
                    &grouping.group_ids,
                    values,
                    grouping.group_count,
                    &Format::Uncompressed,
                    settings,
                )
            })
        }
        PlanOp::Morph { input, target } => {
            let input = col(*input);
            rec.time(timing, || morph(input, target))
        }
        PlanOp::Scan { .. }
        | PlanOp::GroupBy { .. }
        | PlanOp::GroupByRefine { .. }
        | PlanOp::AggSum { .. } => unreachable!("handled above"),
    };
    rec.record_intermediate(full, &out);
    Slot::Col(Arc::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecSettings;

    fn source() -> HashMap<String, Column> {
        let mut columns = HashMap::new();
        columns.insert(
            "x".to_string(),
            Column::from_slice(&[5, 1, 5, 9, 5, 1, 9, 5]),
        );
        columns.insert(
            "y".to_string(),
            Column::from_slice(&[10, 20, 30, 40, 50, 60, 70, 80]),
        );
        columns
    }

    /// `SELECT SUM(y) WHERE x = 5` as a plan.
    fn scalar_plan() -> QueryPlan {
        let mut p = PlanBuilder::new("t");
        let x = p.scan("x");
        let y = p.scan("y");
        let pos = p.select("pos", x, CmpOp::Eq, 5);
        let projected = p.project("y_at_pos", y, pos);
        let total = p.agg_sum("total", projected);
        p.finish_scalar(total)
    }

    #[test]
    fn scalar_plan_executes_and_records() {
        let source = source();
        let mut ctx = ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        let out = scalar_plan().execute(&source, &mut ctx);
        assert_eq!(out.values, vec![10 + 30 + 50 + 80]);
        assert!(out.group_keys.is_empty());
        let names: Vec<&str> = ctx.records().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "t/pos", "t/y_at_pos"]);
        let timings: Vec<&str> = ctx.timings().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            timings,
            vec!["t/select:pos", "t/project:y_at_pos", "t/agg:total"]
        );
    }

    #[test]
    fn grouped_plan_executes() {
        let source = source();
        let mut p = PlanBuilder::new("g");
        let x = p.scan("x");
        let y = p.scan("y");
        let group = p.group_by("by_x", x);
        let sums = p.agg_sum_grouped("sum_y", group, y);
        let keys = p.project("key_x", x, group.representatives());
        let plan = p.finish_grouped(vec![keys], sums);
        let mut ctx = ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        let out = plan.execute(&source, &mut ctx);
        // Groups in first-occurrence order: 5, 1, 9.
        assert_eq!(out.group_keys, vec![vec![5, 1, 9]]);
        assert_eq!(out.values, vec![10 + 30 + 50 + 80, 20 + 60, 40 + 70]);
        let names: Vec<&str> = ctx.records().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["x", "y", "g/by_x", "g/by_x_reps", "g/sum_y", "g/key_x"]
        );
    }

    #[test]
    fn formats_are_resolved_per_edge() {
        let source = source();
        let formats = FormatConfig::uncompressed().set("t/pos", Format::DeltaDynBp);
        let mut ctx = ExecutionContext::new(ExecSettings::vectorized_compressed(), formats);
        scalar_plan().execute(&source, &mut ctx);
        let pos = ctx.records().iter().find(|r| r.name == "t/pos").unwrap();
        assert_eq!(pos.format, Format::DeltaDynBp);
    }

    #[test]
    fn scan_deduplicates_and_edges_enumerate_all_columns() {
        let mut p = PlanBuilder::new("t");
        let a = p.scan("x");
        let b = p.scan("x");
        assert_eq!(a, b);
        let pos = p.select("pos", a, CmpOp::Lt, 7);
        let total = p.agg_sum("total", pos);
        let plan = p.finish_scalar(total);
        assert_eq!(plan.base_columns(), vec!["x".to_string()]);
        assert_eq!(plan.intermediate_names(), vec!["t/pos".to_string()]);
        let edges = plan.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges[0].is_base && edges[0].name == "x");
        assert_eq!(edges[1].op, "select");
    }

    #[test]
    fn select_in2_matches_two_selects_merged() {
        let source = source();
        let mut p = PlanBuilder::new("t");
        let x = p.scan("x");
        let pos = p.select_in2("pos", x, 1, 9);
        let total = p.agg_sum("total", pos);
        let plan = p.finish_scalar(total);
        let mut ctx = ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        let out = plan.execute(&source, &mut ctx);
        // Positions of values 1 or 9: 1, 3, 5, 6 — summed as positions.
        assert_eq!(out.values, vec![1 + 3 + 5 + 6]);
        assert_eq!(
            ctx.intermediate_count(),
            1,
            "IN(2) is a single intermediate"
        );
    }

    #[test]
    fn describe_lists_nodes_and_formats() {
        let plan = scalar_plan();
        let formats = FormatConfig::uncompressed().set("t/pos", Format::Rle);
        let rendered = plan.describe(&formats);
        assert!(rendered.contains("plan \"t\""));
        assert!(rendered.contains("t/pos : RLE"));
        assert!(rendered.contains("output: scalar"));
        assert!(plan.to_string().contains("scan"));
    }

    #[test]
    #[should_panic(expected = "duplicate plan step name")]
    fn duplicate_step_names_are_rejected() {
        let mut p = PlanBuilder::new("t");
        let x = p.scan("x");
        p.select("pos", x, CmpOp::Eq, 1);
        p.select("pos", x, CmpOp::Eq, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate plan step name \"g_reps\"")]
    fn step_colliding_with_reserved_reps_name_is_rejected() {
        let mut p = PlanBuilder::new("t");
        let x = p.scan("x");
        p.group_by("g", x);
        // "g_reps" is already claimed by the grouping's second output.
        p.select("g_reps", x, CmpOp::Eq, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate plan step name \"h_reps\"")]
    fn grouping_claiming_an_existing_name_is_rejected() {
        let mut p = PlanBuilder::new("t");
        let x = p.scan("x");
        p.select("h_reps", x, CmpOp::Eq, 1);
        // The grouping's reserved "h_reps" output collides the other way.
        p.group_by("h", x);
    }

    #[test]
    fn warm_cache_run_is_byte_identical_to_cold_run() {
        let source = source();
        let cache = Arc::new(QueryCache::unbounded());
        let formats = FormatConfig::with_default(Format::DynBp);
        let settings = ExecSettings::vectorized_compressed().with_cache(Arc::clone(&cache));

        // Grouped plan: exercises Column, Pair and Scalar cache values.
        let plan = {
            let mut p = PlanBuilder::new("g");
            let x = p.scan("x");
            let y = p.scan("y");
            let group = p.group_by("by_x", x);
            let sums = p.agg_sum_grouped("sum_y", group, y);
            let keys = p.project("key_x", x, group.representatives());
            p.finish_grouped(vec![keys], sums)
        };

        let mut cold_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let cold = plan.execute(&source, &mut cold_ctx);
        assert_eq!(cold_ctx.cache_hit_count(), 0);
        assert!(cache.len() >= 3, "cold run populates the cache");

        let mut warm_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let warm = plan.execute(&source, &mut warm_ctx);
        assert_eq!(warm, cold);
        assert_eq!(warm_ctx.records(), cold_ctx.records());
        let warm_labels: Vec<&str> = warm_ctx.timings().iter().map(|(n, _)| n.as_str()).collect();
        let cold_labels: Vec<&str> = cold_ctx.timings().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(warm_labels, cold_labels);
        // Every non-scan node hit: group, grouped sum, project.
        assert_eq!(warm_ctx.cache_hit_count(), 3);

        // A cache-free reference run matches too.
        let mut plain_ctx =
            ExecutionContext::new(ExecSettings::vectorized_compressed(), formats.clone());
        let plain = plan.execute(&source, &mut plain_ctx);
        assert_eq!(plain, cold);
        assert_eq!(plain_ctx.records(), cold_ctx.records());
    }

    #[test]
    fn differing_formats_generations_and_settings_miss() {
        let source = source();
        let cache = Arc::new(QueryCache::unbounded());
        let plan = scalar_plan();
        let run = |formats: FormatConfig, settings: ExecSettings| {
            let mut ctx = ExecutionContext::new(settings.with_cache(Arc::clone(&cache)), formats);
            let out = plan.execute(&source, &mut ctx);
            (out, ctx.cache_hit_count())
        };
        let (cold, hits) = run(
            FormatConfig::uncompressed(),
            ExecSettings::vectorized_compressed(),
        );
        assert_eq!(hits, 0);
        // Same everything: all three non-scan nodes hit.
        let (warm, hits) = run(
            FormatConfig::uncompressed(),
            ExecSettings::vectorized_compressed(),
        );
        assert_eq!((warm, hits), (cold.clone(), 3));
        // A different edge format changes that edge's key and its
        // dependents' keys.
        let (refmt, hits) = run(
            FormatConfig::uncompressed().set("t/pos", Format::DeltaDynBp),
            ExecSettings::vectorized_compressed(),
        );
        assert_eq!(refmt, cold);
        assert_eq!(hits, 0);
        // A different integration degree misses entirely.
        let (plain, hits) = run(
            FormatConfig::uncompressed(),
            ExecSettings::scalar_uncompressed(),
        );
        assert_eq!(plain, cold);
        assert_eq!(hits, 0);
        // Bumping a base column's generation invalidates its subplans.
        cache.bump_generation("x");
        let (again, hits) = run(
            FormatConfig::uncompressed(),
            ExecSettings::vectorized_compressed(),
        );
        assert_eq!(again, cold);
        assert_eq!(hits, 0);
    }

    #[test]
    fn structural_fingerprint_is_stable_and_parameter_sensitive() {
        let make = |constant: u64| {
            let mut p = PlanBuilder::new("t");
            let x = p.scan("x");
            let pos = p.select("pos", x, CmpOp::Eq, constant);
            let total = p.agg_sum("total", pos);
            p.finish_scalar(total)
        };
        assert_eq!(
            make(5).structural_fingerprint(),
            make(5).structural_fingerprint()
        );
        assert_ne!(
            make(5).structural_fingerprint(),
            make(6).structural_fingerprint()
        );
        assert_ne!(
            scalar_plan().structural_fingerprint(),
            make(5).structural_fingerprint()
        );
    }

    #[test]
    fn morph_node_re_encodes() {
        let source = source();
        let mut p = PlanBuilder::new("t");
        let x = p.scan("x");
        let morphed = p.morph("x_rle", x, Format::Rle);
        let pos = p.select("pos", morphed, CmpOp::Eq, 5);
        let total = p.agg_sum("total", pos);
        let plan = p.finish_scalar(total);
        let mut ctx = ExecutionContext::new(
            ExecSettings::vectorized_compressed(),
            FormatConfig::uncompressed(),
        );
        plan.execute(&source, &mut ctx);
        let rec = ctx.records().iter().find(|r| r.name == "t/x_rle").unwrap();
        assert_eq!(rec.format, Format::Rle);
    }
}
