//! Operator fusion: single-pass cursor pipelines over compressed data.
//!
//! The operator-at-a-time model (DP1) materialises every intermediate as a
//! named compressed column.  For a chain like select → project → calc →
//! agg_sum that is wasteful: the interior columns are encoded by one
//! operator only to be decoded by exactly one consumer immediately after.
//! Fusion detects such *maximal fusible regions* in a [`QueryPlan`] and
//! executes each region as **one** chunk-at-a-time pass over a single
//! *driver* column: every driver chunk flows through all stages of the
//! region while it is cache-resident, and only the region *root*
//! materialises a full column (or scalar).
//!
//! ## Region detection
//!
//! A region is grown backwards from a root candidate (`agg_sum`, `project`
//! or `calc_binary`) along *streamed* edges — the inputs an operator
//! consumes sequentially (`select`/`select_between`: the filtered column,
//! `project`: the position list, `calc_binary`: both operands, `agg_sum`:
//! the summed column).  A producer is absorbed as an *interior* stage iff
//!
//! * its operator is position-preserving and streamable (`select`,
//!   `select_between`, `project`, `calc_binary`),
//! * it has exactly **one** consumer (the absorbing member), and
//! * it is not already part of another region.
//!
//! A grown region is valid iff it has at least one interior, all members'
//! streamed inputs resolve to members or to exactly **one** external
//! column (the *driver* — it may feed several stages), every `project`
//! member gathers from a column *outside* the region (its data side is
//! random-accessed, not streamed), and the per-chunk *shapes* line up:
//! stages only zip streams that are row-aligned within every driver chunk
//! (a select starts a fresh shape, a project carries its position stream's
//! shape, a calc requires both operands to share one shape).
//!
//! ## Byte identity
//!
//! Fused execution is observably identical to node-by-node execution:
//! results, footprint records and timing-label sequences are all
//! byte-identical.  Interior columns **are** still encoded — incrementally,
//! chunk by chunk, into the same [`ColumnBuilder`] the unfused operators
//! use, which is granularity-invariant (see
//! [`partitioned`](crate::ops::partitioned)) — because the footprint
//! records and plan-cache entries of interior nodes must not change.  What
//! fusion *removes* is the decode half of every interior round-trip, the
//! repeated driver passes, and the retention of interior columns: they are
//! dropped as soon as their record is taken, never entering the slot
//! table.  The per-query sum of dropped interior bytes is reported as
//! [`ExecutionContext::intermediate_bytes_avoided`](crate::ExecutionContext::intermediate_bytes_avoided).
//!
//! Fusion only applies under the `PurelyUncompressed` and
//! `OnTheFlyDeRecompression` integration degrees: the `Specialized` and
//! `OnTheFlyMorphing` degrees run format-specialised kernels whose
//! operator-local format choices a fused pipeline cannot reproduce
//! bit-for-bit, so regions silently demote to node-by-node execution
//! there.
//!
//! ## Governance and faults
//!
//! The fused loop checkpoints once per *node* when the region starts (one
//! checkpoint per member — the same count the unfused executor pays) and
//! once per driver chunk inside the loop, so cancellation, deadlines and
//! seeded chunk faults keep firing with bounded latency mid-pipeline.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use morph_cache::{CachedValue, QueryCache};
use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};
use morph_vector::emu::V512;
use morph_vector::kernels;
use morph_vector::scalar::Scalar;
use morph_vector::ProcessingStyle;

use crate::exec::{ExecSettings, FormatConfig, IntegrationDegree, NodeRecords};
use crate::ops::agg::sum_chunk;
use crate::ops::partitioned;
use crate::ops::project::ensure_random_access;
use crate::ops::select::filter_chunk;
use crate::plan::{ColRef, NodeCacheInfo, PlanOp, PlanOutputs, QueryPlan, Slot};
use crate::{BinaryOp, CmpOp};

/// Where a fused stage reads its streamed input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// The region's driver column (the one external stream).
    Driver,
    /// The in-flight output of an earlier stage of the same region.
    Stage(usize),
}

/// The operator one fused stage runs, with its streamed inputs rewritten
/// to [`Src`] references.
#[derive(Debug, Clone)]
pub(crate) enum StageKind {
    /// Comparison select emitting matching positions.
    Select {
        /// Streamed input.
        src: Src,
        /// Comparison operator.
        op: CmpOp,
        /// Comparison constant.
        constant: u64,
    },
    /// Inclusive range select emitting matching positions.
    SelectBetween {
        /// Streamed input.
        src: Src,
        /// Lower bound (inclusive).
        low: u64,
        /// Upper bound (inclusive).
        high: u64,
    },
    /// Gather from an external random-accessed data column.
    Project {
        /// The gathered column — external to the region, morphed to a
        /// random-access format once before the pass.
        data: ColRef,
        /// Streamed position list.
        positions: Src,
    },
    /// Element-wise binary calculation over two aligned streams.
    Calc {
        /// The arithmetic operator.
        op: BinaryOp,
        /// Left operand stream.
        lhs: Src,
        /// Right operand stream.
        rhs: Src,
    },
    /// Whole-column wrapping sum (always the region root).
    AggSum {
        /// Streamed input.
        src: Src,
    },
}

/// One stage of a fused region: the plan node it replaces plus its
/// rewritten operator.
#[derive(Debug, Clone)]
pub(crate) struct FusedStage {
    /// The plan node index this stage executes.
    pub(crate) node: usize,
    /// The rewritten operator.
    pub(crate) kind: StageKind,
}

/// One maximal fusible region of a plan.
#[derive(Debug, Clone)]
pub struct FusedRegion {
    /// Member node indices, ascending; the root is the last entry.
    pub(crate) members: Vec<usize>,
    /// The root node (the only member whose column/scalar is retained).
    pub(crate) root: usize,
    /// The single external streamed input all stages ultimately consume.
    pub(crate) driver: ColRef,
    /// Distinct node indices of all external inputs (driver and project
    /// data sides) — the region's dependencies in the scheduler graph.
    pub(crate) externals: Vec<usize>,
    /// The stages, in ascending node order (a stage only reads earlier
    /// stages or the driver).
    pub(crate) stages: Vec<FusedStage>,
    /// Whether every select stage reads the driver directly.  Only such
    /// regions can fan out as morsel parts: a select over a *derived*
    /// stream needs the running count of values emitted before its chunk,
    /// which a mid-column part cannot know.
    pub(crate) prefix_independent: bool,
}

/// Read-only summary of one fused region, for cost models and tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedRegionSummary {
    /// Edge name of the driver column (base-column name or
    /// `"<label>/<step>"`).
    pub driver: String,
    /// Edge names of the interior columns that fusion stops retaining.
    pub interior_edges: Vec<String>,
    /// Edge name of the root column (`None` when the root is a scalar
    /// aggregation).
    pub root_edge: Option<String>,
    /// Whether the region can fan out as morsel parts.
    pub prefix_independent: bool,
}

/// The fusion analysis of one [`QueryPlan`]: which nodes belong to which
/// maximal fusible region.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    regions: Vec<FusedRegion>,
    region_of: Vec<Option<usize>>,
}

impl FusionPlan {
    /// An analysis with no regions (fusion disabled or inapplicable).
    pub(crate) fn empty(node_count: usize) -> FusionPlan {
        FusionPlan {
            regions: Vec::new(),
            region_of: vec![None; node_count],
        }
    }

    /// Detect the maximal fusible regions of `plan` (pure plan-structure
    /// analysis — settings, formats and data play no role).
    pub fn analyze(plan: &QueryPlan) -> FusionPlan {
        let node_count = plan.nodes.len();
        let mut consumers = vec![0usize; node_count];
        for node in &plan.nodes {
            for input in node.op.inputs() {
                consumers[input.node] += 1;
            }
        }
        match &plan.outputs {
            PlanOutputs::Scalar(value) => consumers[value.node] += 1,
            PlanOutputs::Grouped { keys, values } => {
                for key in keys {
                    consumers[key.node] += 1;
                }
                consumers[values.node] += 1;
            }
        }
        let mut fusion = FusionPlan::empty(node_count);
        // Roots are visited in descending index order so a region claims
        // the longest suffix of its chain before an upstream candidate
        // could carve out a shorter one.
        for root in (0..node_count).rev() {
            if fusion.region_of[root].is_some() {
                continue;
            }
            if !matches!(
                plan.nodes[root].op,
                PlanOp::AggSum { .. } | PlanOp::Project { .. } | PlanOp::CalcBinary { .. }
            ) {
                continue;
            }
            if let Some(region) = grow_region(plan, &consumers, &fusion.region_of, root) {
                let index = fusion.regions.len();
                for &member in &region.members {
                    fusion.region_of[member] = Some(index);
                }
                fusion.regions.push(region);
            }
        }
        fusion
    }

    /// The analysis the executors actually run under `settings`: empty
    /// when fusion is disabled or the integration degree runs specialised
    /// kernels, and with fully cached regions demoted to node-by-node
    /// execution (their members hit the plan cache individually, exactly
    /// like an unfused run).
    pub(crate) fn for_execution(
        plan: &QueryPlan,
        settings: &ExecSettings,
        cache_info: Option<&[NodeCacheInfo]>,
    ) -> FusionPlan {
        if !settings.fusion {
            return FusionPlan::empty(plan.nodes.len());
        }
        if !matches!(
            settings.degree,
            IntegrationDegree::PurelyUncompressed | IntegrationDegree::OnTheFlyDeRecompression
        ) {
            return FusionPlan::empty(plan.nodes.len());
        }
        let mut fusion = FusionPlan::analyze(plan);
        if let (Some(cache), Some(infos)) = (settings.cache.as_deref(), cache_info) {
            fusion.demote_fully_cached(cache, infos);
        }
        fusion
    }

    /// Drop every region whose members are all present in the plan cache:
    /// executing them node-by-node serves each member from its existing
    /// entry, so warm runs stay byte-identical to unfused warm runs.
    fn demote_fully_cached(&mut self, cache: &QueryCache, infos: &[NodeCacheInfo]) {
        self.regions.retain(|region| {
            !region
                .members
                .iter()
                .all(|&m| infos[m].key.is_some_and(|key| cache.contains(&key)))
        });
        self.region_of = vec![None; self.region_of.len()];
        for (index, region) in self.regions.iter().enumerate() {
            for &member in &region.members {
                self.region_of[member] = Some(index);
            }
        }
    }

    /// Number of detected regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Whether no region was detected (or fusion is disabled).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions, for executor dispatch.
    pub(crate) fn regions(&self) -> &[FusedRegion] {
        &self.regions
    }

    /// The region containing `node`, if any.
    pub(crate) fn region_of(&self, node: usize) -> Option<usize> {
        self.region_of[node]
    }

    /// The region at `index`.
    pub(crate) fn region(&self, index: usize) -> &FusedRegion {
        &self.regions[index]
    }

    /// Whether `node` is the root of a region.
    pub(crate) fn is_region_root(&self, node: usize) -> bool {
        self.region_of[node].is_some_and(|index| self.regions[index].root == node)
    }

    /// Read-only summaries of the regions, for cost models and tooling.
    pub fn region_summaries(&self, plan: &QueryPlan) -> Vec<FusedRegionSummary> {
        self.regions
            .iter()
            .map(|region| FusedRegionSummary {
                driver: edge_name(plan, region.driver),
                interior_edges: region
                    .members
                    .iter()
                    .filter(|&&m| m != region.root)
                    .map(|&m| plan.node_full_name(m))
                    .collect(),
                root_edge: match plan.nodes[region.root].op {
                    PlanOp::AggSum { .. } => None,
                    _ => Some(plan.node_full_name(region.root)),
                },
                prefix_independent: region.prefix_independent,
            })
            .collect()
    }

    /// Render the regions as bracketed pipeline groups — the fusion
    /// section of EXPLAIN output (empty string when nothing fuses).
    pub fn render(&self, plan: &QueryPlan) -> String {
        use std::fmt::Write as _;
        if self.regions.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(out, "  fused pipelines:");
        for region in &self.regions {
            let chain: Vec<String> = region
                .members
                .iter()
                .map(|&m| {
                    format!(
                        "#{m} {}:{}",
                        plan.nodes[m].op.mnemonic(),
                        plan.nodes[m].name
                    )
                })
                .collect();
            let interiors: Vec<String> = region
                .members
                .iter()
                .filter(|&&m| m != region.root)
                .map(|&m| plan.node_full_name(m))
                .collect();
            let _ =
                writeln!(
                out,
                "    [{}] driver {}; single pass, interiors not retained: {}; morsel fan-out: {}",
                chain.join(" -> "),
                edge_name(plan, region.driver),
                interiors.join(", "),
                if region.prefix_independent { "yes" } else { "no" },
            );
        }
        out
    }
}

/// The edge (column) name a handle resolves to: the base-column name for
/// scans, `"<label>/<step>"` (or `"<label>/<step>_reps"`) otherwise.
pub(crate) fn edge_name(plan: &QueryPlan, r: ColRef) -> String {
    match &plan.nodes[r.node].op {
        PlanOp::Scan { column } => column.clone(),
        _ if r.port == 1 => format!("{}_reps", plan.node_full_name(r.node)),
        _ => plan.node_full_name(r.node),
    }
}

/// The inputs an operator consumes *sequentially* — the edges fusion can
/// turn into in-flight streams.  A project's data side is deliberately
/// absent: it is random-accessed, not streamed.
pub(crate) fn streamed_inputs(op: &PlanOp) -> Vec<ColRef> {
    match *op {
        PlanOp::Select { input, .. } | PlanOp::SelectBetween { input, .. } => vec![input],
        PlanOp::Project { positions, .. } => vec![positions],
        PlanOp::CalcBinary { lhs, rhs, .. } => vec![lhs, rhs],
        PlanOp::AggSum { values } => vec![values],
        _ => vec![],
    }
}

/// Whether an operator can run as an interior stage of a fused region.
pub(crate) fn interior_eligible(op: &PlanOp) -> bool {
    matches!(
        op,
        PlanOp::Select { .. }
            | PlanOp::SelectBetween { .. }
            | PlanOp::Project { .. }
            | PlanOp::CalcBinary { .. }
    )
}

/// Grow the maximal region rooted at `root` and validate it; `None` when
/// nothing fuses or a validity rule fails.
fn grow_region(
    plan: &QueryPlan,
    consumers: &[usize],
    region_of: &[Option<usize>],
    root: usize,
) -> Option<FusedRegion> {
    let mut members = vec![root];
    let mut worklist = vec![root];
    while let Some(member) = worklist.pop() {
        for input in streamed_inputs(&plan.nodes[member].op) {
            let candidate = input.node;
            if input.port != 0
                || members.contains(&candidate)
                || region_of[candidate].is_some()
                || !interior_eligible(&plan.nodes[candidate].op)
                || consumers[candidate] != 1
            {
                continue;
            }
            members.push(candidate);
            worklist.push(candidate);
        }
    }
    if members.len() < 2 {
        return None;
    }
    members.sort_unstable();

    // Exactly one distinct external streamed input: the driver.
    let mut driver: Option<ColRef> = None;
    for &member in &members {
        for input in streamed_inputs(&plan.nodes[member].op) {
            if members.contains(&input.node) {
                continue;
            }
            match driver {
                None => driver = Some(input),
                Some(existing) if existing == input => {}
                Some(_) => return None,
            }
        }
    }
    let driver = driver?;

    // Every project gathers from outside the region: its data side must be
    // a finished column, not an in-flight stream.
    for &member in &members {
        if let PlanOp::Project { data, .. } = plan.nodes[member].op {
            if members.contains(&data.node) {
                return None;
            }
        }
    }

    // Rewrite inputs to Src references and validate per-chunk shapes:
    // shape 0 is the driver's row space; each select starts a fresh shape,
    // a project carries its position stream's shape, a calc requires both
    // operands to share one.
    let stage_index: HashMap<usize, usize> =
        members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    let src_of = |r: ColRef| -> Src {
        if r == driver {
            Src::Driver
        } else {
            Src::Stage(stage_index[&r.node])
        }
    };
    let mut shapes: Vec<usize> = vec![0; members.len()];
    let mut next_shape = 1usize;
    let mut stages = Vec::with_capacity(members.len());
    let mut prefix_independent = true;
    for (index, &member) in members.iter().enumerate() {
        let shape_of = |s: Src, shapes: &[usize]| match s {
            Src::Driver => 0,
            Src::Stage(j) => shapes[j],
        };
        let kind = match plan.nodes[member].op {
            PlanOp::Select {
                input,
                op,
                constant,
            } => {
                let src = src_of(input);
                if src != Src::Driver {
                    prefix_independent = false;
                }
                shapes[index] = next_shape;
                next_shape += 1;
                StageKind::Select { src, op, constant }
            }
            PlanOp::SelectBetween { input, low, high } => {
                if low > high {
                    // The unfused operator rejects this; leave the panic
                    // to it rather than fusing an invalid plan.
                    return None;
                }
                let src = src_of(input);
                if src != Src::Driver {
                    prefix_independent = false;
                }
                shapes[index] = next_shape;
                next_shape += 1;
                StageKind::SelectBetween { src, low, high }
            }
            PlanOp::Project { data, positions } => {
                let src = src_of(positions);
                shapes[index] = shape_of(src, &shapes);
                StageKind::Project {
                    data,
                    positions: src,
                }
            }
            PlanOp::CalcBinary { op, lhs, rhs } => {
                let (lhs, rhs) = (src_of(lhs), src_of(rhs));
                if shape_of(lhs, &shapes) != shape_of(rhs, &shapes) {
                    return None;
                }
                shapes[index] = shape_of(lhs, &shapes);
                StageKind::Calc { op, lhs, rhs }
            }
            PlanOp::AggSum { values } => StageKind::AggSum {
                src: src_of(values),
            },
            _ => unreachable!("non-fusible operator absorbed into a region"),
        };
        stages.push(FusedStage { node: member, kind });
    }

    let mut externals = vec![driver.node];
    for stage in &stages {
        if let StageKind::Project { data, .. } = stage.kind {
            externals.push(data.node);
        }
    }
    externals.sort_unstable();
    externals.dedup();

    Some(FusedRegion {
        root: members[members.len() - 1],
        members,
        driver,
        externals,
        stages,
        prefix_independent,
    })
}

/// A partial (or complete) fused-stage output: a column for position- and
/// value-producing stages, a wrapping sum for the aggregation root.
pub(crate) enum FusedPartial {
    /// A (partial) output column.
    Col(Column),
    /// A (partial) wrapping sum.
    Sum(u64),
}

/// The completed execution of one region member: its node index, its
/// bookkeeping, and its slot (interiors yield [`Slot::Fused`] — their
/// columns are dropped once recorded).
pub(crate) struct FusedNodeOutcome {
    pub(crate) node: usize,
    pub(crate) records: NodeRecords,
    pub(crate) slot: Slot<'static>,
}

/// The completed execution of one region.
pub(crate) struct RegionOutcome {
    /// Per-member outcomes, in ascending node order.
    pub(crate) nodes: Vec<FusedNodeOutcome>,
    /// Physical bytes of the interior columns that were dropped instead of
    /// retained — the query's `intermediate_bytes_avoided` contribution.
    pub(crate) interior_bytes: u64,
}

/// Per-stage working state of one pass over (a range of) the driver.
struct StagePass<'d> {
    /// Per stage, the project data column (morphed to random access when
    /// necessary); `None` for non-project stages.
    data: Vec<Option<&'d Column>>,
    /// Per stage, the values produced from the current driver chunk.
    bufs: Vec<Vec<u64>>,
    /// Per stage, the total values emitted *before* the current chunk —
    /// the position base of selects over derived streams.
    emitted: Vec<u64>,
    /// Per stage, the running wrapping sum (aggregation stages only).
    sums: Vec<u64>,
    /// Per stage, accumulated compute time.
    elapsed: Vec<Duration>,
}

impl<'d> StagePass<'d> {
    fn new(region: &FusedRegion, data: Vec<Option<&'d Column>>) -> StagePass<'d> {
        let n = region.stages.len();
        StagePass {
            data,
            bufs: vec![Vec::new(); n],
            emitted: vec![0; n],
            sums: vec![0; n],
            elapsed: vec![Duration::ZERO; n],
        }
    }
}

/// Resolve a stage's streamed input within the current driver chunk.
fn src_vals<'x>(prev: &'x [Vec<u64>], chunk: &'x [u64], src: Src) -> &'x [u64] {
    match src {
        Src::Driver => chunk,
        Src::Stage(j) => &prev[j],
    }
}

/// The global position of the first value of a stream's current chunk.
fn src_base(emitted: &[u64], driver_base: u64, src: Src) -> u64 {
    match src {
        Src::Driver => driver_base,
        Src::Stage(j) => emitted[j],
    }
}

/// Drive one driver chunk through all stages of the region, filling every
/// stage's chunk buffer (and advancing the aggregation sums).  Fires one
/// governance chunk checkpoint before touching the data.
fn run_chunk(
    region: &FusedRegion,
    style: ProcessingStyle,
    pass: &mut StagePass<'_>,
    driver_base: u64,
    chunk: &[u64],
) {
    crate::govern::checkpoint_chunk();
    for (i, stage) in region.stages.iter().enumerate() {
        let started = Instant::now();
        let (prev, rest) = pass.bufs.split_at_mut(i);
        let emitted = &pass.emitted;
        match &stage.kind {
            StageKind::Select { src, op, constant } => {
                let out = &mut rest[0];
                out.clear();
                filter_chunk(
                    style,
                    *op,
                    src_vals(prev, chunk, *src),
                    *constant,
                    src_base(emitted, driver_base, *src),
                    out,
                );
            }
            StageKind::SelectBetween { src, low, high } => {
                let out = &mut rest[0];
                out.clear();
                let base = src_base(emitted, driver_base, *src);
                for (k, &value) in src_vals(prev, chunk, *src).iter().enumerate() {
                    if value >= *low && value <= *high {
                        out.push(base + k as u64);
                    }
                }
            }
            StageKind::Project { positions, .. } => {
                let out = &mut rest[0];
                out.clear();
                let data = pass.data[i].expect("project stage carries a data column");
                let positions = src_vals(prev, chunk, *positions);
                out.reserve(positions.len());
                for &position in positions {
                    out.push(
                        data.get(position as usize).unwrap_or_else(|| {
                            panic!("project: position {position} out of bounds")
                        }),
                    );
                }
            }
            StageKind::Calc { op, lhs, rhs } => {
                let out = &mut rest[0];
                out.clear();
                let (a, b) = (src_vals(prev, chunk, *lhs), src_vals(prev, chunk, *rhs));
                debug_assert_eq!(a.len(), b.len(), "fused calc operands must be aligned");
                match style {
                    ProcessingStyle::Scalar => kernels::binary_op::<Scalar>(*op, a, b, out),
                    ProcessingStyle::Vectorized => kernels::binary_op::<V512>(*op, a, b, out),
                }
            }
            StageKind::AggSum { src } => {
                rest[0].clear();
                pass.sums[i] =
                    pass.sums[i].wrapping_add(sum_chunk(style, src_vals(prev, chunk, *src)));
            }
        }
        pass.elapsed[i] += started.elapsed();
    }
    for i in 0..region.stages.len() {
        pass.emitted[i] += pass.bufs[i].len() as u64;
    }
}

/// Morph the project data columns of the region to random-access formats
/// where necessary (`None` entries already support random access and are
/// borrowed as-is).  One morph per project stage, before the pass — the
/// same transformation the unfused project operator applies per call.
pub(crate) fn prepare_project_data<'s, F>(region: &FusedRegion, col: &F) -> Vec<Option<Column>>
where
    F: Fn(ColRef) -> &'s Column,
{
    region
        .stages
        .iter()
        .map(|stage| match stage.kind {
            StageKind::Project { data, .. } => ensure_random_access(col(data)),
            _ => None,
        })
        .collect()
}

/// Per stage, the data column a project gathers from: the prepared morph
/// when one was needed, the external column otherwise.
fn resolve_project_data<'d, F>(
    region: &FusedRegion,
    prepared: &'d [Option<Column>],
    col: &F,
) -> Vec<Option<&'d Column>>
where
    F: Fn(ColRef) -> &'d Column,
{
    region
        .stages
        .iter()
        .enumerate()
        .map(|(i, stage)| match stage.kind {
            StageKind::Project { data, .. } => {
                Some(prepared[i].as_ref().unwrap_or_else(|| col(data)))
            }
            _ => None,
        })
        .collect()
}

/// Whole-column sink of one stage during a full (non-morsel) fused pass.
enum Sink {
    /// Uncompressed accumulation, finished via [`Column::from_vec`] —
    /// exactly what the operators do under `PurelyUncompressed`.
    Plain(Vec<u64>),
    /// Incremental encoding into the edge's assigned format — exactly what
    /// the operators do under `OnTheFlyDeRecompression` (byte-identical at
    /// any push granularity).
    Builder(ColumnBuilder),
    /// Wrapping sum (aggregation root); the value lives in the pass state.
    Sum,
}

/// Finish one region member: push its timing, record (and cache) its
/// output, and decide its slot.  Interiors contribute their physical size
/// to `interior_bytes` and collapse to [`Slot::Fused`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn fused_node_outcome(
    plan: &QueryPlan,
    region: &FusedRegion,
    node: usize,
    value: FusedPartial,
    elapsed: Duration,
    settings: &ExecSettings,
    cache_info: Option<&[NodeCacheInfo]>,
    capture: bool,
    interior_bytes: &mut u64,
) -> FusedNodeOutcome {
    let full = plan.node_full_name(node);
    let timing = plan.node_timing_label(node);
    let mut records = NodeRecords::new(capture);
    records.set_node(node);
    records.push_timing(&timing, elapsed);
    let (slot, cached) = match value {
        FusedPartial::Sum(total) => (Slot::Scalar(total), CachedValue::Scalar(total)),
        FusedPartial::Col(column) => {
            records.record_intermediate(&full, &column);
            let column = Arc::new(column);
            let cached = CachedValue::Column(Arc::clone(&column));
            let slot = if node == region.root {
                Slot::Col(column)
            } else {
                *interior_bytes += column.size_used_bytes() as u64;
                Slot::Fused
            };
            (slot, cached)
        }
    };
    if let (Some(cache), Some(infos)) = (settings.cache.as_deref(), cache_info) {
        let info = &infos[node];
        if let Some(key) = info.key {
            cache.insert(key, cached, records.last_duration(), &info.deps);
        }
    }
    FusedNodeOutcome {
        node,
        records,
        slot,
    }
}

/// Execute one fused region in a single pass over its driver column.
///
/// All externals (driver, project data) must already be in the slot table
/// — the caller dispatches the region when its *root* becomes ready, and
/// every external has a smaller node index than the root.
pub(crate) fn execute_region<'a, 's, F>(
    plan: &QueryPlan,
    region: &FusedRegion,
    slots: &F,
    settings: &ExecSettings,
    formats: &FormatConfig,
    cache_info: Option<&[NodeCacheInfo]>,
    capture: bool,
) -> RegionOutcome
where
    'a: 's,
    F: Fn(usize) -> &'s Slot<'a>,
{
    // One node checkpoint per member, exactly like the unfused executor.
    for _ in &region.members {
        crate::govern::checkpoint_node();
    }
    let col = |r: ColRef| slots(r.node).column(r.port);
    let driver = col(region.driver);
    let prepared = prepare_project_data(region, &col);
    let data = resolve_project_data(region, &prepared, &col);
    let mut pass = StagePass::new(region, data);
    let mut sinks: Vec<Sink> = region
        .stages
        .iter()
        .map(|stage| match stage.kind {
            StageKind::AggSum { .. } => Sink::Sum,
            _ if settings.degree == IntegrationDegree::PurelyUncompressed => {
                Sink::Plain(Vec::new())
            }
            _ => {
                let format =
                    formats.format_for(&plan.node_full_name(stage.node), Format::Uncompressed);
                Sink::Builder(ColumnBuilder::new(format))
            }
        })
        .collect();
    let mut driver_base = 0u64;
    driver.for_each_chunk(&mut |chunk| {
        run_chunk(region, settings.style, &mut pass, driver_base, chunk);
        for (i, sink) in sinks.iter_mut().enumerate() {
            match sink {
                Sink::Plain(values) => values.extend_from_slice(&pass.bufs[i]),
                Sink::Builder(builder) => builder.push_slice(&pass.bufs[i]),
                Sink::Sum => {}
            }
        }
        driver_base += chunk.len() as u64;
    });

    let mut outcome = RegionOutcome {
        nodes: Vec::with_capacity(region.stages.len()),
        interior_bytes: 0,
    };
    for (i, (stage, sink)) in region.stages.iter().zip(sinks).enumerate() {
        let value = match sink {
            Sink::Sum => FusedPartial::Sum(pass.sums[i]),
            Sink::Plain(values) => FusedPartial::Col(Column::from_vec(values)),
            Sink::Builder(builder) => FusedPartial::Col(builder.finish()),
        };
        let node = fused_node_outcome(
            plan,
            region,
            stage.node,
            value,
            pass.elapsed[i],
            settings,
            cache_info,
            capture,
            &mut outcome.interior_bytes,
        );
        outcome.nodes.push(node);
    }
    outcome
}

/// Run one morsel part of a fused region: a single pass over the driver
/// chunk range `chunks`, producing one partial per stage.  Only valid for
/// `prefix_independent` regions — every select reads the driver, whose
/// global chunk starts give exact position bases.
pub(crate) fn run_region_part<'a, 's, F>(
    plan: &QueryPlan,
    region: &FusedRegion,
    prepared: &[Option<Column>],
    chunks: Range<usize>,
    slots: &F,
    settings: &ExecSettings,
    formats: &FormatConfig,
) -> Vec<FusedPartial>
where
    'a: 's,
    F: Fn(usize) -> &'s Slot<'a>,
{
    debug_assert!(
        region.prefix_independent,
        "fused morsel over a derived select"
    );
    let col = |r: ColRef| slots(r.node).column(r.port);
    let driver = col(region.driver);
    let data = resolve_project_data(region, prepared, &col);
    let mut pass = StagePass::new(region, data);
    // Partials are always built through the builder (at the effective
    // output format), like every other morsel kernel: the range-order
    // splice reconstructs the serial byte stream.
    let mut sinks: Vec<Option<ColumnBuilder>> = region
        .stages
        .iter()
        .map(|stage| match stage.kind {
            StageKind::AggSum { .. } => None,
            _ => {
                let format = partitioned::effective_output_format(
                    &formats.format_for(&plan.node_full_name(stage.node), Format::Uncompressed),
                    settings,
                );
                Some(ColumnBuilder::new(format))
            }
        })
        .collect();
    driver.for_each_chunk_in(chunks, &mut |start, chunk| {
        run_chunk(region, settings.style, &mut pass, start, chunk);
        for (i, sink) in sinks.iter_mut().enumerate() {
            if let Some(builder) = sink {
                builder.push_slice(&pass.bufs[i]);
            }
        }
    });
    sinks
        .into_iter()
        .enumerate()
        .map(|(i, sink)| match sink {
            Some(builder) => FusedPartial::Col(builder.finish()),
            None => FusedPartial::Sum(pass.sums[i]),
        })
        .collect()
}

/// The output format a fused morsel job materialises member `node` in —
/// shared by part execution and the final splice.
pub(crate) fn fused_part_format(
    plan: &QueryPlan,
    node: usize,
    settings: &ExecSettings,
    formats: &FormatConfig,
) -> Format {
    partitioned::effective_output_format(
        &formats.format_for(&plan.node_full_name(node), Format::Uncompressed),
        settings,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ColumnRecord, ExecutionContext};
    use crate::plan::{PlanBuilder, PlanOutput};
    use std::collections::HashMap;

    fn source(n: u64) -> HashMap<String, Column> {
        let mut columns = HashMap::new();
        columns.insert(
            "a".to_string(),
            Column::from_vec((0..n).map(|i| i % 97).collect()),
        );
        columns.insert(
            "b".to_string(),
            Column::from_vec((0..n).map(|i| (i * 7) % 113).collect()),
        );
        columns.insert(
            "c".to_string(),
            Column::from_vec((0..n).map(|i| i % 11).collect()),
        );
        columns
    }

    /// select → project → project → calc → agg with a *shared* position
    /// list: the two projects make `pos` two-consumer, so the region is
    /// the tail {b_at, c_at, prod, total} driven by the select's output.
    fn shared_pos_plan() -> QueryPlan {
        let mut b = PlanBuilder::new("t");
        let a = b.scan("a");
        let bb = b.scan("b");
        let cc = b.scan("c");
        let pos = b.select("pos", a, CmpOp::Lt, 50);
        let bv = b.project("b_at", bb, pos);
        let cv = b.project("c_at", cc, pos);
        let prod = b.calc_binary("prod", BinaryOp::Mul, bv, cv);
        let total = b.agg_sum("total", prod);
        b.finish_scalar(total)
    }

    /// A pure chain select → project → agg: one region spanning all three
    /// non-scan nodes, driven by the scanned base column.
    fn chain_plan() -> QueryPlan {
        let mut b = PlanBuilder::new("sp");
        let a = b.scan("a");
        let bb = b.scan("b");
        let pos = b.select("pos", a, CmpOp::Lt, 50);
        let bv = b.project("b_at", bb, pos);
        let total = b.agg_sum("total", bv);
        b.finish_scalar(total)
    }

    fn run(
        plan: &QueryPlan,
        source: &HashMap<String, Column>,
        settings: ExecSettings,
        formats: FormatConfig,
    ) -> (PlanOutput, Vec<ColumnRecord>, Vec<String>, ExecutionContext) {
        let mut ctx = ExecutionContext::new(settings, formats);
        let output = plan.execute(source, &mut ctx);
        let labels = ctx.timings().iter().map(|(l, _)| l.clone()).collect();
        (output, ctx.records().to_vec(), labels, ctx)
    }

    #[test]
    fn analyze_detects_chain_region() {
        let plan = chain_plan(); // 0 scan a, 1 scan b, 2 pos, 3 b_at, 4 total
        let fusion = FusionPlan::analyze(&plan);
        assert_eq!(fusion.region_count(), 1);
        let region = fusion.region(0);
        assert_eq!(region.members, vec![2, 3, 4]);
        assert_eq!(region.root, 4);
        assert_eq!(region.driver, ColRef { node: 0, port: 0 });
        assert_eq!(region.externals, vec![0, 1]);
        assert!(region.prefix_independent);
        let summaries = fusion.region_summaries(&plan);
        assert_eq!(summaries[0].driver, "a");
        assert_eq!(summaries[0].interior_edges, vec!["sp/pos", "sp/b_at"]);
        assert_eq!(summaries[0].root_edge, None);
        assert!(summaries[0].prefix_independent);
    }

    #[test]
    fn analyze_stops_at_multi_consumer_nodes() {
        let plan = shared_pos_plan(); // 0 a, 1 b, 2 c, 3 pos, 4 b_at, 5 c_at, 6 prod, 7 total
        let fusion = FusionPlan::analyze(&plan);
        assert_eq!(fusion.region_count(), 1);
        let region = fusion.region(0);
        // pos is consumed by both projects, so it stays outside as driver.
        assert_eq!(region.members, vec![4, 5, 6, 7]);
        assert_eq!(region.driver, ColRef { node: 3, port: 0 });
        assert!(region.prefix_independent);
        assert!(fusion.region_of(3).is_none());
    }

    #[test]
    fn fused_serial_matches_unfused() {
        let source = source(5000);
        for plan in [shared_pos_plan(), chain_plan()] {
            for (settings, formats) in [
                (
                    ExecSettings::scalar_uncompressed(),
                    FormatConfig::uncompressed(),
                ),
                (
                    ExecSettings::vectorized_compressed(),
                    FormatConfig::with_default(Format::DynBp),
                ),
                (
                    ExecSettings::vectorized_compressed(),
                    FormatConfig::with_default(Format::DeltaDynBp),
                ),
            ] {
                let unfused = run(&plan, &source, settings.clone(), formats.clone());
                let fused = run(&plan, &source, settings.with_fusion(), formats);
                assert_eq!(unfused.0, fused.0, "results diverge");
                assert_eq!(unfused.1, fused.1, "footprint records diverge");
                assert_eq!(unfused.2, fused.2, "timing labels diverge");
                assert!(fused.3.fused_region_count() > 0);
                assert!(fused.3.intermediate_bytes_avoided() > 0);
                assert_eq!(unfused.3.fused_region_count(), 0);
            }
        }
    }

    #[test]
    fn specialized_degrees_demote_to_unfused() {
        let source = source(2000);
        let plan = chain_plan();
        let settings = ExecSettings {
            degree: IntegrationDegree::Specialized,
            ..ExecSettings::vectorized_compressed()
        }
        .with_fusion();
        let (_, _, _, ctx) = run(&plan, &source, settings, FormatConfig::uncompressed());
        assert_eq!(ctx.fused_region_count(), 0);
    }

    #[test]
    fn fused_and_unfused_share_cache_entries() {
        let source = source(4000);
        let plan = chain_plan();
        let formats = FormatConfig::with_default(Format::DynBp);

        // Cold fused run inserts every member under its unfused key...
        let cache = Arc::new(QueryCache::unbounded());
        let base = ExecSettings::vectorized_compressed().with_cache(Arc::clone(&cache));
        let cold = run(&plan, &source, base.clone().with_fusion(), formats.clone());
        assert_eq!(cold.3.fused_region_count(), 1);
        // ...so a warm *unfused* run hits all three non-scan nodes.
        let warm = run(&plan, &source, base.clone(), formats.clone());
        assert_eq!(warm.0, cold.0);
        assert_eq!(warm.1, cold.1);
        assert_eq!(warm.3.cache_hit_count(), 3);
        // A warm *fused* run demotes the fully cached region and hits too.
        let warm_fused = run(&plan, &source, base.with_fusion(), formats.clone());
        assert_eq!(warm_fused.0, cold.0);
        assert_eq!(warm_fused.1, cold.1);
        assert_eq!(warm_fused.3.cache_hit_count(), 3);
        assert_eq!(warm_fused.3.fused_region_count(), 0);

        // And the mirror image: cold unfused, warm fused.
        let cache = Arc::new(QueryCache::unbounded());
        let base = ExecSettings::vectorized_compressed().with_cache(Arc::clone(&cache));
        let cold = run(&plan, &source, base.clone(), formats.clone());
        let warm_fused = run(&plan, &source, base.with_fusion(), formats);
        assert_eq!(warm_fused.0, cold.0);
        assert_eq!(warm_fused.3.cache_hit_count(), 3);
        assert_eq!(warm_fused.3.fused_region_count(), 0);
    }

    #[test]
    fn describe_with_fusion_renders_pipeline_groups() {
        let plan = chain_plan();
        let formats = FormatConfig::with_default(Format::DynBp);
        let rendered = plan.describe_with_fusion(&formats);
        assert!(rendered.starts_with(&plan.describe(&formats)));
        assert!(rendered.contains("fused pipelines:"));
        assert!(rendered.contains("[#2 select:pos -> #3 project:b_at -> #4 agg:total]"));
        assert!(rendered.contains("driver a"));
        assert!(rendered.contains("interiors not retained: sp/pos, sp/b_at"));
        assert!(rendered.contains("morsel fan-out: yes"));
    }
}
