//! Query-execution support: execution settings (processing style and degree
//! of integration), per-column format assignment, and bookkeeping of memory
//! footprints and operator runtimes.
//!
//! A query execution plan in the compression-enabled model is "constructed
//! using our compression-enabled query operators in the same manner as for
//! uncompressed processing" (Section 3.3); the only new degree of freedom is
//! the *format* of every base column and intermediate.  [`FormatConfig`]
//! captures such an assignment, and [`ExecutionContext`] records what a query
//! actually did with it — the total memory footprint of all touched columns
//! and the runtime per operator — which is exactly what the paper's
//! evaluation reports (Figures 6–10).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use morph_cache::QueryCache;
use morph_compression::Format;
use morph_storage::Column;
use morph_vector::ProcessingStyle;

/// The four degrees of integrating compression into query operators
/// (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrationDegree {
    /// Uncompressed internal processing with direct data access — the
    /// baseline with no compression involved at all (Figure 2(a)).
    PurelyUncompressed,
    /// Uncompressed internal processing with adaptive data access: inputs are
    /// decompressed and outputs recompressed on the fly, one cache-resident
    /// block / vector register at a time (Figure 2(b)).  This is the default
    /// and most general degree.
    #[default]
    OnTheFlyDeRecompression,
    /// Compressed internal processing with direct data access: the operator
    /// is specialised to the formats of its inputs and outputs
    /// (Figure 2(c)).  Falls back to on-the-fly de/re-compression when no
    /// specialization exists for the given formats.
    Specialized,
    /// Compressed internal processing with adaptive data access: inputs and
    /// outputs are *morphed* to the formats a specialized operator expects
    /// (Figure 2(d)).
    OnTheFlyMorphing,
}

impl IntegrationDegree {
    /// All four degrees, in the order of Figure 2.
    pub fn all() -> [IntegrationDegree; 4] {
        [
            IntegrationDegree::PurelyUncompressed,
            IntegrationDegree::OnTheFlyDeRecompression,
            IntegrationDegree::Specialized,
            IntegrationDegree::OnTheFlyMorphing,
        ]
    }

    /// Label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            IntegrationDegree::PurelyUncompressed => "purely-uncompressed",
            IntegrationDegree::OnTheFlyDeRecompression => "on-the-fly-de/re-compression",
            IntegrationDegree::Specialized => "specialized",
            IntegrationDegree::OnTheFlyMorphing => "on-the-fly-morphing",
        }
    }
}

/// How operators execute: processing style (scalar vs. vectorized), degree
/// of integration of compression, intra-operator parallelism, and the
/// optional cross-query plan cache.
#[derive(Debug, Clone, Default)]
pub struct ExecSettings {
    /// Scalar or vectorized operator cores.
    pub style: ProcessingStyle,
    /// Degree of integrating compression into the operators.
    pub degree: IntegrationDegree,
    /// Minimum input length (in data elements) above which the parallel
    /// executor splits a single hot operator (select, select-between,
    /// project, semi-join probe, calc, sorted intersection, whole-column
    /// sum) into chunk-range *morsels* processed by several workers.
    /// `None` (the default) disables intra-operator parallelism; the serial
    /// executor ignores the setting entirely.
    pub morsel_threshold: Option<usize>,
    /// Cross-query plan-level cache consulted by both executors before a
    /// node is scheduled: a hit completes the node without running the
    /// operator, a miss inserts the node's result on completion.  `None`
    /// (the default) disables caching.  The handle is shared — clone the
    /// settings (or the `Arc`) to let several queries populate one cache.
    pub cache: Option<Arc<QueryCache>>,
    /// Per-query governance token (cancellation, wall-clock deadline,
    /// transient-memory budget) checked by both executors at node and
    /// chunk boundaries.  `None` (the default) disables governance.  The
    /// handle is shared: the submitting side keeps a clone so it can
    /// [`cancel`](crate::govern::QueryGovernor::cancel) mid-execution.
    pub governor: Option<Arc<crate::govern::QueryGovernor>>,
    /// Enable operator fusion: maximal single-consumer chains of
    /// position-preserving nodes execute as one chunk-at-a-time pass over
    /// their driver column ([`fusion`](crate::fusion)).  Results, footprint
    /// records and timing-label sequences stay byte-identical to unfused
    /// execution; interior columns are dropped as soon as they are
    /// recorded.  `false` (the default) keeps node-by-node execution.
    pub fusion: bool,
    /// Per-query span recorder consulted by all executors.  When attached,
    /// every execution publishes a [`PlanTrace`](morph_telemetry::PlanTrace)
    /// — one span per plan node with deterministic ids derived from the
    /// plan's structural fingerprint — recorded with relaxed atomics on the
    /// happy path (the same budget as the governor's checkpoints).  `None`
    /// (the default) disables tracing; results, footprint records and
    /// timing-label sequences are byte-identical either way.
    pub tracer: Option<Arc<morph_telemetry::QueryTracer>>,
}

/// Settings compare by configuration; the cache and governor handles
/// compare by identity (two settings sharing one cache are equal, two
/// distinct caches are not).
impl PartialEq for ExecSettings {
    fn eq(&self, other: &Self) -> bool {
        self.style == other.style
            && self.degree == other.degree
            && self.morsel_threshold == other.morsel_threshold
            && self.fusion == other.fusion
            && match (&self.cache, &other.cache) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
            && match (&self.governor, &other.governor) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
            && match (&self.tracer, &other.tracer) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for ExecSettings {}

impl ExecSettings {
    /// Scalar processing on uncompressed data — the configuration the paper
    /// uses to compare against MonetDB (Figure 9, "MorphStore scalar
    /// uncompr.").
    pub fn scalar_uncompressed() -> ExecSettings {
        ExecSettings {
            style: ProcessingStyle::Scalar,
            degree: IntegrationDegree::PurelyUncompressed,
            ..ExecSettings::default()
        }
    }

    /// Vectorized processing on uncompressed data.
    pub fn vectorized_uncompressed() -> ExecSettings {
        ExecSettings {
            style: ProcessingStyle::Vectorized,
            degree: IntegrationDegree::PurelyUncompressed,
            ..ExecSettings::default()
        }
    }

    /// Vectorized processing with continuous compression (the paper's
    /// headline configuration).
    pub fn vectorized_compressed() -> ExecSettings {
        ExecSettings {
            style: ProcessingStyle::Vectorized,
            degree: IntegrationDegree::OnTheFlyDeRecompression,
            ..ExecSettings::default()
        }
    }

    /// The same settings with intra-operator morsel parallelism enabled for
    /// operator inputs of at least `threshold` data elements (builder style,
    /// for sweeps: `ExecSettings::vectorized_compressed()
    /// .with_morsel_threshold(64 * 1024)`).
    pub fn with_morsel_threshold(mut self, threshold: usize) -> ExecSettings {
        self.morsel_threshold = Some(threshold);
        self
    }

    /// The same settings with the given cross-query plan cache attached
    /// (builder style).  Both executors consult the cache before running a
    /// node and insert results on completion; warm runs return byte-identical
    /// results and bookkeeping to cold runs.
    pub fn with_cache(mut self, cache: Arc<QueryCache>) -> ExecSettings {
        self.cache = Some(cache);
        self
    }

    /// The same settings with a per-query governance token attached
    /// (builder style).  Both executors check the governor at node and
    /// chunk boundaries; a violated limit surfaces as an
    /// [`ExecError`](crate::govern::ExecError) from the `try_execute`
    /// entry points.
    pub fn with_governor(mut self, governor: Arc<crate::govern::QueryGovernor>) -> ExecSettings {
        self.governor = Some(governor);
        self
    }

    /// The same settings with operator fusion enabled (builder style).
    /// Fusible chains execute as single-pass cursor pipelines; all results
    /// and bookkeeping stay byte-identical to unfused execution.
    pub fn with_fusion(mut self) -> ExecSettings {
        self.fusion = true;
        self
    }

    /// The same settings with a per-query span recorder attached (builder
    /// style).  All executors publish a
    /// [`PlanTrace`](morph_telemetry::PlanTrace) per execution, which
    /// [`QueryPlan::explain_analyze`](crate::plan::QueryPlan::explain_analyze)
    /// renders as a per-node profile.
    pub fn with_tracer(mut self, tracer: Arc<morph_telemetry::QueryTracer>) -> ExecSettings {
        self.tracer = Some(tracer);
        self
    }
}

/// An assignment of a compression format to every named base column and
/// intermediate of a query.
///
/// Columns without an explicit entry use the default format.  Assignments are
/// independent per column (design principle DP2).
#[derive(Debug, Clone, Default)]
pub struct FormatConfig {
    default: Option<Format>,
    per_column: HashMap<String, Format>,
}

impl FormatConfig {
    /// Configuration in which every column is uncompressed.
    pub fn uncompressed() -> FormatConfig {
        FormatConfig {
            default: Some(Format::Uncompressed),
            per_column: HashMap::new(),
        }
    }

    /// Configuration with the given default format for every column.
    pub fn with_default(format: Format) -> FormatConfig {
        FormatConfig {
            default: Some(format),
            per_column: HashMap::new(),
        }
    }

    /// Set the format of one named column, returning `self` for chaining.
    pub fn set(mut self, column: &str, format: Format) -> FormatConfig {
        self.per_column.insert(column.to_string(), format);
        self
    }

    /// Set the format of one named column in place.
    pub fn insert(&mut self, column: &str, format: Format) {
        self.per_column.insert(column.to_string(), format);
    }

    /// The format assigned to `column`; `fallback` applies when neither a
    /// per-column entry nor a default exists.
    pub fn format_for(&self, column: &str, fallback: Format) -> Format {
        self.per_column
            .get(column)
            .copied()
            .or(self.default)
            .unwrap_or(fallback)
    }

    /// Names with explicit per-column assignments.
    pub fn explicit_columns(&self) -> impl Iterator<Item = &str> {
        self.per_column.keys().map(|s| s.as_str())
    }

    /// The default format, if one was set.
    pub fn default_format(&self) -> Option<Format> {
        self.default
    }
}

/// A record of one column touched during query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRecord {
    /// Name of the column (base column or intermediate).
    pub name: String,
    /// Format the column was materialised in.
    pub format: Format,
    /// Logical number of data elements.
    pub len: usize,
    /// Physical size in bytes (compressed main part + remainder).
    pub bytes: usize,
    /// Whether this is a base column (as opposed to an intermediate).
    pub is_base: bool,
}

/// Bookkeeping of a single plan node's execution, recorded independently of
/// the [`ExecutionContext`] so nodes can run on worker threads.
///
/// The parallel plan executor gives every node its own `NodeRecords`; once
/// all nodes have completed, the per-node records are merged back into the
/// context **in topological (node-list) order** via
/// [`ExecutionContext::merge_node_records`].  Because the serial executor
/// visits nodes in exactly that order, the merged footprint records and
/// operator-timing label sequences are identical to serial execution no
/// matter which thread ran which node when.
#[derive(Debug, Default)]
pub struct NodeRecords {
    records: Vec<ColumnRecord>,
    timings: Vec<(String, Duration)>,
    /// Stable node index of each timing record, aligned with `timings` —
    /// the join key between timing labels and tracing spans, carried out of
    /// band so the label *strings* (which the determinism suites compare
    /// byte-for-byte) stay untouched.
    timing_nodes: Vec<Option<u32>>,
    node: Option<u32>,
    captured: Vec<(String, Column)>,
    capture: bool,
    cache_hits: usize,
}

impl NodeRecords {
    /// Create a recorder; `capture` keeps a copy of every recorded
    /// intermediate (mirroring [`ExecutionContext::enable_capture`]).
    pub fn new(capture: bool) -> NodeRecords {
        NodeRecords {
            capture,
            ..NodeRecords::default()
        }
    }

    /// Record a base column touched by this node.  Per-query deduplication
    /// happens at merge time, in the context.
    pub fn record_base(&mut self, name: &str, column: &Column) {
        self.records.push(ColumnRecord {
            name: name.to_string(),
            format: *column.format(),
            len: column.logical_len(),
            bytes: column.size_used_bytes(),
            is_base: true,
        });
    }

    /// Record an intermediate result produced by this node; its physical
    /// size is charged to the current query's memory budget.
    pub fn record_intermediate(&mut self, name: &str, column: &Column) {
        // Cross-check the static plan verifier against runtime reality: in
        // debug builds every produced column must carry a self-consistent
        // seekable chunk directory, so all existing determinism suites
        // exercise the invariant for free.
        #[cfg(debug_assertions)]
        if let Err(detail) = column.check_chunk_directory() {
            panic!("column {name:?} has an inconsistent chunk directory: {detail}");
        }
        crate::govern::charge_materialized(column.size_used_bytes());
        self.records.push(ColumnRecord {
            name: name.to_string(),
            format: *column.format(),
            len: column.logical_len(),
            bytes: column.size_used_bytes(),
            is_base: false,
        });
        if self.capture {
            self.captured.push((name.to_string(), column.clone()));
        }
    }

    /// Declare the stable plan-node index this recorder belongs to; every
    /// timing pushed afterwards carries it (see
    /// [`ExecutionContext::timing_node_ids`]).
    pub fn set_node(&mut self, node: usize) {
        self.node = Some(node as u32);
    }

    /// Run `f`, recording its wall-clock duration under `op_name`.
    pub fn time<R>(&mut self, op_name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.timings.push((op_name.to_string(), start.elapsed()));
        self.timing_nodes.push(self.node);
        result
    }

    /// Record an externally measured duration under `op_name` — used by the
    /// morsel path, where one operator's wall clock spans several workers
    /// and cannot be measured around a single closure, and by the cache-hit
    /// path, where the recorded duration is the lookup time.
    pub fn push_timing(&mut self, op_name: &str, elapsed: Duration) {
        self.timings.push((op_name.to_string(), elapsed));
        self.timing_nodes.push(self.node);
    }

    /// The duration of the most recent timing record — the node's measured
    /// runtime, which becomes the eviction *benefit* of its cache entry.
    pub fn last_duration(&self) -> Duration {
        self.timings
            .last()
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// Flag this node as served from the plan-level cache.  The footprint
    /// and timing records stay identical to an executed node (that is the
    /// warm-run determinism guarantee); the flag keeps the accounting
    /// honest by making hits countable.
    pub fn note_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Publish this node's execution into a tracing span: the recorded
    /// operator wall clock (zero for scans, the lookup time for cache
    /// hits), the output's logical rows and physical bytes from the last
    /// footprint record, and the cache-hit flag.  Purely additive — nothing
    /// in the records themselves changes.
    pub fn record_span(&self, trace: &morph_telemetry::PlanTrace, node: usize) {
        let (rows, bytes, logical) = match self.records.last() {
            Some(record) => (
                record.len as u64,
                record.bytes as u64,
                (record.len as u64) * 8,
            ),
            None => (0, 0, 0),
        };
        trace.record_node(
            node,
            self.last_duration(),
            rows,
            bytes,
            logical,
            self.cache_hits > 0,
        );
    }
}

/// Records what a query execution did: which columns were touched (with their
/// formats and physical sizes) and how long each operator took.
///
/// The *memory footprint* of a query is the sum of the physical sizes of all
/// recorded columns — base columns and intermediates — matching the metric of
/// Figures 6–8 and 10.
#[derive(Debug, Default)]
pub struct ExecutionContext {
    /// Execution settings used by the query.
    pub settings: ExecSettings,
    /// Format assignment used by the query.
    pub formats: FormatConfig,
    records: Vec<ColumnRecord>,
    timings: Vec<(String, Duration)>,
    timing_nodes: Vec<Option<u32>>,
    capture: bool,
    captured: HashMap<String, Column>,
    cache_hits: usize,
    fused_regions: usize,
    fused_bytes_avoided: u64,
}

impl ExecutionContext {
    /// Create a context with the given settings and format assignment.
    pub fn new(settings: ExecSettings, formats: FormatConfig) -> ExecutionContext {
        ExecutionContext {
            settings,
            formats,
            records: Vec::new(),
            timings: Vec::new(),
            timing_nodes: Vec::new(),
            capture: false,
            captured: HashMap::new(),
            cache_hits: 0,
            fused_regions: 0,
            fused_bytes_avoided: 0,
        }
    }

    /// Keep a copy of every recorded intermediate column.
    ///
    /// The format-selection strategies (Figures 7 and 10 of the paper) need
    /// to know the data characteristics — or even try out every format — for
    /// every intermediate; capturing one reference execution provides them.
    pub fn enable_capture(&mut self) {
        self.capture = true;
    }

    /// The captured intermediate columns (empty unless
    /// [`ExecutionContext::enable_capture`] was called before execution).
    pub fn captured_columns(&self) -> &HashMap<String, Column> {
        &self.captured
    }

    /// The format assigned to `column`, defaulting to uncompressed.
    pub fn format_for(&self, column: &str) -> Format {
        self.formats.format_for(column, Format::Uncompressed)
    }

    /// Record a base column touched by the query.  Recording the same base
    /// column twice has no effect (its footprint is counted once per query,
    /// as in the paper's evaluation).
    pub fn record_base(&mut self, name: &str, column: &Column) {
        if self.records.iter().any(|r| r.is_base && r.name == name) {
            return;
        }
        self.records.push(ColumnRecord {
            name: name.to_string(),
            format: *column.format(),
            len: column.logical_len(),
            bytes: column.size_used_bytes(),
            is_base: true,
        });
    }

    /// Record an intermediate result produced by the query; its physical
    /// size is charged to the current query's memory budget.
    pub fn record_intermediate(&mut self, name: &str, column: &Column) {
        // Cross-check the static plan verifier against runtime reality: in
        // debug builds every produced column must carry a self-consistent
        // seekable chunk directory, so all existing determinism suites
        // exercise the invariant for free.
        #[cfg(debug_assertions)]
        if let Err(detail) = column.check_chunk_directory() {
            panic!("column {name:?} has an inconsistent chunk directory: {detail}");
        }
        crate::govern::charge_materialized(column.size_used_bytes());
        self.records.push(ColumnRecord {
            name: name.to_string(),
            format: *column.format(),
            len: column.logical_len(),
            bytes: column.size_used_bytes(),
            is_base: false,
        });
        if self.capture {
            self.captured.insert(name.to_string(), column.clone());
        }
    }

    /// Run `f`, recording its wall-clock duration under `op_name`.
    pub fn time<R>(&mut self, op_name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.timings.push((op_name.to_string(), start.elapsed()));
        self.timing_nodes.push(None);
        result
    }

    /// Whether intermediate capture is enabled (see
    /// [`ExecutionContext::enable_capture`]).
    pub fn capture_enabled(&self) -> bool {
        self.capture
    }

    /// Merge the records of one executed plan node into the context.
    ///
    /// The plan executors call this once per node **in topological
    /// (node-list) order**, which makes the merged footprint and timing
    /// sequences independent of the actual (possibly parallel) execution
    /// schedule.  Base-column records deduplicate exactly like
    /// [`ExecutionContext::record_base`]: the footprint of a base column is
    /// counted once per query.
    pub fn merge_node_records(&mut self, node: NodeRecords) {
        for record in node.records {
            if record.is_base
                && self
                    .records
                    .iter()
                    .any(|r| r.is_base && r.name == record.name)
            {
                continue;
            }
            self.records.push(record);
        }
        self.timings.extend(node.timings);
        self.timing_nodes.extend(node.timing_nodes);
        if self.capture {
            self.captured.extend(node.captured);
        }
        self.cache_hits += node.cache_hits;
    }

    /// Number of plan nodes this execution served from the plan-level cache
    /// (0 without a cache).  Footprint and timing records are identical for
    /// hit and executed nodes; this counter is the explicit hit flag.
    pub fn cache_hit_count(&self) -> usize {
        self.cache_hits
    }

    /// All recorded columns.
    pub fn records(&self) -> &[ColumnRecord] {
        &self.records
    }

    /// All recorded operator timings, in execution order.
    pub fn timings(&self) -> &[(String, Duration)] {
        &self.timings
    }

    /// The stable plan-node index of each timing record, aligned with
    /// [`ExecutionContext::timings`] — `None` for ad-hoc timings recorded
    /// outside a plan node.  Spans and timings join on this channel instead
    /// of matching label strings (the label sequences themselves are part
    /// of the byte-identity contract and never change).
    pub fn timing_node_ids(&self) -> &[Option<u32>] {
        &self.timing_nodes
    }

    /// Total physical size of all recorded columns (bytes).
    pub fn total_footprint_bytes(&self) -> usize {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Total physical size of the recorded base columns (bytes).
    pub fn base_footprint_bytes(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.is_base)
            .map(|r| r.bytes)
            .sum()
    }

    /// Total physical size of the recorded intermediates (bytes).
    pub fn intermediate_footprint_bytes(&self) -> usize {
        self.records
            .iter()
            .filter(|r| !r.is_base)
            .map(|r| r.bytes)
            .sum()
    }

    /// Sum of all recorded operator durations.
    pub fn total_runtime(&self) -> Duration {
        self.timings.iter().map(|(_, d)| *d).sum()
    }

    /// Number of recorded intermediates.
    pub fn intermediate_count(&self) -> usize {
        self.records.iter().filter(|r| !r.is_base).count()
    }

    /// Note one executed fused region whose interior columns summed to
    /// `bytes` physical bytes — bytes that were recorded (footprints stay
    /// byte-identical) but *not retained*: the columns were dropped
    /// instead of entering the slot table.
    pub fn note_fused_region(&mut self, bytes: u64) {
        self.fused_regions += 1;
        self.fused_bytes_avoided += bytes;
    }

    /// Fold fused-region accounting from a parallel execution (called once
    /// after the workers join, with their accumulated totals).
    pub(crate) fn add_fused(&mut self, regions: usize, bytes: u64) {
        self.fused_regions += regions;
        self.fused_bytes_avoided += bytes;
    }

    /// Number of fused regions this execution ran as single-pass pipelines
    /// (0 with fusion disabled).
    pub fn fused_region_count(&self) -> usize {
        self.fused_regions
    }

    /// Physical bytes of interior columns that fused pipelines recorded
    /// but never retained — the per-query materialisation saving of
    /// operator fusion (0 with fusion disabled).
    pub fn intermediate_bytes_avoided(&self) -> u64 {
        self.fused_bytes_avoided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_labels_and_default() {
        assert_eq!(IntegrationDegree::all().len(), 4);
        assert_eq!(
            IntegrationDegree::default(),
            IntegrationDegree::OnTheFlyDeRecompression
        );
        let labels: std::collections::HashSet<&str> =
            IntegrationDegree::all().iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn exec_settings_presets() {
        let scalar = ExecSettings::scalar_uncompressed();
        assert_eq!(scalar.style, ProcessingStyle::Scalar);
        assert_eq!(scalar.degree, IntegrationDegree::PurelyUncompressed);
        let compressed = ExecSettings::vectorized_compressed();
        assert_eq!(compressed.style, ProcessingStyle::Vectorized);
        assert_eq!(
            compressed.degree,
            IntegrationDegree::OnTheFlyDeRecompression
        );
        assert_eq!(
            ExecSettings::vectorized_uncompressed().degree,
            IntegrationDegree::PurelyUncompressed
        );
    }

    #[test]
    fn format_config_lookup_precedence() {
        let config = FormatConfig::with_default(Format::DynBp).set("x", Format::Rle);
        assert_eq!(config.format_for("x", Format::Uncompressed), Format::Rle);
        assert_eq!(config.format_for("y", Format::Uncompressed), Format::DynBp);
        let empty = FormatConfig::default();
        assert_eq!(
            empty.format_for("z", Format::StaticBp(7)),
            Format::StaticBp(7)
        );
        assert_eq!(empty.default_format(), None);
        assert_eq!(
            FormatConfig::uncompressed().format_for("q", Format::Rle),
            Format::Uncompressed
        );
    }

    #[test]
    fn format_config_insert_and_iterate() {
        let mut config = FormatConfig::uncompressed();
        config.insert("a", Format::Rle);
        config.insert("b", Format::DynBp);
        let mut columns: Vec<&str> = config.explicit_columns().collect();
        columns.sort_unstable();
        assert_eq!(columns, vec!["a", "b"]);
    }

    #[test]
    fn execution_context_accounts_footprints() {
        let mut ctx = ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        let base = Column::from_slice(&[1, 2, 3, 4]);
        let inter = Column::compress(&(0..1000u64).collect::<Vec<_>>(), &Format::StaticBp(10));
        ctx.record_base("base", &base);
        ctx.record_intermediate("inter", &inter);
        assert_eq!(ctx.base_footprint_bytes(), 32);
        assert_eq!(ctx.intermediate_footprint_bytes(), inter.size_used_bytes());
        assert_eq!(ctx.total_footprint_bytes(), 32 + inter.size_used_bytes());
        assert_eq!(ctx.records().len(), 2);
        assert_eq!(ctx.intermediate_count(), 1);
    }

    #[test]
    fn execution_context_times_operators() {
        let mut ctx = ExecutionContext::default();
        let result = ctx.time("op1", || 21 * 2);
        assert_eq!(result, 42);
        ctx.time("op2", || std::thread::sleep(Duration::from_millis(1)));
        assert_eq!(ctx.timings().len(), 2);
        assert!(ctx.total_runtime() >= Duration::from_millis(1));
        assert_eq!(ctx.timings()[0].0, "op1");
    }
}
