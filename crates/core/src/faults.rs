//! Deterministic fault injection for governance testing
//! (`cfg(feature = "faults")` — compiled out of release builds).
//!
//! A [`FaultPlan`] decides, per *occurrence* of a named query, whether to
//! arm one fault and where: at the N-th chunk or node checkpoint (the same
//! checkpoints [`govern`](crate::govern) already pays for). The decision is
//! a pure hash of `(seed, query name, occurrence index)`, so a run is
//! reproducible regardless of how the server's worker threads interleave —
//! as long as each query name is submitted in a deterministic per-name
//! order, the same occurrences fault in every run.
//!
//! Armed faults are carried by the query's
//! [`QueryGovernor`](crate::govern::QueryGovernor) and trigger at most
//! once, inside a checkpoint:
//!
//! * [`FaultKind::Decode`] unwinds with a structured
//!   [`DecodeError`](morph_compression::DecodeError) (surfaces as
//!   `ExecError::Decode`),
//! * [`FaultKind::Panic`] raises a plain engine panic (exercises the
//!   server's panic containment),
//! * [`FaultKind::Delay`] sleeps, pushing the query toward its deadline,
//! * [`FaultKind::Cancel`] flips the governor's cancellation token —
//!   the deterministic stand-in for a client cancelling mid-plan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Which checkpoint family a fault triggers at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The N-th chunk-boundary checkpoint of the query.
    Chunk,
    /// The N-th node-boundary checkpoint of the query.
    Node,
}

/// What an armed fault does when its checkpoint comes due.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a structured corrupt-header [`DecodeError`](morph_compression::DecodeError).
    Decode,
    /// Raise a plain panic (a stand-in for an engine bug).
    Panic,
    /// Sleep for the given duration, then continue.
    Delay(Duration),
    /// Flip the query's cancellation token.
    Cancel,
}

/// One fault armed against one query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmedFault {
    /// Checkpoint family the fault triggers at.
    pub site: FaultSite,
    /// 1-based checkpoint index at (or past) which the fault fires.
    pub at: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// The query name the fault was armed for (diagnostics).
    pub query: String,
}

/// How long a seeded [`FaultKind::Delay`] pauses the query.
pub const INJECTED_DELAY: Duration = Duration::from_millis(2);

/// A deterministic, seeded schedule of faults over named queries.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rate_percent: u64,
    occurrences: Mutex<HashMap<String, u64>>,
    targeted: Mutex<HashMap<String, ArmedFault>>,
    armed: AtomicU64,
}

impl FaultPlan {
    /// A plan that faults roughly `rate_percent`% of query occurrences,
    /// chosen by a pure hash of `(seed, query name, occurrence index)`.
    pub fn seeded(seed: u64, rate_percent: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate_percent: rate_percent.min(100),
            ..FaultPlan::default()
        }
    }

    /// A plan that faults nothing until faults are added with
    /// [`FaultPlan::inject`].
    pub fn targeted() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arm `kind` at the `at`-th checkpoint of `site` for **every**
    /// occurrence of `query` (targeted mode; overrides any seeded
    /// decision for that query).
    pub fn inject(&self, query: &str, site: FaultSite, at: u64, kind: FaultKind) {
        self.targeted.lock().expect("targeted faults lock").insert(
            query.to_string(),
            ArmedFault {
                site,
                at: at.max(1),
                kind,
                query: query.to_string(),
            },
        );
    }

    /// Decide the fault (if any) for the next occurrence of `query`.
    /// Called once per execution, when the query's governor is built.
    pub fn arm(&self, query: &str) -> Option<ArmedFault> {
        let occurrence = {
            let mut occurrences = self.occurrences.lock().expect("occurrence lock");
            let slot = occurrences.entry(query.to_string()).or_insert(0);
            *slot += 1;
            *slot
        };
        if let Some(fault) = self
            .targeted
            .lock()
            .expect("targeted faults lock")
            .get(query)
        {
            self.armed.fetch_add(1, Ordering::Relaxed);
            return Some(fault.clone());
        }
        if self.rate_percent == 0 {
            return None;
        }
        let h = mix(self.seed ^ hash_name(query) ^ mix(occurrence));
        if h % 100 >= self.rate_percent {
            return None;
        }
        // Chunk faults dominate (they exercise mid-operator unwinding);
        // every fourth fault lands on a node boundary instead.
        let (site, at) = if (h >> 16).is_multiple_of(4) {
            (FaultSite::Node, 1 + (h >> 24) % 6)
        } else {
            (FaultSite::Chunk, 1 + (h >> 24) % 64)
        };
        let kind = match (h >> 8) % 3 {
            0 => FaultKind::Decode,
            1 => FaultKind::Panic,
            _ => FaultKind::Delay(INJECTED_DELAY),
        };
        self.armed.fetch_add(1, Ordering::Relaxed);
        Some(ArmedFault {
            site,
            at,
            kind,
            query: query.to_string(),
        })
    }

    /// How many faults this plan has armed so far.
    pub fn armed_count(&self) -> u64 {
        self.armed.load(Ordering::Relaxed)
    }
}

/// `splitmix64` finaliser — the same deterministic mixer the vendored
/// `rand` shim uses; good enough bit diffusion for fault scheduling.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the query name, folded through the mixer.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_decisions_are_deterministic_per_occurrence() {
        let a = FaultPlan::seeded(42, 10);
        let b = FaultPlan::seeded(42, 10);
        let decisions_a: Vec<_> = (0..200).map(|_| a.arm("q1")).collect();
        let decisions_b: Vec<_> = (0..200).map(|_| b.arm("q1")).collect();
        assert_eq!(decisions_a, decisions_b);
        let armed = decisions_a.iter().flatten().count();
        // ~10% of 200 occurrences; the exact count is seed-determined.
        assert!((5..=40).contains(&armed), "armed {armed} of 200");
        assert_eq!(a.armed_count(), armed as u64);
    }

    #[test]
    fn rate_zero_never_faults_and_rate_hundred_always_faults() {
        let never = FaultPlan::seeded(7, 0);
        assert!((0..50).all(|_| never.arm("q").is_none()));
        let always = FaultPlan::seeded(7, 100);
        assert!((0..50).all(|_| always.arm("q").is_some()));
    }

    #[test]
    fn targeted_faults_override_seeded_decisions() {
        let plan = FaultPlan::seeded(1, 0);
        plan.inject("q3", FaultSite::Chunk, 5, FaultKind::Cancel);
        let armed = plan.arm("q3").expect("targeted fault armed");
        assert_eq!(armed.site, FaultSite::Chunk);
        assert_eq!(armed.at, 5);
        assert_eq!(armed.kind, FaultKind::Cancel);
        // Every occurrence of the targeted query is armed.
        assert!(plan.arm("q3").is_some());
        assert!(plan.arm("other").is_none());
    }

    #[test]
    fn different_names_get_independent_schedules() {
        let plan = FaultPlan::seeded(9, 50);
        let a: Vec<bool> = (0..64).map(|_| plan.arm("alpha").is_some()).collect();
        let b: Vec<bool> = (0..64).map(|_| plan.arm("beta").is_some()).collect();
        assert_ne!(a, b);
    }
}
