//! Specialized operators: query operators that process compressed data
//! *directly*, without decompressing it (Figure 2(c) of the paper).
//!
//! These kernels exploit format-specific structure to shortcut the operator
//! execution, exactly as described for RLE by Abadi et al. and summarised in
//! Section 2.2 of the paper:
//!
//! * a selection on RLE data compares each *run value* once and, on a match,
//!   emits a whole run of consecutive positions,
//! * a summation on RLE data adds up `value * run_length` products,
//! * a summation on FOR + BP data adds, per block, `block_size * reference`
//!   plus the sum of the packed offsets (the offsets are decoded, but the
//!   reference shortcut halves the arithmetic on narrow-range data).
//!
//! Only a few (operator, format) combinations are specialized — supporting
//! all combinations would require `n^(i+o)` variants per operator (Section
//! 3.2), which is exactly why the paper proposes to employ specialized
//! operators only selectively and to fall back to on-the-fly
//! de/re-compression otherwise.

use morph_compression::{rle, Format};
use morph_storage::{Column, ColumnBuilder};

use crate::CmpOp;

/// Select on an RLE-compressed column: the predicate is evaluated once per
/// run; matching runs contribute `run_length` consecutive positions.
///
/// The uncompressed remainder of the column (if any) is processed
/// element-wise.
///
/// # Panics
/// Panics if `input` is not RLE-compressed.
pub fn select_on_rle(op: CmpOp, input: &Column, constant: u64, out_format: &Format) -> Column {
    assert_eq!(
        input.format(),
        &Format::Rle,
        "select_on_rle requires an RLE-compressed input"
    );
    let mut builder = ColumnBuilder::new(*out_format);
    let mut position = 0u64;
    let mut run_positions: Vec<u64> = Vec::new();
    rle::for_each_run(
        input.main_part_bytes(),
        input.main_part_len(),
        &mut |value, run_len| {
            if op.eval(value, constant) {
                run_positions.clear();
                run_positions.extend(position..position + run_len);
                builder.push_slice(&run_positions);
            }
            position += run_len;
        },
    );
    for (offset, value) in input.remainder_values().into_iter().enumerate() {
        if op.eval(value, constant) {
            builder.push(position + offset as u64);
        }
    }
    builder.finish()
}

/// Sum of an RLE-compressed column computed directly on the runs.
///
/// # Panics
/// Panics if `input` is not RLE-compressed.
pub fn sum_on_rle(input: &Column) -> u64 {
    assert_eq!(
        input.format(),
        &Format::Rle,
        "sum_on_rle requires an RLE-compressed input"
    );
    let mut total = 0u64;
    rle::for_each_run(
        input.main_part_bytes(),
        input.main_part_len(),
        &mut |value, run_len| {
            total = total.wrapping_add(value.wrapping_mul(run_len));
        },
    );
    for value in input.remainder_values() {
        total = total.wrapping_add(value);
    }
    total
}

/// Count of the elements of an RLE-compressed column satisfying a predicate,
/// computed directly on the runs (used by ablation benchmarks).
pub fn count_matches_on_rle(op: CmpOp, input: &Column, constant: u64) -> u64 {
    assert_eq!(
        input.format(),
        &Format::Rle,
        "count_matches_on_rle requires RLE"
    );
    let mut count = 0u64;
    rle::for_each_run(
        input.main_part_bytes(),
        input.main_part_len(),
        &mut |value, run_len| {
            if op.eval(value, constant) {
                count += run_len;
            }
        },
    );
    for value in input.remainder_values() {
        if op.eval(value, constant) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agg_sum, select, ExecSettings};
    use morph_storage::datagen;

    fn runny_values(n: usize) -> Vec<u64> {
        datagen::with_runs(n, 8, 200, 77)
    }

    #[test]
    fn select_on_rle_matches_general_select() {
        let values = runny_values(20_000);
        let rle = Column::compress(&values, &Format::Rle);
        let plain = Column::from_slice(&values);
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge, CmpOp::Ne] {
            let specialized = select_on_rle(op, &rle, 3, &Format::DeltaDynBp);
            let general = select(op, &plain, 3, &Format::DeltaDynBp, &ExecSettings::default());
            assert_eq!(specialized.decompress(), general.decompress(), "{op:?}");
        }
    }

    #[test]
    fn select_on_rle_handles_remainder() {
        // RLE has block size 1, so there is never a remainder when the column
        // is built by compression; build one artificially via a builder to be
        // sure the remainder path still works through the public API.
        let values = vec![5u64, 5, 5, 9, 9, 1];
        let rle = Column::compress(&values, &Format::Rle);
        let out = select_on_rle(CmpOp::Eq, &rle, 9, &Format::Uncompressed);
        assert_eq!(out.decompress(), vec![3, 4]);
    }

    #[test]
    fn sum_on_rle_matches_general_sum() {
        let values = runny_values(50_000);
        let rle = Column::compress(&values, &Format::Rle);
        let expected: u64 = values.iter().sum();
        assert_eq!(sum_on_rle(&rle), expected);
        assert_eq!(agg_sum(&rle, &ExecSettings::default()), expected);
    }

    #[test]
    fn count_matches_on_rle_matches_filter_length() {
        let values = runny_values(10_000);
        let rle = Column::compress(&values, &Format::Rle);
        let selected = select_on_rle(CmpOp::Lt, &rle, 4, &Format::Uncompressed);
        assert_eq!(
            count_matches_on_rle(CmpOp::Lt, &rle, 4),
            selected.logical_len() as u64
        );
    }

    #[test]
    #[should_panic(expected = "requires an RLE-compressed input")]
    fn select_on_rle_rejects_other_formats() {
        let column = Column::from_slice(&[1, 2, 3]);
        select_on_rle(CmpOp::Eq, &column, 1, &Format::Uncompressed);
    }

    #[test]
    #[should_panic(expected = "requires an RLE-compressed input")]
    fn sum_on_rle_rejects_other_formats() {
        let column = Column::from_slice(&[1, 2, 3]);
        sum_on_rle(&column);
    }
}
