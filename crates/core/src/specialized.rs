//! Specialized operators: query operators that process compressed data
//! *directly*, without decompressing it (Figure 2(c) of the paper).
//!
//! These kernels exploit format-specific structure to shortcut the operator
//! execution, exactly as described for RLE by Abadi et al. and summarised in
//! Section 2.2 of the paper:
//!
//! * a selection on RLE data compares each *run value* once and, on a match,
//!   emits a whole run of consecutive positions,
//! * a summation on RLE data adds up `value * run_length` products,
//! * a summation on FOR + BP data adds, per block, `block_size * reference`
//!   plus the sum of the packed offsets (the offsets are decoded, but the
//!   reference shortcut halves the arithmetic on narrow-range data).
//!
//! Only a few (operator, format) combinations are specialized — supporting
//! all combinations would require `n^(i+o)` variants per operator (Section
//! 3.2), which is exactly why the paper proposes to employ specialized
//! operators only selectively and to fall back to on-the-fly
//! de/re-compression otherwise.

use morph_compression::{rle, Format};
use morph_storage::{Column, ColumnBuilder};

use crate::CmpOp;

/// Select on an RLE-compressed column: the predicate is evaluated once per
/// run; matching runs contribute `run_length` consecutive positions.
///
/// Matching runs are emitted straight into the builder's cache-resident
/// buffer ([`ColumnBuilder::push_run`]) — no scratch `Vec` is materialised
/// per run, so an arbitrarily long run costs no allocation beyond the
/// builder's fixed 16 KiB buffer.
///
/// The uncompressed remainder of the column (if any) is processed
/// element-wise.
///
/// # Panics
/// Panics if `input` is not RLE-compressed.
pub fn select_on_rle(op: CmpOp, input: &Column, constant: u64, out_format: &Format) -> Column {
    assert_eq!(
        input.format(),
        &Format::Rle,
        "select_on_rle requires an RLE-compressed input"
    );
    let mut builder = ColumnBuilder::new(*out_format);
    let mut position = 0u64;
    rle::for_each_run(
        input.main_part_bytes(),
        input.main_part_len(),
        &mut |value, run_len| {
            if op.eval(value, constant) {
                builder.push_run(position, run_len);
            }
            position += run_len;
        },
    );
    for (offset, value) in input.remainder_values().into_iter().enumerate() {
        if op.eval(value, constant) {
            builder.push(position + offset as u64);
        }
    }
    builder.finish()
}

/// Sum of an RLE-compressed column computed directly on the runs.
///
/// # Panics
/// Panics if `input` is not RLE-compressed.
pub fn sum_on_rle(input: &Column) -> u64 {
    assert_eq!(
        input.format(),
        &Format::Rle,
        "sum_on_rle requires an RLE-compressed input"
    );
    let mut total = 0u64;
    rle::for_each_run(
        input.main_part_bytes(),
        input.main_part_len(),
        &mut |value, run_len| {
            total = total.wrapping_add(value.wrapping_mul(run_len));
        },
    );
    for value in input.remainder_values() {
        total = total.wrapping_add(value);
    }
    total
}

/// Sum of a static-BP-compressed column computed block-wise directly on the
/// packed bit stream — the values are never materialised in uncompressed
/// form (compressed internal processing with direct data access,
/// Figure 2(c)).
///
/// The uncompressed remainder of the column (if any) is summed element-wise.
///
/// Registered behind [`crate::IntegrationDegree::Specialized`] in
/// [`crate::agg_sum`]; inputs in any other format keep the existing
/// fallback behaviour.
///
/// # Panics
/// Panics if `input` is not static-BP-compressed.
pub fn agg_sum_on_static_bp(input: &Column) -> u64 {
    let width = match input.format() {
        Format::StaticBp(width) => *width,
        other => panic!("agg_sum_on_static_bp requires a static-BP-compressed input, got {other}"),
    };
    let mut total = morph_compression::bitpack::sum_packed(
        input.main_part_bytes(),
        width,
        input.main_part_len(),
    );
    for value in input.remainder_values() {
        total = total.wrapping_add(value);
    }
    total
}

/// Project (gather) on a static-BP-compressed data column: positions are
/// resolved straight off the packed bit stream, without the per-element
/// format dispatch of [`Column::get`] — the fixed width makes every
/// element's bit offset pure arithmetic (the degenerate, O(1)-computable
/// case of the seekable chunk directory), so the gather reads exactly one
/// `width`-bit window per position.
///
/// Positions at or beyond the main part fall into the uncompressed
/// remainder, which is decoded once up front (it is at most one block).
///
/// Registered behind [`crate::IntegrationDegree::Specialized`] in
/// [`crate::project`]; data columns in any other format keep the existing
/// fallback behaviour.
///
/// # Panics
/// Panics if `data` is not static-BP-compressed or a position is out of
/// bounds.
pub fn project_on_static_bp(data: &Column, positions: &Column, out_format: &Format) -> Column {
    let width = match data.format() {
        Format::StaticBp(width) => *width,
        other => panic!("project_on_static_bp requires a static-BP-compressed input, got {other}"),
    };
    let main = data.main_part_bytes();
    let main_len = data.main_part_len();
    let remainder = data.remainder_values();
    let len = data.logical_len();
    let mut builder = ColumnBuilder::new(*out_format);
    let mut scratch: Vec<u64> = Vec::new();
    positions.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        scratch.clear();
        for &position in chunk {
            let idx = position as usize;
            if idx >= len {
                panic!("project: position {position} out of bounds");
            }
            scratch.push(if idx < main_len {
                morph_compression::bitpack::get_packed(main, width, idx)
            } else {
                remainder[idx - main_len]
            });
        }
        builder.push_slice(&scratch);
    });
    builder.finish()
}

/// Count of the elements of an RLE-compressed column satisfying a predicate,
/// computed directly on the runs (used by ablation benchmarks).
pub fn count_matches_on_rle(op: CmpOp, input: &Column, constant: u64) -> u64 {
    assert_eq!(
        input.format(),
        &Format::Rle,
        "count_matches_on_rle requires RLE"
    );
    let mut count = 0u64;
    rle::for_each_run(
        input.main_part_bytes(),
        input.main_part_len(),
        &mut |value, run_len| {
            if op.eval(value, constant) {
                count += run_len;
            }
        },
    );
    for value in input.remainder_values() {
        if op.eval(value, constant) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agg_sum, select, ExecSettings};
    use morph_storage::datagen;

    fn runny_values(n: usize) -> Vec<u64> {
        datagen::with_runs(n, 8, 200, 77)
    }

    #[test]
    fn select_on_rle_matches_general_select() {
        let values = runny_values(20_000);
        let rle = Column::compress(&values, &Format::Rle);
        let plain = Column::from_slice(&values);
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge, CmpOp::Ne] {
            let specialized = select_on_rle(op, &rle, 3, &Format::DeltaDynBp);
            let general = select(op, &plain, 3, &Format::DeltaDynBp, &ExecSettings::default());
            assert_eq!(specialized.decompress(), general.decompress(), "{op:?}");
        }
    }

    #[test]
    fn select_on_rle_handles_remainder() {
        // RLE has block size 1, so there is never a remainder when the column
        // is built by compression; build one artificially via a builder to be
        // sure the remainder path still works through the public API.
        let values = vec![5u64, 5, 5, 9, 9, 1];
        let rle = Column::compress(&values, &Format::Rle);
        let out = select_on_rle(CmpOp::Eq, &rle, 9, &Format::Uncompressed);
        assert_eq!(out.decompress(), vec![3, 4]);
    }

    #[test]
    fn sum_on_rle_matches_general_sum() {
        let values = runny_values(50_000);
        let rle = Column::compress(&values, &Format::Rle);
        let expected: u64 = values.iter().sum();
        assert_eq!(sum_on_rle(&rle), expected);
        assert_eq!(agg_sum(&rle, &ExecSettings::default()), expected);
    }

    #[test]
    fn count_matches_on_rle_matches_filter_length() {
        let values = runny_values(10_000);
        let rle = Column::compress(&values, &Format::Rle);
        let selected = select_on_rle(CmpOp::Lt, &rle, 4, &Format::Uncompressed);
        assert_eq!(
            count_matches_on_rle(CmpOp::Lt, &rle, 4),
            selected.logical_len() as u64
        );
    }

    #[test]
    fn select_on_rle_with_one_giant_run() {
        // A single run far larger than the builder's 16 KiB buffer: the
        // direct-emit path must chunk it through the builder correctly.
        let mut values = vec![42u64; 100_000];
        values.extend_from_slice(&[1, 1, 1]);
        let rle = Column::compress(&values, &Format::Rle);
        let out = select_on_rle(CmpOp::Eq, &rle, 42, &Format::DeltaDynBp);
        assert_eq!(out.logical_len(), 100_000);
        assert_eq!(out.decompress(), (0..100_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn agg_sum_on_static_bp_matches_general_sum() {
        let values = runny_values(50_000);
        let expected: u64 = values.iter().sum();
        for width in [8u8, 13, 32] {
            let packed = Column::compress(&values, &Format::StaticBp(width));
            assert!(packed.remainder_len() > 0, "test should cover a remainder");
            assert_eq!(agg_sum_on_static_bp(&packed), expected, "width {width}");
        }
        // Wrapping semantics match the general operator.
        let big = Column::compress(&[u64::MAX, 7, u64::MAX], &Format::StaticBp(64));
        assert_eq!(
            agg_sum_on_static_bp(&big),
            agg_sum(&big, &ExecSettings::default())
        );
    }

    #[test]
    #[should_panic(expected = "requires a static-BP-compressed input")]
    fn agg_sum_on_static_bp_rejects_other_formats() {
        let column = Column::from_slice(&[1, 2, 3]);
        agg_sum_on_static_bp(&column);
    }

    #[test]
    fn project_on_static_bp_matches_general_project() {
        use crate::{project, IntegrationDegree};
        let data_values: Vec<u64> = (0..6000u64).map(|i| (i * 37) % 2048).collect();
        let position_values: Vec<u64> = (0..6000u64).filter(|p| p % 7 == 0).collect();
        let data = Column::compress(&data_values, &Format::StaticBp(11));
        assert!(data.remainder_len() > 0, "test should cover the remainder");
        let positions = Column::compress(&position_values, &Format::DeltaDynBp);
        for out_format in [Format::DynBp, Format::Uncompressed] {
            let specialized = project_on_static_bp(&data, &positions, &out_format);
            let general = project(&data, &positions, &out_format, &ExecSettings::default());
            assert_eq!(specialized, general, "out {out_format}");
            // The registered Specialized degree takes the direct-gather path
            // and must stay byte-identical as well.
            let via_degree = project(
                &data,
                &positions,
                &out_format,
                &ExecSettings {
                    degree: IntegrationDegree::Specialized,
                    ..ExecSettings::default()
                },
            );
            assert_eq!(via_degree, general, "out {out_format}");
        }
    }

    #[test]
    #[should_panic(expected = "requires a static-BP-compressed input")]
    fn project_on_static_bp_rejects_other_formats() {
        let column = Column::from_slice(&[1, 2, 3]);
        project_on_static_bp(&column, &Column::from_slice(&[0]), &Format::Uncompressed);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn project_on_static_bp_rejects_out_of_bounds_positions() {
        let data = Column::compress(&[1u64, 2, 3, 4], &Format::StaticBp(3));
        let positions = Column::from_slice(&[9]);
        project_on_static_bp(&data, &positions, &Format::Uncompressed);
    }

    #[test]
    #[should_panic(expected = "requires an RLE-compressed input")]
    fn select_on_rle_rejects_other_formats() {
        let column = Column::from_slice(&[1, 2, 3]);
        select_on_rle(CmpOp::Eq, &column, 1, &Format::Uncompressed);
    }

    #[test]
    #[should_panic(expected = "requires an RLE-compressed input")]
    fn sum_on_rle_rejects_other_formats() {
        let column = Column::from_slice(&[1, 2, 3]);
        sum_on_rle(&column);
    }
}
