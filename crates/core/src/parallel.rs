//! Parallel plan execution: schedule independent plan subtrees on a worker
//! pool.
//!
//! The operator-at-a-time model (DP1) materialises every intermediate as a
//! real named column, which makes a [`QueryPlan`] an *explicit* dependency
//! graph — exactly what a scheduler needs.  MonetDB, the materialising
//! engine the paper benchmarks against (Figure 9), exploits the same
//! inter-operator parallelism; the multi-join SSB plans are the showcase:
//! their dimension-table subtrees (select → project → semi-join per
//! dimension) are mutually independent and can run concurrently.
//!
//! ## Scheduling
//!
//! [`ParallelExecutor`] computes each node's in-degree from
//! [`QueryPlan::dependencies`], seeds a shared ready queue with the
//! zero-in-degree nodes (the scans), and lets `threads` scoped workers
//! (`std::thread::scope` — no external dependencies) pull node indices from
//! the queue.  A worker executes a node via the same
//! [`execute_node`] core the serial executor uses, publishes the result in a
//! per-node `OnceLock` cell, decrements the in-degree of every dependent and
//! enqueues those that become ready.  Workers exit when all nodes have
//! completed.
//!
//! ## Determinism
//!
//! Results are bit-identical to serial execution because every operator is a
//! pure function of its input columns and the format assignment.  Footprint
//! and timing **records** are kept identical too: each node records into its
//! own [`NodeRecords`], and after the pool drains, the per-node records are
//! merged into the [`ExecutionContext`] in topological (node-list) order —
//! the exact order the serial executor produces
//! ([`ExecutionContext::merge_node_records`]).  Only the measured durations
//! differ; names, formats, sizes and label sequences do not.
//!
//! ## `threads = 1`
//!
//! A single-threaded `ParallelExecutor` delegates to the serial
//! [`PlanExecutor`] outright — no queue, no cells, no thread spawn — so the
//! documented fast path degenerates to today's executor; the only extra
//! work is the worker-count clamp.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crate::exec::{ExecutionContext, NodeRecords};
use crate::plan::{execute_node, ColumnSource, PlanExecutor, PlanOutput, QueryPlan, Slot};

/// The result of one plan node, published for dependent nodes and the final
/// record merge.
struct NodeResult<'a> {
    slot: Slot<'a>,
    records: NodeRecords,
}

/// Shared scheduler state of one parallel plan execution.
struct Scheduler {
    /// Node indices whose dependencies have all completed.
    ready: Mutex<VecDeque<usize>>,
    /// Signalled whenever `ready` gains entries or `done` flips.
    wakeup: Condvar,
    /// Per node, the number of dependencies that have not completed yet.
    remaining: Vec<AtomicUsize>,
    /// Number of completed nodes.
    completed: AtomicUsize,
    /// All nodes completed (or a worker panicked): workers must exit.
    done: AtomicBool,
}

impl Scheduler {
    /// Block until a node is ready; `None` once the execution is done.
    fn next_ready(&self) -> Option<usize> {
        let mut queue = self.ready.lock().expect("scheduler lock");
        loop {
            // `done` first: on normal completion the queue is empty anyway,
            // and after a sibling's panic the survivors must stop instead of
            // draining the rest of the plan before the panic propagates.
            if self.done.load(Ordering::Acquire) {
                return None;
            }
            if let Some(idx) = queue.pop_front() {
                return Some(idx);
            }
            queue = self.wakeup.wait(queue).expect("scheduler lock");
        }
    }

    /// Publish newly-ready nodes and wake waiting workers.
    fn enqueue_ready(&self, nodes: Vec<usize>, finished: bool) {
        if nodes.is_empty() && !finished {
            return;
        }
        let mut queue = self.ready.lock().expect("scheduler lock");
        queue.extend(nodes);
        drop(queue);
        self.wakeup.notify_all();
    }
}

/// Unblocks the sibling workers when a worker thread panics (an operator
/// assertion, an unknown column), so `std::thread::scope` can join all
/// threads and propagate the panic instead of deadlocking on the condvar.
struct PanicRelease<'s>(&'s Scheduler);

impl Drop for PanicRelease<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Flip `done` while holding the queue mutex: a sibling that has
            // checked `done` under the lock is either already waiting (and
            // gets the notification) or has not checked yet (and will see
            // the flag).  Without the lock the notify could land in the
            // check-to-wait window and be lost, leaving the sibling — and
            // the scope join — blocked forever.  `into_inner` instead of
            // `unwrap`: panicking inside a drop during unwind would abort.
            let _guard = self
                .0
                .ready
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            self.0.done.store(true, Ordering::Release);
            self.0.wakeup.notify_all();
        }
    }
}

/// Executes a [`QueryPlan`] with a pool of `threads` scoped workers,
/// dispatching every node whose dependencies have completed.
///
/// Drop-in alternative to the serial [`PlanExecutor`]: identical results,
/// identical footprint records and identical timing-label sequences (see the
/// [module docs](self) for why).  The column source must be [`Sync`] because
/// the workers scan base columns concurrently.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// Create an executor with a pool of `threads` workers (clamped to at
    /// least 1; `threads = 1` delegates to the serial [`PlanExecutor`]).
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `plan` against `source`, recording footprints and timings in
    /// `ctx` exactly like the serial executor would.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        source: &(dyn ColumnSource + Sync),
        ctx: &mut ExecutionContext,
    ) -> PlanOutput {
        let node_count = plan.node_count();
        // More workers than nodes can never be utilised; a single worker is
        // the serial executor with queue overhead, so skip the machinery.
        let workers = self.threads.min(node_count);
        if workers <= 1 {
            return PlanExecutor.execute(plan, source, ctx);
        }

        let dependencies = plan.dependencies();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        let mut seeds = Vec::new();
        for (idx, deps) in dependencies.iter().enumerate() {
            for &dep in deps {
                dependents[dep].push(idx);
            }
            if deps.is_empty() {
                seeds.push(idx);
            }
        }

        let scheduler = Scheduler {
            ready: Mutex::new(seeds.into_iter().collect()),
            wakeup: Condvar::new(),
            remaining: dependencies
                .iter()
                .map(|deps| AtomicUsize::new(deps.len()))
                .collect(),
            completed: AtomicUsize::new(0),
            done: AtomicBool::new(false),
        };
        let cells: Vec<OnceLock<NodeResult<'_>>> =
            (0..node_count).map(|_| OnceLock::new()).collect();
        let settings = ctx.settings;
        let formats = &ctx.formats;
        let capture = ctx.capture_enabled();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let scheduler = &scheduler;
                    let cells = &cells;
                    let dependents = &dependents;
                    scope.spawn(move || {
                        let _release = PanicRelease(scheduler);
                        while let Some(idx) = scheduler.next_ready() {
                            let mut records = NodeRecords::new(capture);
                            let slot = execute_node(
                                plan,
                                idx,
                                // `OnceLock::get` pairs its acquire load with the
                                // publishing `set`, so a dependent worker sees the
                                // dependency's slot fully initialised.
                                |i| &cells[i].get().expect("dependency completed").slot,
                                source,
                                settings,
                                formats,
                                &mut records,
                            );
                            if cells[idx].set(NodeResult { slot, records }).is_err() {
                                unreachable!("plan node {idx} executed twice");
                            }
                            let mut newly_ready = Vec::new();
                            for &dependent in &dependents[idx] {
                                let left =
                                    scheduler.remaining[dependent].fetch_sub(1, Ordering::AcqRel);
                                debug_assert!(left > 0, "in-degree underflow");
                                if left == 1 {
                                    newly_ready.push(dependent);
                                }
                            }
                            let finished = scheduler.completed.fetch_add(1, Ordering::AcqRel) + 1
                                == node_count;
                            if finished {
                                scheduler.done.store(true, Ordering::Release);
                            }
                            scheduler.enqueue_ready(newly_ready, finished);
                        }
                    })
                })
                .collect();
            // Re-raise a worker's original panic payload (scope itself would
            // replace it with a generic "a scoped thread panicked").  The
            // `PanicRelease` guard has already unblocked the siblings.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        // Merge per-node records in topological (node-list) order — this is
        // what keeps the context byte-identical to serial execution — and
        // collect the slots for output assembly.
        let mut slots = Vec::with_capacity(node_count);
        for cell in cells {
            let result = cell
                .into_inner()
                .expect("all plan nodes completed before the pool drained");
            ctx.merge_node_records(result.records);
            slots.push(result.slot);
        }
        plan.collect_output(|i| &slots[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecSettings, FormatConfig};
    use crate::plan::PlanBuilder;
    use crate::CmpOp;
    use morph_compression::Format;
    use morph_storage::Column;
    use std::collections::HashMap;

    fn source() -> HashMap<String, Column> {
        let mut columns = HashMap::new();
        columns.insert(
            "a".to_string(),
            Column::from_vec((0..4000u64).map(|i| i % 97).collect()),
        );
        columns.insert(
            "b".to_string(),
            Column::from_vec((0..4000u64).map(|i| (i * 7) % 113).collect()),
        );
        columns
    }

    /// Two independent select subtrees intersected — minimal parallelism.
    fn diamond_plan() -> crate::plan::QueryPlan {
        let mut p = PlanBuilder::new("par");
        let a = p.scan("a");
        let b = p.scan("b");
        let left = p.select("left", a, CmpOp::Lt, 50);
        let right = p.select("right", b, CmpOp::Lt, 60);
        let both = p.intersect_sorted("both", left, right);
        let total = p.agg_sum("total", both);
        p.finish_scalar(total)
    }

    #[test]
    fn dependencies_point_backwards_and_ready_sets_cover_all_nodes() {
        let plan = diamond_plan();
        let deps = plan.dependencies();
        assert_eq!(deps.len(), plan.node_count());
        for (idx, d) in deps.iter().enumerate() {
            assert!(d.iter().all(|&dep| dep < idx), "node {idx} deps {d:?}");
        }
        // scans ; selects ; intersect ; agg
        let levels = plan.ready_sets();
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0], vec![0, 1]);
        assert_eq!(levels[1], vec![2, 3]);
        let covered: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(covered, plan.node_count());
    }

    #[test]
    fn parallel_matches_serial_for_all_thread_counts() {
        let source = source();
        let plan = diamond_plan();
        for formats in [
            FormatConfig::uncompressed(),
            FormatConfig::with_default(Format::DynBp).set("par/left", Format::DeltaDynBp),
        ] {
            let mut serial_ctx =
                ExecutionContext::new(ExecSettings::vectorized_compressed(), formats.clone());
            let serial = PlanExecutor.execute(&plan, &source, &mut serial_ctx);
            for threads in [1, 2, 4, 64] {
                let mut ctx =
                    ExecutionContext::new(ExecSettings::vectorized_compressed(), formats.clone());
                let parallel = ParallelExecutor::new(threads).execute(&plan, &source, &mut ctx);
                assert_eq!(parallel, serial, "threads {threads}");
                assert_eq!(ctx.records(), serial_ctx.records(), "threads {threads}");
                let labels: Vec<&str> = ctx.timings().iter().map(|(n, _)| n.as_str()).collect();
                let serial_labels: Vec<&str> = serial_ctx
                    .timings()
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect();
                assert_eq!(labels, serial_labels, "threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_capture_matches_serial_capture() {
        let source = source();
        let plan = diamond_plan();
        let mut serial_ctx =
            ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        serial_ctx.enable_capture();
        PlanExecutor.execute(&plan, &source, &mut serial_ctx);
        let mut parallel_ctx =
            ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        parallel_ctx.enable_capture();
        ParallelExecutor::new(3).execute(&plan, &source, &mut parallel_ctx);
        assert_eq!(
            parallel_ctx.captured_columns(),
            serial_ctx.captured_columns()
        );
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown base column")]
    fn worker_panics_propagate() {
        let source = source();
        let mut p = PlanBuilder::new("bad");
        let a = p.scan("a");
        let missing = p.scan("no_such_column");
        let left = p.select("left", a, CmpOp::Lt, 10);
        let right = p.select("right", missing, CmpOp::Lt, 10);
        let both = p.intersect_sorted("both", left, right);
        let total = p.agg_sum("total", both);
        let plan = p.finish_scalar(total);
        let mut ctx = ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        ParallelExecutor::new(2).execute(&plan, &source, &mut ctx);
    }
}
