//! Parallel plan execution: schedule independent plan subtrees — and
//! chunk-range *morsels* of single large operators — on a worker pool.
//!
//! The operator-at-a-time model (DP1) materialises every intermediate as a
//! real named column, which makes a [`QueryPlan`] an *explicit* dependency
//! graph — exactly what a scheduler needs.  MonetDB, the materialising
//! engine the paper benchmarks against (Figure 9), exploits the same
//! inter-operator parallelism; the multi-join SSB plans are the showcase:
//! their dimension-table subtrees (select → project → semi-join per
//! dimension) are mutually independent and can run concurrently.
//!
//! ## Scheduling
//!
//! [`ParallelExecutor`] computes each node's in-degree from
//! [`QueryPlan::dependencies`], seeds a shared task queue with the
//! zero-in-degree nodes (the scans), and lets `threads` scoped workers
//! (`std::thread::scope` — no external dependencies) pull tasks from
//! the queue, parking on a `Condvar` while it is empty (idle workers burn
//! no cycles while one long operator runs).  A worker executes a node via
//! the same [`execute_node`] core the serial executor uses, publishes the
//! result in a per-node `OnceLock` cell, decrements the in-degree of every
//! dependent and enqueues those that become ready.  Workers exit when all
//! nodes have completed.
//!
//! ## Intra-operator parallelism (morsels)
//!
//! Inter-operator parallelism alone leaves the Q1.x SSB plans serial: they
//! are one chain of huge fact-table operators.  When
//! [`crate::ExecSettings::morsel_threshold`] is set and a ready node's
//! partitioned input (see [`QueryPlan::morsel_op`]) reaches the threshold,
//! the worker that pops the node does not execute it; instead it builds the
//! operator's shared state once (a semi-join build set, a project morph),
//! splits the input's seekable chunk directory into `k` contiguous ranges
//! ([`Column::partition_chunks`]) and publishes a [`MorselJob`].  Every
//! worker — including the one that published — then claims parts from the
//! job; the worker completing the *last* part splices the partials back in
//! range order ([`partitioned::concat_partials`]) and completes the node
//! exactly like the single-task path.  Chunk-range decoding never replays a
//! prefix (each chunk is an independently decodable block), so parts cost
//! what their share of the column costs.
//!
//! ## Determinism
//!
//! Results are bit-identical to serial execution because every operator is a
//! pure function of its input columns and the format assignment — and
//! because the morsel merge reconstructs the serial builder's byte stream
//! (see [`partitioned`]).  Footprint and timing **records** are kept
//! identical too: each node records into its own [`NodeRecords`], and after
//! the pool drains, the per-node records are merged into the
//! [`ExecutionContext`] in topological (node-list) order — the exact order
//! the serial executor produces
//! ([`ExecutionContext::merge_node_records`]).  Only the measured durations
//! differ; names, formats, sizes and label sequences do not.
//!
//! ## `threads = 1`
//!
//! A single-threaded `ParallelExecutor` delegates to the serial
//! [`PlanExecutor`] outright — no queue, no cells, no thread spawn — so the
//! documented fast path degenerates to today's executor; the only extra
//! work is the worker-count clamp.

use std::collections::{HashSet, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use morph_compression::Format;
use morph_storage::Column;

use crate::exec::{ExecSettings, ExecutionContext, FormatConfig, NodeRecords};
use crate::fusion::{FusedPartial, FusedRegion, FusionPlan, RegionOutcome, StageKind};
use crate::ops::partitioned;
use crate::ops::project::ensure_random_access;
use crate::plan::{
    cached_from_slot, execute_node, plan_cache_info, ColumnSource, MorselOp, NodeCacheInfo,
    PlanExecutor, PlanOutput, QueryPlan, Slot,
};

/// The result of one plan node, published for dependent nodes and the final
/// record merge.
struct NodeResult<'a> {
    slot: Slot<'a>,
    records: NodeRecords,
}

/// Operator state built once by the fanning-out worker and shared by all
/// parts of a morsel job.
enum MorselAux {
    /// No shared state (selects, calcs, sums, projects on random-access
    /// data).
    None,
    /// The semi-join build set.
    Set(HashSet<u64>),
    /// The project data column, morphed to a random-access format.
    Morphed(Column),
}

/// The partial result of one morsel part.
enum MorselPartial {
    /// A partial output column (select, project, semi-join).
    Col(Column),
    /// A partial wrapping sum (agg_sum).
    Sum(u64),
}

/// One fanned-out operator: `parts` contiguous chunk ranges of the
/// partitioned input, claimed by workers one at a time.
struct MorselJob {
    /// The plan node this job executes.
    node: usize,
    /// Contiguous chunk ranges, covering the input in order.
    parts: Vec<Range<usize>>,
    /// Next unclaimed part (claims happen under the queue lock).
    next: AtomicUsize,
    /// Completed parts; the worker completing the last one merges.
    done: AtomicUsize,
    /// Partial results, indexed like `parts`.
    partials: Vec<OnceLock<MorselPartial>>,
    /// Shared operator state (build set, morphed data column).
    aux: MorselAux,
    /// Format the partials and the merged column are materialised in.
    out_format: Format,
    /// Fan-out time: the node's recorded duration spans shared-state
    /// construction through merge, like the serial operator timing.
    started: Instant,
}

/// One fanned-out fused region: `parts` contiguous chunk ranges of the
/// region's *driver* column, each processed as a full pipeline pass that
/// yields one partial per stage.
struct FusedJob {
    /// Index of the region in the execution's [`FusionPlan`].
    region_index: usize,
    /// Contiguous driver chunk ranges, covering the driver in order.
    parts: Vec<Range<usize>>,
    /// Next unclaimed part (claims happen under the queue lock).
    next: AtomicUsize,
    /// Completed parts; the worker completing the last one merges.
    done: AtomicUsize,
    /// Per part, one partial per stage (in stage order).
    partials: Vec<OnceLock<Vec<FusedPartial>>>,
    /// Per stage, the project data column morphed to random access (built
    /// once here, shared by all parts — like [`MorselAux::Morphed`]).
    prepared: Vec<Option<Column>>,
    /// Fan-out time: every member's recorded duration spans preparation
    /// through merge, like the unfused morsel timing.
    started: Instant,
}

/// A fanned-out job in the morsel queue: a single-operator morsel job or a
/// whole fused region.
enum QueuedJob {
    Op(Arc<MorselJob>),
    Fused(Arc<FusedJob>),
}

impl QueuedJob {
    fn next(&self) -> &AtomicUsize {
        match self {
            QueuedJob::Op(job) => &job.next,
            QueuedJob::Fused(job) => &job.next,
        }
    }

    fn part_count(&self) -> usize {
        match self {
            QueuedJob::Op(job) => job.parts.len(),
            QueuedJob::Fused(job) => job.parts.len(),
        }
    }
}

/// A unit of work pulled from the task queue.
enum Task {
    /// Execute (or fan out) one plan node or fused region root.
    Node(usize),
    /// Process part `1` of morsel job `0`.
    Morsel(Arc<MorselJob>, usize),
    /// Process driver chunk-range part `1` of fused-region job `0`.
    FusedPart(Arc<FusedJob>, usize),
}

/// The queue proper, guarded by one mutex so Condvar parking covers both
/// task kinds without lost wakeups.
struct TaskQueue {
    /// Node indices whose dependencies have all completed.
    nodes: VecDeque<usize>,
    /// Fanned-out jobs with unclaimed parts, oldest first.
    morsels: VecDeque<QueuedJob>,
}

/// Shared scheduler state of one parallel plan execution.
struct Scheduler {
    queue: Mutex<TaskQueue>,
    /// Signalled whenever the queue gains entries or `done` flips.
    wakeup: Condvar,
    /// Per node, the number of dependencies that have not completed yet.
    remaining: Vec<AtomicUsize>,
    /// Number of completed nodes.
    completed: AtomicUsize,
    /// All nodes completed (or a worker panicked): workers must exit.
    done: AtomicBool,
}

impl Scheduler {
    /// Block until a task is available; `None` once the execution is done.
    ///
    /// Morsel parts are claimed before whole nodes: finishing an in-flight
    /// fan-out unblocks its dependents soonest, and the job was only created
    /// because its operator dominates the plan.
    fn next_task(&self) -> Option<Task> {
        let mut queue = self.queue.lock().expect("scheduler lock");
        loop {
            // `done` first: on normal completion the queue is empty anyway,
            // and after a sibling's panic the survivors must stop instead of
            // draining the rest of the plan before the panic propagates.
            if self.done.load(Ordering::Acquire) {
                return None;
            }
            while let Some(job) = queue.morsels.front() {
                // Claims happen under the queue lock, so `next` never skips.
                let part = job.next().fetch_add(1, Ordering::Relaxed);
                if part < job.part_count() {
                    let last = part + 1 == job.part_count();
                    let task = match job {
                        QueuedJob::Op(job) => Task::Morsel(Arc::clone(job), part),
                        QueuedJob::Fused(job) => Task::FusedPart(Arc::clone(job), part),
                    };
                    if last {
                        queue.morsels.pop_front();
                    }
                    return Some(task);
                }
                queue.morsels.pop_front();
            }
            if let Some(idx) = queue.nodes.pop_front() {
                return Some(Task::Node(idx));
            }
            queue = self.wakeup.wait(queue).expect("scheduler lock");
        }
    }

    /// Publish newly-ready nodes and wake waiting workers.  A single new
    /// node needs a single worker; `finished` and multi-node batches wake
    /// everyone.
    fn enqueue_ready(&self, nodes: Vec<usize>, finished: bool) {
        if nodes.is_empty() && !finished {
            return;
        }
        let single = nodes.len() == 1 && !finished;
        let mut queue = self.queue.lock().expect("scheduler lock");
        queue.nodes.extend(nodes);
        drop(queue);
        if single {
            self.wakeup.notify_one();
        } else {
            self.wakeup.notify_all();
        }
    }

    /// Publish a fanned-out job and wake all parked workers to claim parts.
    fn publish_morsels(&self, job: QueuedJob) {
        let mut queue = self.queue.lock().expect("scheduler lock");
        queue.morsels.push_back(job);
        drop(queue);
        self.wakeup.notify_all();
    }
}

/// Unblocks the sibling workers when a worker thread panics (an operator
/// assertion, an unknown column), so `std::thread::scope` can join all
/// threads and propagate the panic instead of deadlocking on the condvar.
struct PanicRelease<'s>(&'s Scheduler);

impl Drop for PanicRelease<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Flip `done` while holding the queue mutex: a sibling that has
            // checked `done` under the lock is either already waiting (and
            // gets the notification) or has not checked yet (and will see
            // the flag).  Without the lock the notify could land in the
            // check-to-wait window and be lost, leaving the sibling — and
            // the scope join — blocked forever.  `into_inner` instead of
            // `unwrap`: panicking inside a drop during unwind would abort.
            let _guard = self
                .0
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            self.0.done.store(true, Ordering::Release);
            self.0.wakeup.notify_all();
        }
    }
}

/// Executes a [`QueryPlan`] with a pool of `threads` scoped workers,
/// dispatching every node whose dependencies have completed — and, when
/// [`ExecSettings::morsel_threshold`] is set, splitting single large
/// operators into chunk-range morsels across the same pool.
///
/// Drop-in alternative to the serial [`PlanExecutor`]: identical results,
/// identical footprint records and identical timing-label sequences (see the
/// [module docs](self) for why).  The column source must be [`Sync`] because
/// the workers scan base columns concurrently.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// Create an executor with a pool of `threads` workers (clamped to at
    /// least 1; `threads = 1` delegates to the serial [`PlanExecutor`]).
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `plan` against `source`, recording footprints and timings in
    /// `ctx` exactly like the serial executor would.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        source: &(dyn ColumnSource + Sync),
        ctx: &mut ExecutionContext,
    ) -> PlanOutput {
        // Debug builds statically verify every plan before touching data
        // (mirroring the serial executor, which also covers the
        // single-worker delegation below).
        #[cfg(debug_assertions)]
        crate::verify::assert_verified(plan);
        let node_count = plan.node_count();
        // Without morsels, more workers than nodes can never be utilised;
        // with morsels, extra workers process parts of fanned-out nodes.  A
        // single worker is the serial executor with queue overhead, so skip
        // the machinery.
        let workers = if ctx.settings.morsel_threshold.is_some() {
            self.threads
        } else {
            self.threads.min(node_count)
        };
        if workers <= 1 || node_count == 0 {
            return PlanExecutor.execute(plan, source, ctx);
        }

        let settings = ctx.settings.clone();
        let formats = &ctx.formats;
        let capture = ctx.capture_enabled();
        // Subplan cache keys are a pure function of the plan, the format
        // assignment and the base columns — computed once here, before the
        // pool starts, and shared read-only by all workers.
        let cache_info = settings
            .cache
            .as_deref()
            .map(|cache| plan_cache_info(plan, source, formats, &settings, cache));
        // Fusion analysis (empty when disabled or inapplicable): a fused
        // region is scheduled through its *root* node — the root's
        // dependencies become the region's externals, and interiors never
        // enter the queue (their cells are published by the region
        // completion instead).
        let fusion = FusionPlan::for_execution(plan, &settings, cache_info.as_deref());
        #[cfg(debug_assertions)]
        crate::verify::assert_fusion_verified(plan, &fusion);
        // Tracing mirrors the serial executor: spans are recorded next to
        // the ordinary bookkeeping by whichever worker completes a node,
        // with relaxed atomic stores only (see `morph_telemetry::trace`).
        let trace = settings
            .tracer
            .as_ref()
            .map(|t| t.begin(plan.topology(&fusion, formats)));
        let interior = |idx: usize| fusion.region_of(idx).is_some() && !fusion.is_region_root(idx);

        let mut dependencies = plan.dependencies();
        for region in fusion.regions() {
            dependencies[region.root] = region.externals.clone();
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        let mut seeds = Vec::new();
        for (idx, deps) in dependencies.iter().enumerate() {
            if interior(idx) {
                continue;
            }
            for &dep in deps {
                dependents[dep].push(idx);
            }
            if deps.is_empty() {
                seeds.push(idx);
            }
        }

        let scheduler = Scheduler {
            queue: Mutex::new(TaskQueue {
                nodes: seeds.into_iter().collect(),
                morsels: VecDeque::new(),
            }),
            wakeup: Condvar::new(),
            remaining: dependencies
                .iter()
                .enumerate()
                .map(|(idx, deps)| {
                    // `usize::MAX` keeps interiors out of the queue even if
                    // a stray decrement were ever to reach them.
                    AtomicUsize::new(if interior(idx) {
                        usize::MAX
                    } else {
                        deps.len()
                    })
                })
                .collect(),
            completed: AtomicUsize::new(0),
            done: AtomicBool::new(false),
        };
        let cells: Vec<OnceLock<NodeResult<'_>>> =
            (0..node_count).map(|_| OnceLock::new()).collect();
        // Per-execution fused metrics, folded into the context after the
        // pool drains (workers only hold `&mut`-free shared state).
        let fused_regions_run = AtomicUsize::new(0);
        let fused_bytes_avoided = AtomicU64::new(0);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let scheduler = &scheduler;
                    let cells = &cells;
                    let dependents = &dependents;
                    let settings = &settings;
                    let cache_info = &cache_info;
                    let fusion = &fusion;
                    let trace = &trace;
                    let fused_regions_run = &fused_regions_run;
                    let fused_bytes_avoided = &fused_bytes_avoided;
                    scope.spawn(move || {
                        let _release = PanicRelease(scheduler);
                        // Register the query's governor on this worker so
                        // node/chunk checkpoints (and morsel parts) observe
                        // cancellation, deadline and memory limits; a trip
                        // unwinds the worker and `PanicRelease` drains the
                        // siblings.
                        let _governed =
                            crate::govern::GovernorScope::enter(settings.governor.clone());
                        // `OnceLock::get` pairs its acquire load with the
                        // publishing `set`, so a dependent worker sees the
                        // dependency's slot fully initialised.
                        let slot_of =
                            |i: usize| &cells[i].get().expect("dependency completed").slot;
                        while let Some(task) = scheduler.next_task() {
                            match task {
                                Task::Node(idx) => {
                                    if let Some(region_index) = fusion.region_of(idx) {
                                        let region = fusion.region(region_index);
                                        debug_assert_eq!(
                                            region.root, idx,
                                            "only region roots are scheduled"
                                        );
                                        if let Some(job) = plan_fused_job(
                                            region_index,
                                            region,
                                            &slot_of,
                                            settings,
                                            workers,
                                        ) {
                                            if let Some(trace) = trace {
                                                for &member in &region.members {
                                                    trace.note_fan_out(
                                                        member,
                                                        job.parts.len() as u64,
                                                    );
                                                }
                                            }
                                            scheduler
                                                .publish_morsels(QueuedJob::Fused(Arc::new(job)));
                                            continue;
                                        }
                                        let outcome = crate::fusion::execute_region(
                                            plan,
                                            region,
                                            &slot_of,
                                            settings,
                                            formats,
                                            cache_info.as_deref(),
                                            capture,
                                        );
                                        fused_regions_run.fetch_add(1, Ordering::Relaxed);
                                        fused_bytes_avoided
                                            .fetch_add(outcome.interior_bytes, Ordering::Relaxed);
                                        if let Some(trace) = trace {
                                            for node in &outcome.nodes {
                                                node.records.record_span(trace, node.node);
                                            }
                                        }
                                        complete_region(
                                            scheduler, cells, dependents, node_count, region,
                                            outcome,
                                        );
                                        continue;
                                    }
                                    let info = cache_info.as_ref().map(|infos| &infos[idx]);
                                    // A cached node never fans out: the hit
                                    // inside `execute_node` completes it
                                    // immediately, so building morsel state
                                    // (build sets, morphs) would be wasted.
                                    let cached = settings
                                        .cache
                                        .as_deref()
                                        .zip(info.and_then(|i| i.key))
                                        .is_some_and(|(cache, key)| cache.contains(&key));
                                    if !cached {
                                        if let Some(job) = plan_morsel_job(
                                            plan, idx, &slot_of, settings, formats, workers,
                                        ) {
                                            if let Some(trace) = trace {
                                                trace.note_fan_out(idx, job.parts.len() as u64);
                                            }
                                            scheduler.publish_morsels(QueuedJob::Op(Arc::new(job)));
                                            continue;
                                        }
                                    }
                                    let mut records = NodeRecords::new(capture);
                                    records.set_node(idx);
                                    let slot = execute_node(
                                        plan,
                                        idx,
                                        slot_of,
                                        source,
                                        settings,
                                        formats,
                                        info,
                                        &mut records,
                                    );
                                    if let Some(trace) = trace {
                                        records.record_span(trace, idx);
                                    }
                                    complete_node(
                                        scheduler, cells, dependents, node_count, idx, slot,
                                        records,
                                    );
                                }
                                Task::Morsel(job, part) => {
                                    let partial =
                                        run_morsel_part(plan, &job, part, &slot_of, settings);
                                    if job.partials[part].set(partial).is_err() {
                                        unreachable!("morsel part {part} executed twice");
                                    }
                                    let finished_parts =
                                        job.done.fetch_add(1, Ordering::AcqRel) + 1;
                                    if finished_parts == job.parts.len() {
                                        let info =
                                            cache_info.as_ref().map(|infos| &infos[job.node]);
                                        let (slot, records) =
                                            merge_morsel_job(plan, &job, capture, settings, info);
                                        if let Some(trace) = trace {
                                            records.record_span(trace, job.node);
                                        }
                                        complete_node(
                                            scheduler, cells, dependents, node_count, job.node,
                                            slot, records,
                                        );
                                    }
                                }
                                Task::FusedPart(job, part) => {
                                    let region = fusion.region(job.region_index);
                                    let partial = crate::fusion::run_region_part(
                                        plan,
                                        region,
                                        &job.prepared,
                                        job.parts[part].clone(),
                                        &slot_of,
                                        settings,
                                        formats,
                                    );
                                    if job.partials[part].set(partial).is_err() {
                                        unreachable!("fused part {part} executed twice");
                                    }
                                    let finished_parts =
                                        job.done.fetch_add(1, Ordering::AcqRel) + 1;
                                    if finished_parts == job.parts.len() {
                                        let outcome = merge_fused_job(
                                            plan,
                                            region,
                                            &job,
                                            capture,
                                            settings,
                                            formats,
                                            cache_info.as_deref(),
                                        );
                                        fused_regions_run.fetch_add(1, Ordering::Relaxed);
                                        fused_bytes_avoided
                                            .fetch_add(outcome.interior_bytes, Ordering::Relaxed);
                                        if let Some(trace) = trace {
                                            for node in &outcome.nodes {
                                                node.records.record_span(trace, node.node);
                                            }
                                        }
                                        complete_region(
                                            scheduler, cells, dependents, node_count, region,
                                            outcome,
                                        );
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            // Re-raise a worker's original panic payload (scope itself would
            // replace it with a generic "a scoped thread panicked").  The
            // `PanicRelease` guard has already unblocked the siblings.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        ctx.add_fused(
            fused_regions_run.into_inner(),
            fused_bytes_avoided.into_inner(),
        );
        // Merge per-node records in topological (node-list) order — this is
        // what keeps the context byte-identical to serial execution — and
        // collect the slots for output assembly.
        let mut slots = Vec::with_capacity(node_count);
        for cell in cells {
            let result = cell
                .into_inner()
                .expect("all plan nodes completed before the pool drained");
            ctx.merge_node_records(result.records);
            slots.push(result.slot);
        }
        let output = plan.collect_output(|i| &slots[i]);
        if let (Some(tracer), Some(trace)) = (&settings.tracer, trace) {
            tracer.finish(trace);
        }
        output
    }

    /// Fallible counterpart of [`ParallelExecutor::execute`]: runs the plan
    /// under the settings' [`QueryGovernor`](crate::govern::QueryGovernor)
    /// (when one is attached) and converts a governance or decode unwind —
    /// re-raised from whichever worker tripped first — into a structured
    /// [`ExecError`](crate::govern::ExecError).  Any other panic resumes
    /// unchanged.  The scheduler's `PanicRelease` guard has already
    /// unblocked the sibling workers and the pool has fully drained by the
    /// time this returns, so the pool is never poisoned.
    pub fn try_execute(
        &self,
        plan: &QueryPlan,
        source: &(dyn ColumnSource + Sync),
        ctx: &mut ExecutionContext,
    ) -> Result<PlanOutput, crate::govern::ExecError> {
        crate::govern::run_governed(|| self.execute(plan, source, ctx))
    }
}

/// Publish one completed node: store its slot and records, release its
/// dependents and flip `done` when it was the last node.  Shared by the
/// single-task path and the morsel merge.
fn complete_node<'a>(
    scheduler: &Scheduler,
    cells: &[OnceLock<NodeResult<'a>>],
    dependents: &[Vec<usize>],
    node_count: usize,
    idx: usize,
    slot: Slot<'a>,
    records: NodeRecords,
) {
    if cells[idx].set(NodeResult { slot, records }).is_err() {
        unreachable!("plan node {idx} executed twice");
    }
    let mut newly_ready = Vec::new();
    for &dependent in &dependents[idx] {
        let left = scheduler.remaining[dependent].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(left > 0, "in-degree underflow");
        if left == 1 {
            newly_ready.push(dependent);
        }
    }
    let finished = scheduler.completed.fetch_add(1, Ordering::AcqRel) + 1 == node_count;
    if finished {
        scheduler.done.store(true, Ordering::Release);
    }
    scheduler.enqueue_ready(newly_ready, finished);
}

/// Publish a completed fused region: interior cells first (they have no
/// dependents in the rewritten graph — their single consumer is a member
/// of the same region), then the root through the regular completion path,
/// which releases the root's dependents and detects plan completion (the
/// counter already includes the interiors published here).
fn complete_region<'a>(
    scheduler: &Scheduler,
    cells: &[OnceLock<NodeResult<'a>>],
    dependents: &[Vec<usize>],
    node_count: usize,
    region: &FusedRegion,
    outcome: RegionOutcome,
) {
    let mut root_result = None;
    for node in outcome.nodes {
        if node.node == region.root {
            root_result = Some((node.slot, node.records));
            continue;
        }
        if cells[node.node]
            .set(NodeResult {
                slot: node.slot,
                records: node.records,
            })
            .is_err()
        {
            unreachable!("fused interior {} completed twice", node.node);
        }
        scheduler.completed.fetch_add(1, Ordering::AcqRel);
    }
    let (slot, records) = root_result.expect("region outcome includes its root");
    complete_node(
        scheduler,
        cells,
        dependents,
        node_count,
        region.root,
        slot,
        records,
    );
}

/// Decide whether a fused region fans out across the pool and, if so,
/// build the job: the region must be prefix-independent (every select
/// reads the driver directly), and the driver must reach the morsel
/// threshold and split into at least two chunk ranges.  The project data
/// morphs are built here, once, and shared by all parts.
fn plan_fused_job<'a, 's, F>(
    region_index: usize,
    region: &FusedRegion,
    slots: &F,
    settings: &ExecSettings,
    workers: usize,
) -> Option<FusedJob>
where
    'a: 's,
    F: Fn(usize) -> &'s Slot<'a>,
{
    let threshold = settings.morsel_threshold?;
    if !region.prefix_independent {
        return None;
    }
    let col = |r: crate::plan::ColRef| slots(r.node).column(r.port);
    let driver = col(region.driver);
    if driver.logical_len() < threshold.max(1) || driver.chunk_count() < 2 {
        return None;
    }
    let parts_wanted = workers
        .min(driver.chunk_count())
        .min((driver.logical_len() / threshold.max(1)).max(2));
    let parts = driver.partition_chunks(parts_wanted);
    if parts.len() < 2 {
        return None;
    }
    // Timing starts before the project morphs: every member's recorded
    // duration includes shared-state construction, like the serial pass.
    let started = Instant::now();
    let prepared = crate::fusion::prepare_project_data(region, &col);
    let partials = (0..parts.len()).map(|_| OnceLock::new()).collect();
    Some(FusedJob {
        region_index,
        parts,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        partials,
        prepared,
        started,
    })
}

/// Merge the partials of a fully processed fused job — per stage, in range
/// order — into per-member outcomes, byte-identical to a whole-column
/// fused pass (and hence to the serial operators).
fn merge_fused_job(
    plan: &QueryPlan,
    region: &FusedRegion,
    job: &FusedJob,
    capture: bool,
    settings: &ExecSettings,
    formats: &FormatConfig,
    cache_info: Option<&[NodeCacheInfo]>,
) -> RegionOutcome {
    let parts: Vec<&Vec<FusedPartial>> = job
        .partials
        .iter()
        .map(|cell| cell.get().expect("all parts completed"))
        .collect();
    let mut outcome = RegionOutcome {
        nodes: Vec::with_capacity(region.stages.len()),
        interior_bytes: 0,
    };
    for (i, stage) in region.stages.iter().enumerate() {
        let value = match stage.kind {
            StageKind::AggSum { .. } => {
                FusedPartial::Sum(parts.iter().fold(0u64, |acc, part| match &part[i] {
                    FusedPartial::Sum(sum) => acc.wrapping_add(*sum),
                    FusedPartial::Col(_) => unreachable!("sum stage with column partial"),
                }))
            }
            _ => {
                let format = crate::fusion::fused_part_format(plan, stage.node, settings, formats);
                let columns = parts.iter().map(|part| match &part[i] {
                    FusedPartial::Col(column) => column,
                    FusedPartial::Sum(_) => unreachable!("column stage with sum partial"),
                });
                FusedPartial::Col(partitioned::concat_partials(&format, columns))
            }
        };
        outcome.nodes.push(crate::fusion::fused_node_outcome(
            plan,
            region,
            stage.node,
            value,
            job.started.elapsed(),
            settings,
            cache_info,
            capture,
            &mut outcome.interior_bytes,
        ));
    }
    outcome
}

/// Decide whether node `idx` is fanned out and, if so, build the job: the
/// input must have a partitioned kernel ([`QueryPlan::morsel_op`]), reach
/// the morsel threshold and split into at least two chunk ranges.  Shared
/// operator state (semi-join build set, project morph) is built here, once.
fn plan_morsel_job<'a, 's, F>(
    plan: &QueryPlan,
    idx: usize,
    slots: &F,
    settings: &ExecSettings,
    formats: &FormatConfig,
    workers: usize,
) -> Option<MorselJob>
where
    'a: 's,
    F: Fn(usize) -> &'s Slot<'a>,
{
    let threshold = settings.morsel_threshold?;
    let op = plan.morsel_op(idx)?;
    let input_ref = op.partitioned_input();
    let input = slots(input_ref.node).column(input_ref.port);
    if input.logical_len() < threshold.max(1) || input.chunk_count() < 2 {
        return None;
    }
    // Enough parts that each carries roughly a threshold's worth of work,
    // but never more than the pool could process concurrently.
    let parts_wanted = workers
        .min(input.chunk_count())
        .min((input.logical_len() / threshold.max(1)).max(2));
    let parts = input.partition_chunks(parts_wanted);
    if parts.len() < 2 {
        return None;
    }
    // Timing starts before the shared state is built: the serial operator
    // includes set construction and the project morph in its measurement.
    let started = Instant::now();
    let aux = match op {
        MorselOp::SemiJoin { build, .. } => {
            let build = slots(build.node).column(build.port);
            MorselAux::Set(partitioned::build_semi_join_set(build))
        }
        MorselOp::Project { data, .. } => {
            let data = slots(data.node).column(data.port);
            match ensure_random_access(data) {
                Some(morphed) => MorselAux::Morphed(morphed),
                None => MorselAux::None,
            }
        }
        // The sorted intersection shares no state: each part opens its own
        // chunk cursor over the second input and seeks it by value.
        _ => MorselAux::None,
    };
    let out_format = partitioned::effective_output_format(
        &formats.format_for(&plan.node_full_name(idx), Format::Uncompressed),
        settings,
    );
    let partials = (0..parts.len()).map(|_| OnceLock::new()).collect();
    Some(MorselJob {
        node: idx,
        parts,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        partials,
        aux,
        out_format,
        started,
    })
}

/// Process one claimed part of a morsel job with the matching partitioned
/// kernel from [`partitioned`].
fn run_morsel_part<'a, 's, F>(
    plan: &QueryPlan,
    job: &MorselJob,
    part: usize,
    slots: &F,
    settings: &ExecSettings,
) -> MorselPartial
where
    'a: 's,
    F: Fn(usize) -> &'s Slot<'a>,
{
    let range = job.parts[part].clone();
    let op = plan.morsel_op(job.node).expect("morsel node");
    let col = |r: crate::plan::ColRef| slots(r.node).column(r.port);
    match op {
        MorselOp::Select {
            input,
            op,
            constant,
        } => MorselPartial::Col(partitioned::select_part(
            op,
            col(input),
            constant,
            range,
            &job.out_format,
            settings.style,
        )),
        MorselOp::SelectBetween { input, low, high } => MorselPartial::Col(
            partitioned::select_between_part(col(input), low, high, range, &job.out_format),
        ),
        MorselOp::Project { data, positions } => {
            let data = match &job.aux {
                MorselAux::Morphed(morphed) => morphed,
                _ => col(data),
            };
            MorselPartial::Col(partitioned::project_part(
                data,
                col(positions),
                range,
                &job.out_format,
            ))
        }
        MorselOp::SemiJoin { probe, .. } => {
            let set = match &job.aux {
                MorselAux::Set(set) => set,
                _ => unreachable!("semi-join job without a build set"),
            };
            MorselPartial::Col(partitioned::semi_join_part(
                col(probe),
                set,
                range,
                &job.out_format,
            ))
        }
        MorselOp::CalcBinary { op, lhs, rhs } => MorselPartial::Col(partitioned::calc_binary_part(
            op,
            col(lhs),
            col(rhs),
            range,
            &job.out_format,
            settings.style,
        )),
        MorselOp::IntersectSorted { a, b } => MorselPartial::Col(
            partitioned::intersect_sorted_part(col(a), col(b), range, &job.out_format),
        ),
        MorselOp::AggSum { values } => MorselPartial::Sum(partitioned::agg_sum_part(
            col(values),
            range,
            settings.style,
        )),
    }
}

/// Merge the partials of a fully processed morsel job — in range order —
/// into the node's slot and records, byte-identical to the serial operator,
/// and insert the merged result into the plan cache (when one is attached):
/// because the splice reconstructs the serial byte stream, morsel-produced
/// entries are interchangeable with serially produced ones.
fn merge_morsel_job(
    plan: &QueryPlan,
    job: &MorselJob,
    capture: bool,
    settings: &ExecSettings,
    cache_info: Option<&NodeCacheInfo>,
) -> (Slot<'static>, NodeRecords) {
    let mut records = NodeRecords::new(capture);
    records.set_node(job.node);
    let partials = job
        .partials
        .iter()
        .map(|cell| cell.get().expect("all parts completed"));
    let slot = match plan.morsel_op(job.node).expect("morsel node") {
        MorselOp::AggSum { .. } => {
            let total = partials.fold(0u64, |acc, partial| match partial {
                MorselPartial::Sum(sum) => acc.wrapping_add(*sum),
                MorselPartial::Col(_) => unreachable!("sum job with column partial"),
            });
            Slot::Scalar(total)
        }
        _ => {
            let columns = partials.map(|partial| match partial {
                MorselPartial::Col(column) => column,
                MorselPartial::Sum(_) => unreachable!("column job with sum partial"),
            });
            let merged = partitioned::concat_partials(&job.out_format, columns);
            records.record_intermediate(&plan.node_full_name(job.node), &merged);
            Slot::Col(Arc::new(merged))
        }
    };
    records.push_timing(&plan.node_timing_label(job.node), job.started.elapsed());
    if let Some((cache, key)) = settings
        .cache
        .as_deref()
        .zip(cache_info.and_then(|info| info.key))
    {
        if let Some(value) = cached_from_slot(&slot) {
            let deps = cache_info.map(|info| info.deps.as_slice()).unwrap_or(&[]);
            cache.insert(key, value, records.last_duration(), deps);
        }
    }
    (slot, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecSettings, FormatConfig};
    use crate::plan::PlanBuilder;
    use crate::CmpOp;
    use morph_compression::Format;
    use morph_storage::Column;
    use std::collections::HashMap;

    fn source() -> HashMap<String, Column> {
        let mut columns = HashMap::new();
        columns.insert(
            "a".to_string(),
            Column::from_vec((0..4000u64).map(|i| i % 97).collect()),
        );
        columns.insert(
            "b".to_string(),
            Column::from_vec((0..4000u64).map(|i| (i * 7) % 113).collect()),
        );
        columns
    }

    /// Two independent select subtrees intersected — minimal parallelism.
    fn diamond_plan() -> crate::plan::QueryPlan {
        let mut p = PlanBuilder::new("par");
        let a = p.scan("a");
        let b = p.scan("b");
        let left = p.select("left", a, CmpOp::Lt, 50);
        let right = p.select("right", b, CmpOp::Lt, 60);
        let both = p.intersect_sorted("both", left, right);
        let total = p.agg_sum("total", both);
        p.finish_scalar(total)
    }

    #[test]
    fn dependencies_point_backwards_and_ready_sets_cover_all_nodes() {
        let plan = diamond_plan();
        let deps = plan.dependencies();
        assert_eq!(deps.len(), plan.node_count());
        for (idx, d) in deps.iter().enumerate() {
            assert!(d.iter().all(|&dep| dep < idx), "node {idx} deps {d:?}");
        }
        // scans ; selects ; intersect ; agg
        let levels = plan.ready_sets();
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0], vec![0, 1]);
        assert_eq!(levels[1], vec![2, 3]);
        let covered: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(covered, plan.node_count());
    }

    #[test]
    fn parallel_matches_serial_for_all_thread_counts() {
        let source = source();
        let plan = diamond_plan();
        for formats in [
            FormatConfig::uncompressed(),
            FormatConfig::with_default(Format::DynBp).set("par/left", Format::DeltaDynBp),
        ] {
            let mut serial_ctx =
                ExecutionContext::new(ExecSettings::vectorized_compressed(), formats.clone());
            let serial = PlanExecutor.execute(&plan, &source, &mut serial_ctx);
            for threads in [1, 2, 4, 64] {
                let mut ctx =
                    ExecutionContext::new(ExecSettings::vectorized_compressed(), formats.clone());
                let parallel = ParallelExecutor::new(threads).execute(&plan, &source, &mut ctx);
                assert_eq!(parallel, serial, "threads {threads}");
                assert_eq!(ctx.records(), serial_ctx.records(), "threads {threads}");
                let labels: Vec<&str> = ctx.timings().iter().map(|(n, _)| n.as_str()).collect();
                let serial_labels: Vec<&str> = serial_ctx
                    .timings()
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect();
                assert_eq!(labels, serial_labels, "threads {threads}");
            }
        }
    }

    #[test]
    fn morsel_fanout_matches_serial_bookkeeping_exactly() {
        let source = source();
        let plan = diamond_plan();
        for formats in [
            FormatConfig::uncompressed(),
            FormatConfig::with_default(Format::DynBp).set("par/left", Format::DeltaDynBp),
            FormatConfig::with_default(Format::Rle),
        ] {
            // Threshold far below the 4000-element inputs: every select (and
            // the final agg over "both") fans out where possible.
            let settings = ExecSettings::vectorized_compressed().with_morsel_threshold(256);
            let mut serial_ctx = ExecutionContext::new(settings.clone(), formats.clone());
            let serial = PlanExecutor.execute(&plan, &source, &mut serial_ctx);
            for threads in [2, 3, 8] {
                let mut ctx = ExecutionContext::new(settings.clone(), formats.clone());
                let parallel = ParallelExecutor::new(threads).execute(&plan, &source, &mut ctx);
                assert_eq!(parallel, serial, "threads {threads}");
                assert_eq!(ctx.records(), serial_ctx.records(), "threads {threads}");
                let labels: Vec<&str> = ctx.timings().iter().map(|(n, _)| n.as_str()).collect();
                let serial_labels: Vec<&str> = serial_ctx
                    .timings()
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect();
                assert_eq!(labels, serial_labels, "threads {threads}");
            }
        }
    }

    #[test]
    fn morsel_fanout_covers_project_and_semi_join() {
        // A plan whose hot nodes are a project and a semi-join, with a
        // non-random-access data column (forces the one-time morph).
        let mut columns = HashMap::new();
        columns.insert(
            "keys".to_string(),
            Column::compress(
                &(0..6000u64).map(|i| i % 211).collect::<Vec<_>>(),
                &Format::DynBp,
            ),
        );
        columns.insert(
            "values".to_string(),
            Column::compress(
                &(0..6000u64).map(|i| (i * 13) % 1000).collect::<Vec<_>>(),
                &Format::DynBp,
            ),
        );
        columns.insert("dim".to_string(), Column::from_vec((0..100u64).collect()));
        let mut p = PlanBuilder::new("psj");
        let keys = p.scan("keys");
        let values = p.scan("values");
        let dim = p.scan("dim");
        let pos = p.semi_join("pos", keys, dim);
        let projected = p.project("projected", values, pos);
        let total = p.agg_sum("total", projected);
        let plan = p.finish_scalar(total);

        let settings = ExecSettings::vectorized_compressed().with_morsel_threshold(512);
        let formats = FormatConfig::with_default(Format::DynBp);
        let mut serial_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let serial = PlanExecutor.execute(&plan, &columns, &mut serial_ctx);
        for threads in [2, 4] {
            let mut ctx = ExecutionContext::new(settings.clone(), formats.clone());
            let parallel = ParallelExecutor::new(threads).execute(&plan, &columns, &mut ctx);
            assert_eq!(parallel, serial, "threads {threads}");
            assert_eq!(ctx.records(), serial_ctx.records(), "threads {threads}");
        }
    }

    #[test]
    fn parallel_capture_matches_serial_capture() {
        let source = source();
        let plan = diamond_plan();
        let mut serial_ctx =
            ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        serial_ctx.enable_capture();
        PlanExecutor.execute(&plan, &source, &mut serial_ctx);
        for settings in [
            ExecSettings::default(),
            ExecSettings::default().with_morsel_threshold(128),
        ] {
            let mut parallel_ctx =
                ExecutionContext::new(settings.clone(), FormatConfig::uncompressed());
            parallel_ctx.enable_capture();
            ParallelExecutor::new(3).execute(&plan, &source, &mut parallel_ctx);
            assert_eq!(
                parallel_ctx.captured_columns(),
                serial_ctx.captured_columns()
            );
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
    }

    #[test]
    fn serial_and_parallel_executors_share_one_cache() {
        use morph_cache::QueryCache;

        let source = source();
        let plan = diamond_plan();
        let cache = Arc::new(QueryCache::unbounded());
        let formats = FormatConfig::with_default(Format::DynBp);
        // Morsels on: the cold parallel run inserts morsel-merged columns,
        // which must be byte-identical to what the serial executor would
        // have produced — so the serial warm run below can hit on them.
        let settings = ExecSettings::vectorized_compressed()
            .with_morsel_threshold(256)
            .with_cache(Arc::clone(&cache));

        let mut reference_ctx =
            ExecutionContext::new(ExecSettings::vectorized_compressed(), formats.clone());
        let reference = PlanExecutor.execute(&plan, &source, &mut reference_ctx);

        let mut cold_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let cold = ParallelExecutor::new(3).execute(&plan, &source, &mut cold_ctx);
        assert_eq!(cold, reference);
        assert_eq!(cold_ctx.cache_hit_count(), 0);

        // Warm serial run: every non-scan node (2 selects, intersect, agg)
        // is served from entries the parallel run inserted.
        let mut warm_serial_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let warm_serial = PlanExecutor.execute(&plan, &source, &mut warm_serial_ctx);
        assert_eq!(warm_serial, reference);
        assert_eq!(warm_serial_ctx.records(), reference_ctx.records());
        assert_eq!(warm_serial_ctx.cache_hit_count(), 4);

        // Warm parallel runs at several widths hit the same entries.
        for threads in [2, 8] {
            let mut ctx = ExecutionContext::new(settings.clone(), formats.clone());
            let warm = ParallelExecutor::new(threads).execute(&plan, &source, &mut ctx);
            assert_eq!(warm, reference, "threads {threads}");
            assert_eq!(ctx.records(), reference_ctx.records(), "threads {threads}");
            assert_eq!(ctx.cache_hit_count(), 4, "threads {threads}");
        }
    }

    #[test]
    fn fused_parallel_and_morsels_match_serial_unfused() {
        // A pure chain select → project → agg: one fused region driven by
        // the scanned base column, large enough to fan out as morsels.
        let mut columns = HashMap::new();
        columns.insert(
            "a".to_string(),
            Column::from_vec((0..6000u64).map(|i| i % 97).collect()),
        );
        columns.insert(
            "b".to_string(),
            Column::from_vec((0..6000u64).map(|i| (i * 13) % 1009).collect()),
        );
        let mut p = PlanBuilder::new("fp");
        let a = p.scan("a");
        let b = p.scan("b");
        let pos = p.select("pos", a, CmpOp::Lt, 40);
        let bv = p.project("b_at", b, pos);
        let total = p.agg_sum("total", bv);
        let plan = p.finish_scalar(total);

        for formats in [
            FormatConfig::uncompressed(),
            FormatConfig::with_default(Format::DynBp),
            FormatConfig::with_default(Format::DeltaDynBp),
        ] {
            let mut serial_ctx =
                ExecutionContext::new(ExecSettings::vectorized_compressed(), formats.clone());
            let serial = PlanExecutor.execute(&plan, &columns, &mut serial_ctx);
            let fused = ExecSettings::vectorized_compressed().with_fusion();
            for (threads, settings) in [
                (2, fused.clone()),
                (4, fused.clone()),
                (2, fused.clone().with_morsel_threshold(512)),
                (4, fused.clone().with_morsel_threshold(512)),
            ] {
                let mut ctx = ExecutionContext::new(settings, formats.clone());
                let parallel = ParallelExecutor::new(threads).execute(&plan, &columns, &mut ctx);
                assert_eq!(parallel, serial, "threads {threads}");
                assert_eq!(ctx.records(), serial_ctx.records(), "threads {threads}");
                let labels: Vec<&str> = ctx.timings().iter().map(|(n, _)| n.as_str()).collect();
                let serial_labels: Vec<&str> = serial_ctx
                    .timings()
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect();
                assert_eq!(labels, serial_labels, "threads {threads}");
                assert_eq!(ctx.fused_region_count(), 1, "threads {threads}");
                assert!(ctx.intermediate_bytes_avoided() > 0, "threads {threads}");
            }
        }
    }

    #[test]
    fn fused_parallel_shares_cache_with_unfused_serial() {
        use morph_cache::QueryCache;

        let source = source();
        let mut p = PlanBuilder::new("fc");
        let a = p.scan("a");
        let b = p.scan("b");
        let pos = p.select("pos", a, CmpOp::Lt, 50);
        let bv = p.project("b_at", b, pos);
        let total = p.agg_sum("total", bv);
        let plan = p.finish_scalar(total);
        let formats = FormatConfig::with_default(Format::DynBp);

        // Cold fused parallel run (with morsels) inserts every member under
        // its unfused key...
        let cache = Arc::new(QueryCache::unbounded());
        let settings = ExecSettings::vectorized_compressed()
            .with_fusion()
            .with_morsel_threshold(256)
            .with_cache(Arc::clone(&cache));
        let mut cold_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let cold = ParallelExecutor::new(3).execute(&plan, &source, &mut cold_ctx);
        assert_eq!(cold_ctx.fused_region_count(), 1);

        // ...so a warm unfused serial run hits all three non-scan nodes,
        // and a warm fused run demotes the fully cached region and hits
        // the same entries.
        let unfused = ExecSettings::vectorized_compressed().with_cache(Arc::clone(&cache));
        let mut warm_ctx = ExecutionContext::new(unfused, formats.clone());
        let warm = PlanExecutor.execute(&plan, &source, &mut warm_ctx);
        assert_eq!(warm, cold);
        assert_eq!(warm_ctx.cache_hit_count(), 3);
        let mut warm_fused_ctx = ExecutionContext::new(settings.clone(), formats.clone());
        let warm_fused = ParallelExecutor::new(3).execute(&plan, &source, &mut warm_fused_ctx);
        assert_eq!(warm_fused, cold);
        assert_eq!(warm_fused_ctx.cache_hit_count(), 3);
        assert_eq!(warm_fused_ctx.fused_region_count(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown base column")]
    fn worker_panics_propagate() {
        let source = source();
        let mut p = PlanBuilder::new("bad");
        let a = p.scan("a");
        let missing = p.scan("no_such_column");
        let left = p.select("left", a, CmpOp::Lt, 10);
        let right = p.select("right", missing, CmpOp::Lt, 10);
        let both = p.intersect_sorted("both", left, right);
        let total = p.agg_sum("total", both);
        let plan = p.finish_scalar(total);
        let mut ctx = ExecutionContext::new(ExecSettings::default(), FormatConfig::uncompressed());
        ParallelExecutor::new(2).execute(&plan, &source, &mut ctx);
    }
}
