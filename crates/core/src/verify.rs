//! Static verification of [`QueryPlan`]s.
//!
//! The plan layer's correctness rests on structural invariants the builder
//! establishes but nothing re-checks once a plan exists as a value: nodes
//! are stored in topological order (every edge points backwards), every
//! handle references a port its producer actually materialises, grouping
//! handles reference grouping nodes, and the outputs reference nodes of the
//! right kind.  Executors *assume* all of this — a malformed plan panics
//! deep inside a slot lookup with no indication of which edge was wrong.
//!
//! [`verify`] re-checks every invariant up front and returns a structured
//! [`PlanError`] naming the offending node, so malformed plans are rejected
//! at the boundary instead of panicking mid-execution:
//!
//! * **Acyclicity / topological order** — every input handle references a
//!   strictly earlier node.  In the list representation a cycle can only
//!   manifest as a forward (or self) edge, so this one check is exact.
//! * **Operator arity and port legality** — only grouping nodes produce a
//!   second column (`_reps`, port 1), scalar aggregations produce no
//!   column at all, and grouping handles must point at grouping nodes.
//! * **Output well-formedness** — a scalar output references a scalar
//!   node, grouped outputs reference column-producing ports, all in range.
//! * **Name uniqueness** — intermediate names (including the implicit
//!   `"<step>_reps"`) are the columns' identity in footprint records and
//!   format assignment; duplicates would silently alias.
//! * **Format legality** ([`verify_with_formats`]) — every edge's resolved
//!   format must be encodable by the kernel registry (static bit widths in
//!   `1..=64`), including `morph` targets baked into the plan itself.
//! * **Fusion-region legality** — the regions the fusion analysis would
//!   run are re-validated from first principles: interiors are
//!   position-preserving single-consumer operators, exactly one external
//!   stream drives the region, and project data sides stay external.
//! * **Morsel-partition safety** — a node's partitioned input is one of
//!   its declared inputs, so chunk-range fan-out never streams a column
//!   the dependency graph does not order before the node.
//!
//! The SQL planner runs [`verify`] on every compiled query; the serial and
//! parallel executors re-run it (plus the fusion check against the region
//! set they actually execute) under `debug_assertions`, so every existing
//! determinism suite doubles as a verifier suite.

use std::fmt;

use morph_compression::Format;

use crate::exec::FormatConfig;
use crate::fusion::{interior_eligible, streamed_inputs, FusedRegion, FusionPlan};
use crate::plan::{PlanOp, PlanOutputs, QueryPlan};

/// A structural defect of a [`QueryPlan`], found by [`verify`].
///
/// Node fields are indices into the plan's node list (the order
/// [`QueryPlan::describe`] prints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan has no nodes.
    EmptyPlan,
    /// `node` consumes `input`, which is not a strictly earlier node — a
    /// forward or self edge.  Since nodes are stored as a list, this is
    /// exactly how a dependency cycle (or an out-of-range reference)
    /// manifests: the node order is not topological.
    ForwardReference {
        /// The consuming node.
        node: usize,
        /// The referenced node index (`>= node`, or out of range).
        input: usize,
    },
    /// `node` requests a port `producer` does not materialise (only
    /// grouping nodes have a port 1).
    InvalidPort {
        /// The consuming node.
        node: usize,
        /// The producing node.
        producer: usize,
        /// The requested port.
        port: u8,
    },
    /// `node` consumes the scalar aggregation `producer` as a column.
    ScalarAsColumn {
        /// The consuming node.
        node: usize,
        /// The scalar-producing node.
        producer: usize,
    },
    /// `node` uses `target` as a grouping, but `target` is not a
    /// `group_by` / `group_by_refine` node.
    NotAGrouping {
        /// The consuming node.
        node: usize,
        /// The node referenced as a grouping.
        target: usize,
    },
    /// Two nodes claim the intermediate name `name` (step names and the
    /// implicit `"<step>_reps"` of grouping nodes must be unique — they
    /// are the columns' identity in records and format assignment).
    DuplicateName {
        /// The doubly-claimed intermediate name.
        name: String,
    },
    /// An output handle references a node index outside the plan.
    OutputOutOfRange {
        /// The out-of-range node index.
        node: usize,
    },
    /// The scalar output references `node`, which is not a scalar
    /// aggregation.
    OutputNotScalar {
        /// The referenced node.
        node: usize,
    },
    /// A grouped output references a port of `node` that is not a
    /// materialised column.
    OutputNotColumn {
        /// The referenced node.
        node: usize,
        /// The referenced port.
        port: u8,
    },
    /// The format resolved (or baked into a `morph` node) for `edge` is
    /// not encodable: `reason` says which bound it violates.
    IllegalEdgeFormat {
        /// The column name the format applies to.
        edge: String,
        /// The offending format.
        format: Format,
        /// Which legality rule it violates.
        reason: &'static str,
    },
    /// `node`'s morsel decomposition partitions a column that is not among
    /// its declared inputs.
    MorselInputMismatch {
        /// The offending node.
        node: usize,
    },
    /// A fusion region's member list is malformed: fewer than two members,
    /// not strictly ascending, out of range, or the root is not the last
    /// member.
    FusionRootMismatch {
        /// The region's root node.
        root: usize,
    },
    /// A fusion region absorbed `node` as an interior stage, but its
    /// operator is not position-preserving and streamable.
    FusionIneligibleInterior {
        /// The ineligible interior node.
        node: usize,
    },
    /// A fusion region absorbed `node` as an interior stage, but `node`
    /// has more than one consumer — dropping its column after the pass
    /// would starve the other consumers.
    FusionMultiConsumerInterior {
        /// The multiply-consumed interior node.
        node: usize,
        /// How many consumers it actually has.
        consumers: usize,
    },
    /// A fusion region's members stream from more than one external column
    /// (or from an external column that is not the declared driver).
    FusionMultipleDrivers {
        /// The region's root node.
        root: usize,
    },
    /// A project member of a fusion region gathers from a data column
    /// inside the region — its data side must be a finished column, not an
    /// in-flight stream.
    FusionProjectDataInterior {
        /// The offending project node.
        node: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyPlan => write!(f, "plan has no nodes"),
            PlanError::ForwardReference { node, input } => write!(
                f,
                "node #{node} references node #{input}, which is not strictly earlier \
                 (cycle or out-of-range edge)"
            ),
            PlanError::InvalidPort {
                node,
                producer,
                port,
            } => write!(
                f,
                "node #{node} requests port {port} of node #{producer}, which it does not produce"
            ),
            PlanError::ScalarAsColumn { node, producer } => write!(
                f,
                "node #{node} consumes scalar aggregation #{producer} as a column"
            ),
            PlanError::NotAGrouping { node, target } => write!(
                f,
                "node #{node} uses node #{target} as a grouping, but it is not one"
            ),
            PlanError::DuplicateName { name } => {
                write!(f, "duplicate intermediate name {name:?}")
            }
            PlanError::OutputOutOfRange { node } => {
                write!(f, "output references node #{node}, which is out of range")
            }
            PlanError::OutputNotScalar { node } => write!(
                f,
                "scalar output references node #{node}, which is not a scalar aggregation"
            ),
            PlanError::OutputNotColumn { node, port } => write!(
                f,
                "grouped output references port {port} of node #{node}, \
                 which is not a materialised column"
            ),
            PlanError::IllegalEdgeFormat {
                edge,
                format,
                reason,
            } => write!(
                f,
                "edge {edge:?} resolves to illegal format {format}: {reason}"
            ),
            PlanError::MorselInputMismatch { node } => write!(
                f,
                "node #{node} partitions a column that is not among its inputs"
            ),
            PlanError::FusionRootMismatch { root } => write!(
                f,
                "fusion region rooted at #{root} has a malformed member list"
            ),
            PlanError::FusionIneligibleInterior { node } => write!(
                f,
                "fusion interior #{node} is not a position-preserving streamable operator"
            ),
            PlanError::FusionMultiConsumerInterior { node, consumers } => write!(
                f,
                "fusion interior #{node} has {consumers} consumers (must be exactly 1)"
            ),
            PlanError::FusionMultipleDrivers { root } => write!(
                f,
                "fusion region rooted at #{root} streams from more than one external column"
            ),
            PlanError::FusionProjectDataInterior { node } => write!(
                f,
                "fused project #{node} gathers from a data column inside its own region"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Whether `op` materialises a column at `port` (grouping nodes have two
/// ports, scalar aggregations none, everything else exactly port 0).
fn produces_column(op: &PlanOp, port: u8) -> bool {
    match op {
        PlanOp::AggSum { .. } => false,
        PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. } => port <= 1,
        _ => port == 0,
    }
}

/// Check one consumed column handle against its producer.
fn check_col_input(
    plan: &QueryPlan,
    node: usize,
    input_node: usize,
    port: u8,
) -> Result<(), PlanError> {
    if input_node >= node {
        return Err(PlanError::ForwardReference {
            node,
            input: input_node,
        });
    }
    let producer = &plan.nodes[input_node].op;
    if matches!(producer, PlanOp::AggSum { .. }) {
        return Err(PlanError::ScalarAsColumn {
            node,
            producer: input_node,
        });
    }
    if !produces_column(producer, port) {
        return Err(PlanError::InvalidPort {
            node,
            producer: input_node,
            port,
        });
    }
    Ok(())
}

/// Check a grouping handle: in range (backwards) and pointing at a
/// grouping node.
fn check_group_input(plan: &QueryPlan, node: usize, target: usize) -> Result<(), PlanError> {
    if target >= node {
        return Err(PlanError::ForwardReference {
            node,
            input: target,
        });
    }
    if !matches!(
        plan.nodes[target].op,
        PlanOp::GroupBy { .. } | PlanOp::GroupByRefine { .. }
    ) {
        return Err(PlanError::NotAGrouping { node, target });
    }
    Ok(())
}

/// A format no encoder can honour, independent of the data: static
/// bit-packing with a width outside `1..=64`.  Everything else is a legal
/// target for every kernel (the registry decodes all formats blockwise).
fn check_format(edge: &str, format: Format) -> Result<(), PlanError> {
    if let Format::StaticBp(width) = format {
        if width == 0 || width > 64 {
            return Err(PlanError::IllegalEdgeFormat {
                edge: edge.to_string(),
                format,
                reason: "static bit width must be in 1..=64",
            });
        }
    }
    Ok(())
}

/// Verify the structural invariants of `plan` (everything except formats
/// and fusion regions).
fn verify_structure(plan: &QueryPlan) -> Result<(), PlanError> {
    if plan.nodes.is_empty() {
        return Err(PlanError::EmptyPlan);
    }

    // Per-node wiring: backwards edges, legal ports, grouping targets, and
    // statically legal morph targets.
    for (idx, node) in plan.nodes.iter().enumerate() {
        match &node.op {
            PlanOp::GroupByRefine { previous, .. } => {
                check_group_input(plan, idx, previous.node)?;
                let keys = match node.op.inputs().last() {
                    Some(r) => *r,
                    None => unreachable!("group_by_refine has inputs"),
                };
                check_col_input(plan, idx, keys.node, keys.port)?;
            }
            PlanOp::AggSumGrouped { group, values } => {
                check_group_input(plan, idx, group.node)?;
                check_col_input(plan, idx, values.node, values.port)?;
            }
            PlanOp::Morph { input, target } => {
                check_col_input(plan, idx, input.node, input.port)?;
                check_format(&plan.node_full_name(idx), *target)?;
            }
            op => {
                for input in op.inputs() {
                    check_col_input(plan, idx, input.node, input.port)?;
                }
            }
        }
    }

    // Intermediate-name uniqueness (scans claim no intermediate name; the
    // builder deduplicates scans of the same base column).
    let mut claimed: Vec<String> = Vec::new();
    for node in &plan.nodes {
        for name in crate::plan::PlanBuilder::claimed_names(&node.name, &node.op) {
            if claimed.contains(&name) {
                return Err(PlanError::DuplicateName { name });
            }
            claimed.push(name);
        }
    }

    // Outputs.
    let node_count = plan.nodes.len();
    match &plan.outputs {
        PlanOutputs::Scalar(value) => {
            if value.node >= node_count {
                return Err(PlanError::OutputOutOfRange { node: value.node });
            }
            if !matches!(plan.nodes[value.node].op, PlanOp::AggSum { .. }) {
                return Err(PlanError::OutputNotScalar { node: value.node });
            }
        }
        PlanOutputs::Grouped { keys, values } => {
            for r in keys.iter().chain(std::iter::once(values)) {
                if r.node >= node_count {
                    return Err(PlanError::OutputOutOfRange { node: r.node });
                }
                if !produces_column(&plan.nodes[r.node].op, r.port) {
                    return Err(PlanError::OutputNotColumn {
                        node: r.node,
                        port: r.port,
                    });
                }
            }
        }
    }

    // Morsel-partition safety: the partitioned input of every
    // chunk-partitionable node is one of its declared inputs, so fan-out
    // only ever streams columns the dependency graph orders before it.
    for idx in 0..node_count {
        if let Some(morsel) = plan.morsel_op(idx) {
            let partitioned = morsel.partitioned_input();
            if !plan.nodes[idx].op.inputs().contains(&partitioned) {
                return Err(PlanError::MorselInputMismatch { node: idx });
            }
        }
    }

    Ok(())
}

/// Count how many times each node's outputs are consumed (by other nodes
/// and by the plan outputs) — the consumer census the fusion analysis uses.
fn consumer_counts(plan: &QueryPlan) -> Vec<usize> {
    let mut consumers = vec![0usize; plan.nodes.len()];
    for node in &plan.nodes {
        for input in node.op.inputs() {
            consumers[input.node] += 1;
        }
    }
    match &plan.outputs {
        PlanOutputs::Scalar(value) => consumers[value.node] += 1,
        PlanOutputs::Grouped { keys, values } => {
            for key in keys {
                consumers[key.node] += 1;
            }
            consumers[values.node] += 1;
        }
    }
    consumers
}

/// Validate one fused region against the plan it was derived from.
pub(crate) fn verify_region(
    plan: &QueryPlan,
    consumers: &[usize],
    region: &FusedRegion,
) -> Result<(), PlanError> {
    let node_count = plan.nodes.len();
    let members = &region.members;
    let malformed = members.len() < 2
        || members.windows(2).any(|w| w[0] >= w[1])
        || members.iter().any(|&m| m >= node_count)
        || members.last() != Some(&region.root);
    if malformed {
        return Err(PlanError::FusionRootMismatch { root: region.root });
    }
    for &member in members {
        if member != region.root {
            if !interior_eligible(&plan.nodes[member].op) {
                return Err(PlanError::FusionIneligibleInterior { node: member });
            }
            if consumers[member] != 1 {
                return Err(PlanError::FusionMultiConsumerInterior {
                    node: member,
                    consumers: consumers[member],
                });
            }
        }
        for input in streamed_inputs(&plan.nodes[member].op) {
            if !members.contains(&input.node) && input != region.driver {
                return Err(PlanError::FusionMultipleDrivers { root: region.root });
            }
        }
        if let PlanOp::Project { data, .. } = plan.nodes[member].op {
            if members.contains(&data.node) {
                return Err(PlanError::FusionProjectDataInterior { node: member });
            }
        }
    }
    Ok(())
}

/// Validate every region of a fusion analysis against `plan`.
///
/// The executors run this (under `debug_assertions`) against the region
/// set they are *about to execute* — which may be a demoted subset of the
/// full analysis when the plan cache already holds whole regions.
pub(crate) fn verify_fusion(plan: &QueryPlan, fusion: &FusionPlan) -> Result<(), PlanError> {
    let consumers = consumer_counts(plan);
    for region in fusion.regions() {
        verify_region(plan, &consumers, region)?;
    }
    Ok(())
}

/// Verify the structural invariants of `plan`: topological order
/// (acyclicity), operator arity and port legality, grouping-handle
/// targets, intermediate-name uniqueness, output well-formedness,
/// morsel-partition safety, statically illegal `morph` targets, and the
/// legality of every fusion region the analysis would detect.
///
/// Returns the first defect found as a structured [`PlanError`]; a plan
/// constructed through [`crate::plan::PlanBuilder`] always verifies clean.
pub fn verify(plan: &QueryPlan) -> Result<(), PlanError> {
    verify_structure(plan)?;
    verify_fusion(plan, &FusionPlan::analyze(plan))
}

/// [`verify`], plus per-edge format legality: every edge's format under
/// `formats` must be encodable (static bit widths in `1..=64`).
pub fn verify_with_formats(plan: &QueryPlan, formats: &FormatConfig) -> Result<(), PlanError> {
    verify(plan)?;
    for edge in plan.edges() {
        let format = formats.format_for(&edge.name, Format::Uncompressed);
        check_format(&edge.name, format)?;
    }
    Ok(())
}

/// Panic with a readable diagnostic when `plan` fails verification — the
/// `debug_assertions` entry point of the executors.
#[cfg(debug_assertions)]
pub(crate) fn assert_verified(plan: &QueryPlan) {
    if let Err(err) = verify(plan) {
        panic!("plan {:?} failed static verification: {err}", plan.label());
    }
}

/// Panic when the region set an executor is about to run fails
/// verification — the `debug_assertions` fusion cross-check.
#[cfg(debug_assertions)]
pub(crate) fn assert_fusion_verified(plan: &QueryPlan, fusion: &FusionPlan) {
    if let Err(err) = verify_fusion(plan, fusion) {
        panic!(
            "plan {:?} failed fusion-region verification: {err}",
            plan.label()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ColRef, GroupRef, PlanBuilder, PlanOutputs, ScalarRef};
    use crate::{BinaryOp, CmpOp};

    fn col(node: usize, port: u8) -> ColRef {
        ColRef { node, port }
    }

    /// scan -> select -> project -> agg_sum (a fusible scalar plan).
    fn scalar_plan() -> QueryPlan {
        let mut b = PlanBuilder::new("t");
        let data = b.scan("x");
        let sel = b.select("sel", data, CmpOp::Lt, 10);
        let proj = b.project("proj", data, sel);
        let total = b.agg_sum("total", proj);
        b.finish_scalar(total)
    }

    /// A grouped plan with group_by + agg_sum_grouped.
    fn grouped_plan() -> QueryPlan {
        let mut b = PlanBuilder::new("g");
        let keys = b.scan("k");
        let vals = b.scan("v");
        let group = b.group_by("grp", keys);
        let sums = b.agg_sum_grouped("sums", group, vals);
        b.finish_grouped(vec![group.ids()], sums)
    }

    #[test]
    fn builder_plans_verify_clean() {
        assert_eq!(verify(&scalar_plan()), Ok(()));
        assert_eq!(verify(&grouped_plan()), Ok(()));
        assert_eq!(
            verify_with_formats(&scalar_plan(), &FormatConfig::uncompressed()),
            Ok(())
        );
    }

    #[test]
    fn forward_reference_is_a_cycle() {
        let mut plan = scalar_plan();
        // Point the select at the (later) project: a 1-edge cycle through
        // the node list.
        plan.nodes[1].op = PlanOp::Select {
            input: col(2, 0),
            op: CmpOp::Lt,
            constant: 10,
        };
        assert_eq!(
            verify(&plan),
            Err(PlanError::ForwardReference { node: 1, input: 2 })
        );
    }

    #[test]
    fn self_reference_is_a_cycle() {
        let mut plan = scalar_plan();
        plan.nodes[1].op = PlanOp::Select {
            input: col(1, 0),
            op: CmpOp::Lt,
            constant: 10,
        };
        assert_eq!(
            verify(&plan),
            Err(PlanError::ForwardReference { node: 1, input: 1 })
        );
    }

    #[test]
    fn ports_are_checked_against_the_producer() {
        let mut plan = scalar_plan();
        // A scan has no port 1.
        plan.nodes[2].op = PlanOp::Project {
            data: col(0, 1),
            positions: col(1, 0),
        };
        assert_eq!(
            verify(&plan),
            Err(PlanError::InvalidPort {
                node: 2,
                producer: 0,
                port: 1
            })
        );
    }

    #[test]
    fn scalar_nodes_cannot_be_consumed_as_columns() {
        let mut b = PlanBuilder::new("t");
        let x = b.scan("x");
        let _total = b.agg_sum("total", x);
        let y = b.scan("y");
        let total2 = b.agg_sum("total2", y);
        let mut plan = b.finish_scalar(total2);
        // Point the second aggregation at the first one's scalar.
        plan.nodes[3].op = PlanOp::AggSum { values: col(1, 0) };
        assert_eq!(
            verify(&plan),
            Err(PlanError::ScalarAsColumn {
                node: 3,
                producer: 1
            })
        );
    }

    #[test]
    fn grouping_handles_must_point_at_groupings() {
        let mut plan = grouped_plan();
        plan.nodes[3].op = PlanOp::AggSumGrouped {
            group: GroupRef { node: 0 },
            values: col(1, 0),
        };
        assert_eq!(
            verify(&plan),
            Err(PlanError::NotAGrouping { node: 3, target: 0 })
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut plan = scalar_plan();
        plan.nodes[2].name = "sel".to_string();
        assert_eq!(
            verify(&plan),
            Err(PlanError::DuplicateName {
                name: "sel".to_string()
            })
        );
    }

    #[test]
    fn outputs_are_range_and_kind_checked() {
        let mut plan = scalar_plan();
        plan.outputs = PlanOutputs::Scalar(ScalarRef { node: 99 });
        assert_eq!(verify(&plan), Err(PlanError::OutputOutOfRange { node: 99 }));

        let mut plan = scalar_plan();
        plan.outputs = PlanOutputs::Scalar(ScalarRef { node: 2 });
        assert_eq!(verify(&plan), Err(PlanError::OutputNotScalar { node: 2 }));

        let mut plan = grouped_plan();
        plan.outputs = PlanOutputs::Grouped {
            keys: vec![col(2, 2)],
            values: col(3, 0),
        };
        assert_eq!(
            verify(&plan),
            Err(PlanError::OutputNotColumn { node: 2, port: 2 })
        );
    }

    #[test]
    fn illegal_morph_targets_are_rejected() {
        let mut b = PlanBuilder::new("t");
        let x = b.scan("x");
        let m = b.morph("m", x, Format::StaticBp(8));
        let total = b.agg_sum("total", m);
        let mut plan = b.finish_scalar(total);
        assert_eq!(verify(&plan), Ok(()));
        plan.nodes[1].op = PlanOp::Morph {
            input: col(0, 0),
            target: Format::StaticBp(0),
        };
        assert!(matches!(
            verify(&plan),
            Err(PlanError::IllegalEdgeFormat { .. })
        ));
    }

    #[test]
    fn illegal_configured_formats_are_rejected() {
        let plan = scalar_plan();
        let formats = FormatConfig::uncompressed().set("t/sel", Format::StaticBp(65));
        let err = verify_with_formats(&plan, &formats).unwrap_err();
        assert!(matches!(
            err,
            PlanError::IllegalEdgeFormat {
                format: Format::StaticBp(65),
                ..
            }
        ));
    }

    #[test]
    fn analyzed_regions_verify_clean() {
        let plan = scalar_plan();
        let fusion = FusionPlan::analyze(&plan);
        assert!(fusion.region_count() > 0, "test plan should fuse");
        assert_eq!(verify_fusion(&plan, &fusion), Ok(()));
    }

    #[test]
    fn multi_consumer_interiors_are_rejected() {
        // Two projects gather through the same select: the select has two
        // consumers and must not be fused as an interior.
        let mut b = PlanBuilder::new("t");
        let data = b.scan("x");
        let sel = b.select("sel", data, CmpOp::Lt, 10);
        let p1 = b.project("p1", data, sel);
        let p2 = b.project("p2", data, sel);
        let c = b.calc_binary("c", BinaryOp::Add, p1, p2);
        let total = b.agg_sum("total", c);
        let plan = b.finish_scalar(total);

        // The analysis itself refuses to absorb the select.
        let fusion = FusionPlan::analyze(&plan);
        assert_eq!(verify_fusion(&plan, &fusion), Ok(()));

        // A hand-built region that absorbs it anyway is rejected.
        let region = FusedRegion {
            members: vec![1, 2],
            root: 2,
            driver: col(0, 0),
            externals: vec![0],
            stages: vec![],
            prefix_independent: true,
        };
        let consumers = consumer_counts(&plan);
        assert_eq!(
            verify_region(&plan, &consumers, &region),
            Err(PlanError::FusionMultiConsumerInterior {
                node: 1,
                consumers: 2
            })
        );
    }

    #[test]
    fn regions_with_two_external_streams_are_rejected() {
        let mut b = PlanBuilder::new("t");
        let x = b.scan("x");
        let y = b.scan("y");
        let c = b.calc_binary("c", BinaryOp::Add, x, y);
        let total = b.agg_sum("total", c);
        let plan = b.finish_scalar(total);
        let region = FusedRegion {
            members: vec![2, 3],
            root: 3,
            driver: col(0, 0),
            externals: vec![0, 1],
            stages: vec![],
            prefix_independent: true,
        };
        let consumers = consumer_counts(&plan);
        assert_eq!(
            verify_region(&plan, &consumers, &region),
            Err(PlanError::FusionMultipleDrivers { root: 3 })
        );
    }

    #[test]
    fn ineligible_interiors_are_rejected() {
        let mut plan = scalar_plan();
        // Turn the interior select into a morph — not position-preserving
        // streamable in the fusion sense.
        plan.nodes[1].op = PlanOp::Morph {
            input: col(0, 0),
            target: Format::Rle,
        };
        let region = FusedRegion {
            members: vec![1, 3],
            root: 3,
            driver: col(0, 0),
            externals: vec![0],
            stages: vec![],
            prefix_independent: true,
        };
        let consumers = consumer_counts(&plan);
        assert_eq!(
            verify_region(&plan, &consumers, &region),
            Err(PlanError::FusionIneligibleInterior { node: 1 })
        );
    }

    #[test]
    fn project_data_inside_region_is_rejected() {
        let plan = scalar_plan();
        // Claim the project gathers from the select (its region-mate),
        // streaming positions from the driver so the select keeps exactly
        // one consumer.
        let mut bad = plan.clone();
        bad.nodes[2].op = PlanOp::Project {
            data: col(1, 0),
            positions: col(0, 0),
        };
        let region = FusedRegion {
            members: vec![1, 2, 3],
            root: 3,
            driver: col(0, 0),
            externals: vec![0],
            stages: vec![],
            prefix_independent: true,
        };
        let consumers = consumer_counts(&bad);
        assert_eq!(
            verify_region(&bad, &consumers, &region),
            Err(PlanError::FusionProjectDataInterior { node: 2 })
        );
    }

    #[test]
    fn malformed_member_lists_are_rejected() {
        let plan = scalar_plan();
        let consumers = consumer_counts(&plan);
        for members in [vec![3], vec![2, 1, 3], vec![1, 99]] {
            let region = FusedRegion {
                root: *members.last().unwrap_or(&0),
                members,
                driver: col(0, 0),
                externals: vec![0],
                stages: vec![],
                prefix_independent: true,
            };
            assert!(matches!(
                verify_region(&plan, &consumers, &region),
                Err(PlanError::FusionRootMismatch { .. })
            ));
        }
    }

    #[test]
    fn error_display_is_informative() {
        let errors: Vec<PlanError> = vec![
            PlanError::EmptyPlan,
            PlanError::ForwardReference { node: 1, input: 2 },
            PlanError::InvalidPort {
                node: 1,
                producer: 0,
                port: 1,
            },
            PlanError::ScalarAsColumn {
                node: 2,
                producer: 1,
            },
            PlanError::NotAGrouping { node: 3, target: 0 },
            PlanError::DuplicateName {
                name: "sel".to_string(),
            },
            PlanError::OutputOutOfRange { node: 9 },
            PlanError::OutputNotScalar { node: 2 },
            PlanError::OutputNotColumn { node: 2, port: 2 },
            PlanError::IllegalEdgeFormat {
                edge: "t/sel".to_string(),
                format: Format::StaticBp(0),
                reason: "static bit width must be in 1..=64",
            },
            PlanError::MorselInputMismatch { node: 2 },
            PlanError::FusionRootMismatch { root: 3 },
            PlanError::FusionIneligibleInterior { node: 1 },
            PlanError::FusionMultiConsumerInterior {
                node: 1,
                consumers: 2,
            },
            PlanError::FusionMultipleDrivers { root: 3 },
            PlanError::FusionProjectDataInterior { node: 2 },
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Build a random-but-valid chain plan: scan, then a sequence of
        /// unary stages, finished by a scalar aggregation.
        fn chain_plan(stages: &[u8]) -> QueryPlan {
            let mut b = PlanBuilder::new("p");
            let data = b.scan("x");
            let mut last = data;
            for (i, &kind) in stages.iter().enumerate() {
                let name = format!("s{i}");
                last = match kind % 4 {
                    0 => b.select(&name, last, CmpOp::Lt, 1 + kind as u64),
                    1 => b.select_between(&name, last, 2, 2 + kind as u64),
                    2 => b.project(&name, data, last),
                    _ => b.calc_binary(&name, BinaryOp::Add, last, last),
                };
            }
            let total = b.agg_sum("total", last);
            b.finish_scalar(total)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Every builder-constructed chain verifies clean, and its
            // fusion analysis passes region verification.
            #[test]
            fn builder_chains_verify_clean(stages in proptest::collection::vec(0u8..8, 0..6)) {
                let plan = chain_plan(&stages);
                prop_assert_eq!(verify(&plan), Ok(()));
                let fusion = FusionPlan::analyze(&plan);
                prop_assert_eq!(verify_fusion(&plan, &fusion), Ok(()));
            }

            // Rewiring any non-scan node's first input to a forward edge
            // is always rejected as a topological-order violation.
            #[test]
            fn forward_rewires_are_rejected(
                stages in proptest::collection::vec(0u8..8, 1..6),
                pick in 0usize..8,
            ) {
                let mut plan = chain_plan(&stages);
                let node_count = plan.nodes.len();
                let victim = 1 + pick % (node_count - 1);
                // A self edge or the next node forward (possibly one past
                // the end) — both are topological-order violations.
                let bad = col(victim + pick % 2, 0);
                plan.nodes[victim].op = match plan.nodes[victim].op.clone() {
                    PlanOp::Select { op, constant, .. } => PlanOp::Select { input: bad, op, constant },
                    PlanOp::SelectBetween { low, high, .. } => PlanOp::SelectBetween { input: bad, low, high },
                    PlanOp::Project { data, .. } => PlanOp::Project { data, positions: bad },
                    PlanOp::CalcBinary { op, rhs, .. } => PlanOp::CalcBinary { op, lhs: bad, rhs },
                    PlanOp::AggSum { .. } => PlanOp::AggSum { values: bad },
                    other => other,
                };
                prop_assert_eq!(
                    verify(&plan),
                    Err(PlanError::ForwardReference { node: victim, input: bad.node })
                );
            }
        }
    }
}
