//! The physical query operators of the engine.
//!
//! The operator set is the one needed to execute the Star Schema Benchmark
//! (Section 4.2 of the paper); all operators are "strongly inspired by those
//! of MonetDB" and work on headless columns (mere sequences of unsigned
//! integers).  Every operator follows the three-layer architecture of
//! Figure 4:
//!
//! * the **column layer** is the public operator function, which handles the
//!   split of each column into a compressed main part and an uncompressed
//!   remainder (this is hidden inside [`morph_storage::Column::for_each_chunk`]
//!   and [`morph_storage::ColumnBuilder`]),
//! * the **buffer layer** is the pair of `for_each_chunk` (input side,
//!   decompression into cache-resident chunks) and `ColumnBuilder` (output
//!   side, recompression of a cache-resident buffer),
//! * the **vector register layer** is the operator core, a kernel from
//!   [`morph_vector::kernels`] monomorphised for scalar or vectorized
//!   processing.

pub mod agg;
pub mod calc;
pub mod group;
pub mod join;
pub mod merge;
pub mod morph_op;
pub mod partitioned;
pub mod project;
pub mod select;

use morph_compression::ChunkCursor;
use morph_storage::Column;

/// Peak-size accounting for the *transient* carry buffers of the pairwise
/// operators — the buffers that pair two compressed inputs position-wise
/// and are never materialised as plan intermediates.
///
/// Since the pull-based chunk cursors replaced the old
/// decompress-one-side-fully pairing, every carry buffer is bounded by one
/// decoded chunk ([`morph_compression::CACHE_BUFFER_ELEMENTS`] values);
/// this module records the high-water mark so the bench harness
/// (`parallel_speedup` → `BENCH_ssb.json`) and a CI test can assert the
/// O(chunk) bound instead of trusting it.
pub mod transient {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Upper bound, in bytes, of one pairwise carry buffer: one decoded
    /// chunk of `u64` values.
    pub const CARRY_BOUND_BYTES: usize = morph_compression::CACHE_BUFFER_ELEMENTS * 8;

    static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

    /// Record a carry buffer's capacity; keeps the maximum ever seen since
    /// the last [`reset`].
    ///
    /// The buffer is also charged to the **current query's**
    /// [`QueryGovernor`](crate::govern::QueryGovernor), when one is
    /// registered: memory verdicts are per query, so a concurrent tenant's
    /// spike cannot trip another query's budget.  The process-global peak
    /// below remains for the single-threaded bench harness
    /// (`pairwise_peak_transient_bytes`) and the CI bound test.
    pub(crate) fn record(bytes: usize) {
        PEAK_BYTES.fetch_max(bytes, Ordering::Relaxed);
        crate::govern::charge_transient(bytes);
    }

    /// The largest pairwise carry buffer (in bytes) observed since the last
    /// [`reset`], across all threads.
    pub fn peak_bytes() -> usize {
        PEAK_BYTES.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to zero.
    pub fn reset() {
        PEAK_BYTES.store(0, Ordering::Relaxed);
    }
}

/// The outcome of one [`PullSide::merge_step`] of a sorted merge-walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MergeStep {
    /// The probed value occurs in the pulled stream (and was consumed).
    Matched,
    /// The pulled stream's next value exceeds the probed value.
    Absent,
    /// The pulled stream ended before reaching the probed value.
    Exhausted,
}

/// A pull side of a pairwise pairing: a chunk cursor whose current chunk is
/// the carry, served in aligned pieces at the pace of the other (pushed)
/// input.  No bytes are copied — `peek` re-borrows the cursor's resident
/// decode buffer via [`ChunkCursor::last_chunk`] — and the carry is bounded
/// by one decoded chunk by construction.
pub(crate) struct PullSide<'a> {
    cursor: morph_storage::ColumnCursor<'a>,
    /// Unserved prefix start within the current chunk.
    off: usize,
    /// Length of the current chunk (0 before the first decode).
    len: usize,
    /// Largest chunk seen, for the [`transient`] high-water mark.
    max_len: usize,
}

impl<'a> PullSide<'a> {
    pub(crate) fn new(cursor: morph_storage::ColumnCursor<'a>) -> PullSide<'a> {
        PullSide {
            cursor,
            off: 0,
            len: 0,
            max_len: 0,
        }
    }

    /// Ensure the current chunk holds at least one unserved value; returns
    /// `false` when the stream has ended.
    fn refill(&mut self) -> bool {
        if self.off < self.len {
            return true;
        }
        match self.cursor.next_chunk() {
            Some(piece) => {
                crate::govern::checkpoint_chunk();
                self.off = 0;
                self.len = piece.len();
                self.max_len = self.max_len.max(self.len);
                true
            }
            None => false,
        }
    }

    /// The unserved values of the current chunk (refilling first); empty
    /// exactly when the stream has ended.
    pub(crate) fn peek(&mut self) -> &[u64] {
        if self.refill() {
            &self.cursor.last_chunk()[self.off..]
        } else {
            &[]
        }
    }

    /// Mark the first `n` unserved values as served.
    pub(crate) fn advance(&mut self, n: usize) {
        debug_assert!(self.off + n <= self.len);
        self.off += n;
    }

    /// One step of a sorted merge-walk against an ascending probe stream:
    /// skip every pulled value smaller than `value` (handing each to
    /// `emit_smaller` — a no-op closure for intersections), consume `value`
    /// itself if present, and report what happened.  The single copy of the
    /// carry-walk shared by the serial merges and the partitioned
    /// intersection, so they cannot drift apart.
    pub(crate) fn merge_step(
        &mut self,
        value: u64,
        mut emit_smaller: impl FnMut(u64),
    ) -> MergeStep {
        loop {
            let available = self.peek();
            if available.is_empty() {
                return MergeStep::Exhausted;
            }
            let carried = available.len();
            let smaller = available.partition_point(|&other| other < value);
            for &other in &available[..smaller] {
                emit_smaller(other);
            }
            let matched = available.get(smaller) == Some(&value);
            self.advance(smaller + usize::from(matched));
            if matched {
                return MergeStep::Matched;
            }
            if smaller < carried {
                return MergeStep::Absent;
            }
            // Chunk drained below `value`: pull the next one.
        }
    }

    /// Record the carry's high-water mark with [`transient`].  Called once
    /// per operator, after the pairing loop.
    pub(crate) fn finish(&self) {
        transient::record(self.max_len * 8);
    }
}

/// Iterate two equally long columns position-wise, invoking `f` with pairs of
/// equally long uncompressed chunks.
///
/// Both inputs stay compressed end to end: the first column is streamed
/// push-style (cache-resident, DP3-conforming) and the second is *pulled*
/// through its [`ChunkCursor`] into a carry buffer bounded by one chunk —
/// the streaming pairwise reader, so no transient full-column buffer exists
/// on either side.
///
/// # Panics
/// Panics if the inputs differ in logical length; the message names both
/// columns' lengths and formats so a plan-level failure is diagnosable.
pub(crate) fn zip_chunks(a: &Column, b: &Column, f: &mut dyn FnMut(&[u64], &[u64])) {
    assert!(
        a.logical_len() == b.logical_len(),
        "position-wise operators require equally long inputs: \
         lhs holds {} elements ({}), rhs holds {} elements ({})",
        a.logical_len(),
        a.format(),
        b.logical_len(),
        b.format(),
    );
    let mut pulled = PullSide::new(b.cursor());
    a.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        let mut done = 0usize;
        while done < chunk.len() {
            let available = pulled.peek();
            // A drained pull side here means the rhs decoded fewer values
            // than its logical length (corrupt directory / truncated main
            // part) — fail loudly with a structured payload, never spin.
            if available.is_empty() {
                std::panic::panic_any(morph_compression::DecodeError::CorruptHeader {
                    format: "pairwise",
                    detail: format!(
                        "rhs ({}) ended early: decoded fewer than {} values",
                        b.format(),
                        b.logical_len(),
                    ),
                });
            }
            let n = (chunk.len() - done).min(available.len());
            f(&chunk[done..done + n], &available[..n]);
            pulled.advance(n);
            done += n;
        }
    });
    pulled.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_compression::Format;

    #[test]
    fn zip_chunks_pairs_values_in_order() {
        let a_values: Vec<u64> = (0..5000).collect();
        let b_values: Vec<u64> = (0..5000).map(|i| i * 2).collect();
        let a = Column::compress(&a_values, &Format::DynBp);
        let b = Column::compress(&b_values, &Format::DeltaDynBp);
        let mut pairs = Vec::new();
        zip_chunks(&a, &b, &mut |ca, cb| {
            assert_eq!(ca.len(), cb.len());
            pairs.extend(ca.iter().zip(cb.iter()).map(|(&x, &y)| (x, y)));
        });
        assert_eq!(pairs.len(), 5000);
        assert!(pairs.iter().all(|&(x, y)| y == x * 2));
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn zip_chunks_rejects_length_mismatch() {
        let a = Column::from_slice(&[1, 2, 3]);
        let b = Column::from_slice(&[1, 2]);
        zip_chunks(&a, &b, &mut |_, _| {});
    }
}
