//! The physical query operators of the engine.
//!
//! The operator set is the one needed to execute the Star Schema Benchmark
//! (Section 4.2 of the paper); all operators are "strongly inspired by those
//! of MonetDB" and work on headless columns (mere sequences of unsigned
//! integers).  Every operator follows the three-layer architecture of
//! Figure 4:
//!
//! * the **column layer** is the public operator function, which handles the
//!   split of each column into a compressed main part and an uncompressed
//!   remainder (this is hidden inside [`morph_storage::Column::for_each_chunk`]
//!   and [`morph_storage::ColumnBuilder`]),
//! * the **buffer layer** is the pair of `for_each_chunk` (input side,
//!   decompression into cache-resident chunks) and `ColumnBuilder` (output
//!   side, recompression of a cache-resident buffer),
//! * the **vector register layer** is the operator core, a kernel from
//!   [`morph_vector::kernels`] monomorphised for scalar or vectorized
//!   processing.

pub mod agg;
pub mod calc;
pub mod group;
pub mod join;
pub mod merge;
pub mod morph_op;
pub mod partitioned;
pub mod project;
pub mod select;

use morph_storage::Column;

/// Iterate two equally long columns position-wise, invoking `f` with pairs of
/// equally long uncompressed chunks.
///
/// The first column is streamed chunk-wise (cache-resident, DP3-conforming);
/// the second column is currently decompressed once into a transient buffer
/// because two push-style block decoders cannot be interleaved on one thread.
/// The transient buffer is not an intermediate result of the query plan (it
/// is never materialised as a column), so the footprint accounting of the
/// evaluation is unaffected; a fully streaming pairwise reader is future
/// work and is called out in DESIGN.md.
pub(crate) fn zip_chunks(a: &Column, b: &Column, f: &mut dyn FnMut(&[u64], &[u64])) {
    assert_eq!(
        a.logical_len(),
        b.logical_len(),
        "position-wise operators require equally long inputs"
    );
    let b_values = b.decompress();
    let mut offset = 0usize;
    a.for_each_chunk(&mut |chunk| {
        f(chunk, &b_values[offset..offset + chunk.len()]);
        offset += chunk.len();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_compression::Format;

    #[test]
    fn zip_chunks_pairs_values_in_order() {
        let a_values: Vec<u64> = (0..5000).collect();
        let b_values: Vec<u64> = (0..5000).map(|i| i * 2).collect();
        let a = Column::compress(&a_values, &Format::DynBp);
        let b = Column::compress(&b_values, &Format::DeltaDynBp);
        let mut pairs = Vec::new();
        zip_chunks(&a, &b, &mut |ca, cb| {
            assert_eq!(ca.len(), cb.len());
            pairs.extend(ca.iter().zip(cb.iter()).map(|(&x, &y)| (x, y)));
        });
        assert_eq!(pairs.len(), 5000);
        assert!(pairs.iter().all(|&(x, y)| y == x * 2));
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn zip_chunks_rejects_length_mismatch() {
        let a = Column::from_slice(&[1, 2, 3]);
        let b = Column::from_slice(&[1, 2]);
        zip_chunks(&a, &b, &mut |_, _| {});
    }
}
