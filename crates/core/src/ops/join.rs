//! Join operators: hash equi-join and semi-join.
//!
//! The SSB queries are star joins: the (filtered) dimension tables are joined
//! to the fact table via foreign keys.  In the operator-at-a-time model these
//! joins consume key columns and produce position columns:
//!
//! * [`join`] returns, for every match, the position in the probe column and
//!   the position in the build column (MonetDB-style join producing two
//!   aligned position lists),
//! * [`semi_join`] returns only the probe positions that have at least one
//!   match — which is all the SSB plans need when a dimension is used purely
//!   as a filter.
//!
//! The hash table is always built on the *build* (second) input, which in a
//! star join is the filtered dimension-key column and therefore small; the
//! probe side is streamed chunk-wise, so the fact-table key column is never
//! materialised uncompressed (DP3).  Keys are compared by value, which is
//! correct for dictionary-encoded data because MorphStore assumes "an
//! individual dictionary per domain" (Section 3.1): both join sides of an SSB
//! join refer to the same key domain.

use std::collections::HashMap;

use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};

use crate::exec::{ExecSettings, IntegrationDegree};

/// Hash equi-join of two key columns.
///
/// Returns `(probe_positions, build_positions)`: for every pair `(i, j)` with
/// `probe[i] == build[j]`, position `i` is appended to the first output and
/// `j` to the second, in probe order.  `out_formats` are the formats of the
/// two output columns (ignored for the purely uncompressed degree).
pub fn join(
    probe: &Column,
    build: &Column,
    out_formats: (&Format, &Format),
    settings: &ExecSettings,
) -> (Column, Column) {
    // Build phase: value -> positions in the build column.
    let mut table: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut build_pos = 0u64;
    build.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        for &value in chunk {
            table.entry(value).or_default().push(build_pos);
            build_pos += 1;
        }
    });
    // Probe phase.
    let uncompressed = settings.degree == IntegrationDegree::PurelyUncompressed;
    let mut probe_out = OutCol::new(*out_formats.0, uncompressed);
    let mut build_out = OutCol::new(*out_formats.1, uncompressed);
    let mut probe_pos = 0u64;
    probe.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        for &value in chunk {
            if let Some(matches) = table.get(&value) {
                for &b in matches {
                    probe_out.push(probe_pos);
                    build_out.push(b);
                }
            }
            probe_pos += 1;
        }
    });
    (probe_out.finish(), build_out.finish())
}

/// Semi-join: the positions of `probe` whose value occurs in `build`.
pub fn semi_join(
    probe: &Column,
    build: &Column,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    // Shared with the morsel path, which must build the identical set.
    let set = crate::ops::partitioned::build_semi_join_set(build);
    let uncompressed = settings.degree == IntegrationDegree::PurelyUncompressed;
    let mut out = OutCol::new(*out_format, uncompressed);
    let mut pos = 0u64;
    probe.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        for &value in chunk {
            if set.contains(&value) {
                out.push(pos);
            }
            pos += 1;
        }
    });
    out.finish()
}

/// Small helper unifying "collect uncompressed" and "recompress on the fly"
/// output sides.
enum OutCol {
    Plain(Vec<u64>),
    Compressed(ColumnBuilder),
}

impl OutCol {
    fn new(format: Format, uncompressed: bool) -> OutCol {
        if uncompressed {
            OutCol::Plain(Vec::new())
        } else {
            OutCol::Compressed(ColumnBuilder::new(format))
        }
    }

    #[inline]
    fn push(&mut self, value: u64) {
        match self {
            OutCol::Plain(v) => v.push(value),
            OutCol::Compressed(b) => b.push(value),
        }
    }

    fn finish(self) -> Column {
        match self {
            OutCol::Plain(v) => Column::from_vec(v),
            OutCol::Compressed(b) => b.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_to_one_join_matches_reference() {
        // Fact foreign keys probe a dimension primary-key column.
        let dim_keys: Vec<u64> = (0..100).collect();
        let fact_fk: Vec<u64> = (0..5000u64).map(|i| (i * 37) % 100).collect();
        let probe = Column::compress(&fact_fk, &Format::DynBp);
        let build = Column::compress(&dim_keys, &Format::StaticBp(7));
        let (probe_pos, build_pos) = join(
            &probe,
            &build,
            (&Format::DeltaDynBp, &Format::DynBp),
            &ExecSettings::default(),
        );
        assert_eq!(probe_pos.logical_len(), 5000);
        assert_eq!(build_pos.logical_len(), 5000);
        let p = probe_pos.decompress();
        let b = build_pos.decompress();
        assert_eq!(p, (0..5000u64).collect::<Vec<_>>());
        for i in 0..5000usize {
            assert_eq!(dim_keys[b[i] as usize], fact_fk[p[i] as usize]);
        }
    }

    #[test]
    fn join_with_partial_matches() {
        let probe = Column::from_slice(&[1, 5, 9, 5, 100]);
        let build = Column::from_slice(&[5, 7, 9]);
        let (p, b) = join(
            &probe,
            &build,
            (&Format::Uncompressed, &Format::Uncompressed),
            &ExecSettings::default(),
        );
        assert_eq!(p.decompress(), vec![1, 2, 3]);
        assert_eq!(b.decompress(), vec![0, 2, 0]);
    }

    #[test]
    fn n_to_m_join_produces_all_pairs() {
        let probe = Column::from_slice(&[7, 8]);
        let build = Column::from_slice(&[7, 7, 8]);
        let (p, b) = join(
            &probe,
            &build,
            (&Format::Uncompressed, &Format::Uncompressed),
            &ExecSettings::default(),
        );
        assert_eq!(p.decompress(), vec![0, 0, 1]);
        assert_eq!(b.decompress(), vec![0, 1, 2]);
    }

    #[test]
    fn join_output_formats_are_respected() {
        let probe = Column::compress(
            &(0..3000u64).map(|i| i % 50).collect::<Vec<_>>(),
            &Format::DynBp,
        );
        let build = Column::from_slice(&(0..50).collect::<Vec<u64>>());
        let (p, b) = join(
            &probe,
            &build,
            (&Format::DeltaDynBp, &Format::StaticBp(6)),
            &ExecSettings::default(),
        );
        assert_eq!(p.format(), &Format::DeltaDynBp);
        assert_eq!(b.format(), &Format::StaticBp(6));
        let (p_plain, _) = join(
            &probe,
            &build,
            (&Format::DeltaDynBp, &Format::StaticBp(6)),
            &ExecSettings::scalar_uncompressed(),
        );
        assert_eq!(p_plain.format(), &Format::Uncompressed);
    }

    #[test]
    fn semi_join_matches_reference_for_all_formats() {
        let probe_values: Vec<u64> = (0..8000u64).map(|i| i % 997).collect();
        let build_values: Vec<u64> = (0..200u64).map(|i| i * 5).collect();
        let build_set: std::collections::HashSet<u64> = build_values.iter().copied().collect();
        let expected: Vec<u64> = probe_values
            .iter()
            .enumerate()
            .filter(|(_, v)| build_set.contains(v))
            .map(|(i, _)| i as u64)
            .collect();
        for probe_format in [Format::Uncompressed, Format::DynBp, Format::Dict] {
            let probe = Column::compress(&probe_values, &probe_format);
            let build = Column::compress(&build_values, &Format::StaticBp(10));
            let out = semi_join(
                &probe,
                &build,
                &Format::DeltaDynBp,
                &ExecSettings::default(),
            );
            assert_eq!(out.decompress(), expected, "probe {probe_format}");
        }
    }

    #[test]
    fn semi_join_with_no_matches_and_empty_inputs() {
        let probe = Column::from_slice(&[1, 2, 3]);
        let build = Column::from_slice(&[9, 10]);
        assert!(semi_join(
            &probe,
            &build,
            &Format::Uncompressed,
            &ExecSettings::default()
        )
        .is_empty());
        let empty = Column::from_slice(&[]);
        assert!(semi_join(
            &empty,
            &build,
            &Format::Uncompressed,
            &ExecSettings::default()
        )
        .is_empty());
        let (p, b) = join(
            &empty,
            &build,
            (&Format::Uncompressed, &Format::Uncompressed),
            &ExecSettings::default(),
        );
        assert!(p.is_empty());
        assert!(b.is_empty());
    }
}
