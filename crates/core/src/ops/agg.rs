//! Aggregation operators: whole-column and grouped summation, and the
//! whole-column maximum (used internally for width discovery).
//!
//! Summation is the aggregation the SSB queries need (`SUM(lo_revenue)`,
//! `SUM(lo_extendedprice * lo_discount)`, …).  For RLE-compressed inputs a
//! specialized kernel sums `value * run_length` products directly on the
//! compressed data, as sketched by Abadi et al. and cited in Section 2.2 of
//! the paper.

use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};
use morph_vector::emu::V512;
use morph_vector::kernels;
use morph_vector::scalar::Scalar;
use morph_vector::ProcessingStyle;

use crate::exec::{ExecSettings, IntegrationDegree};
use crate::ops::zip_chunks;
use crate::specialized;

/// Wrapping sum of one uncompressed chunk, per processing style.
#[inline]
pub(crate) fn sum_chunk(style: ProcessingStyle, chunk: &[u64]) -> u64 {
    match style {
        ProcessingStyle::Scalar => kernels::sum::<Scalar>(chunk),
        ProcessingStyle::Vectorized => kernels::sum::<V512>(chunk),
    }
}

/// Sum of all values of `input` (wrapping 64-bit arithmetic).
///
/// With the specialized degree, an RLE input is summed directly on the runs
/// and a static-BP input directly on the packed bit stream
/// ([`specialized::agg_sum_on_static_bp`]); any other format falls back to
/// on-the-fly decompression.  With the morphing degree the input is morphed
/// to RLE first so the run-based kernel applies irrespective of the format.
pub fn agg_sum(input: &Column, settings: &ExecSettings) -> u64 {
    match settings.degree {
        IntegrationDegree::Specialized if input.format() == &Format::Rle => {
            specialized::sum_on_rle(input)
        }
        IntegrationDegree::Specialized if matches!(input.format(), Format::StaticBp(_)) => {
            specialized::agg_sum_on_static_bp(input)
        }
        IntegrationDegree::OnTheFlyMorphing => {
            let morphed = input.to_format(&Format::Rle);
            specialized::sum_on_rle(&morphed)
        }
        _ => {
            let mut total = 0u64;
            input.for_each_chunk(&mut |chunk| {
                crate::govern::checkpoint_chunk();
                total = total.wrapping_add(sum_chunk(settings.style, chunk));
            });
            total
        }
    }
}

/// Maximum of all values of `input` (0 for an empty column).
pub fn agg_max(input: &Column, settings: &ExecSettings) -> u64 {
    let mut result = 0u64;
    input.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        let chunk_max = match settings.style {
            ProcessingStyle::Scalar => kernels::max::<Scalar>(chunk),
            ProcessingStyle::Vectorized => kernels::max::<V512>(chunk),
        };
        result = result.max(chunk_max);
    });
    result
}

/// Grouped summation: `sums[g] = Σ values[i] where group_ids[i] == g`.
///
/// `group_ids` must contain dense group identifiers in `0..group_count` (as
/// produced by [`crate::group_by`]).  The output column has `group_count`
/// elements and is materialised in `out_format`; the paper keeps final query
/// results uncompressed, but grouped sums can also be intermediates (e.g.
/// before a final projection), so the format is configurable.
pub fn agg_sum_grouped(
    group_ids: &Column,
    values: &Column,
    group_count: usize,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    let mut sums = vec![0u64; group_count];
    zip_chunks(group_ids, values, &mut |ids, vals| {
        for (&g, &v) in ids.iter().zip(vals.iter()) {
            sums[g as usize] = sums[g as usize].wrapping_add(v);
        }
    });
    match settings.degree {
        IntegrationDegree::PurelyUncompressed => Column::from_vec(sums),
        _ => {
            let mut builder = ColumnBuilder::new(*out_format);
            builder.push_slice(&sums);
            builder.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 7919) % 10_000).collect()
    }

    #[test]
    fn sum_matches_reference_for_all_formats_and_degrees() {
        let values = sample(6000);
        let expected: u64 = values.iter().sum();
        for format in Format::all_formats(9999) {
            let input = Column::compress(&values, &format);
            for degree in IntegrationDegree::all() {
                for style in [ProcessingStyle::Scalar, ProcessingStyle::Vectorized] {
                    let settings = ExecSettings {
                        style,
                        degree,
                        ..ExecSettings::default()
                    };
                    assert_eq!(
                        agg_sum(&input, &settings),
                        expected,
                        "format {format}, degree {degree:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sum_wraps_on_overflow() {
        let values = vec![u64::MAX, 5, u64::MAX, 3];
        let expected = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        let input = Column::from_slice(&values);
        assert_eq!(agg_sum(&input, &ExecSettings::default()), expected);
    }

    #[test]
    fn sum_of_empty_column_is_zero() {
        let input = Column::from_slice(&[]);
        assert_eq!(agg_sum(&input, &ExecSettings::default()), 0);
        assert_eq!(agg_max(&input, &ExecSettings::default()), 0);
    }

    #[test]
    fn max_matches_reference() {
        let values = sample(3000);
        let expected = *values.iter().max().unwrap();
        for format in [
            Format::Uncompressed,
            Format::DynBp,
            Format::Rle,
            Format::ForDynBp,
        ] {
            let input = Column::compress(&values, &format);
            assert_eq!(agg_max(&input, &ExecSettings::default()), expected);
            assert_eq!(
                agg_max(&input, &ExecSettings::scalar_uncompressed()),
                expected
            );
        }
    }

    #[test]
    fn grouped_sum_matches_reference() {
        let group_count = 7;
        let values = sample(5000);
        let ids: Vec<u64> = (0..5000u64).map(|i| i % group_count).collect();
        let mut expected = vec![0u64; group_count as usize];
        for (g, v) in ids.iter().zip(values.iter()) {
            expected[*g as usize] += v;
        }
        for format in [Format::Uncompressed, Format::StaticBp(3), Format::DynBp] {
            let group_ids = Column::compress(&ids, &format);
            let data = Column::compress(&values, &Format::DynBp);
            let sums = agg_sum_grouped(
                &group_ids,
                &data,
                group_count as usize,
                &Format::Uncompressed,
                &ExecSettings::default(),
            );
            assert_eq!(sums.decompress(), expected, "format {format}");
        }
    }

    #[test]
    fn grouped_sum_output_format() {
        let ids = Column::from_slice(&[0, 1, 0, 1, 2]);
        let vals = Column::from_slice(&[10, 20, 30, 40, 50]);
        let sums = agg_sum_grouped(&ids, &vals, 3, &Format::DynBp, &ExecSettings::default());
        assert_eq!(sums.format(), &Format::DynBp);
        assert_eq!(sums.decompress(), vec![40, 60, 50]);
        let plain = agg_sum_grouped(
            &ids,
            &vals,
            3,
            &Format::DynBp,
            &ExecSettings::scalar_uncompressed(),
        );
        assert_eq!(plain.format(), &Format::Uncompressed);
    }

    #[test]
    fn grouped_sum_with_empty_groups() {
        let ids = Column::from_slice(&[0, 3]);
        let vals = Column::from_slice(&[5, 9]);
        let sums = agg_sum_grouped(
            &ids,
            &vals,
            5,
            &Format::Uncompressed,
            &ExecSettings::default(),
        );
        assert_eq!(sums.decompress(), vec![5, 0, 0, 9, 0]);
    }
}
