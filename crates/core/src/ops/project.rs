//! The project operator: gather the values of a data column at a list of
//! positions.
//!
//! Project is the operator that "requires random read access to compressed
//! data, because [it] is used to transfer the result of a selection on one
//! column to another column" (Section 4.2).  MorphStore restricts random
//! access to uncompressed data and static bit packing; if the data column is
//! held in another format, this implementation morphs it to a random-access
//! format first (an instance of on-the-fly morphing), mirroring that
//! restriction.

use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};

use crate::exec::{ExecSettings, IntegrationDegree};
use crate::ops::agg::agg_max;
use crate::specialized;

/// Ensure `data` supports random access, morphing it to static BP when it
/// does not.  Returns either a borrowed or a morphed column.
fn with_random_access(data: &Column) -> std::borrow::Cow<'_, Column> {
    match ensure_random_access(data) {
        None => std::borrow::Cow::Borrowed(data),
        Some(morphed) => std::borrow::Cow::Owned(morphed),
    }
}

/// The morph a project must apply before random-accessing `data`:
/// `Some(static BP copy)` when the format does not support random access,
/// `None` when `data` can be gathered from directly.
///
/// Exposed to the morsel scheduler so the (serial) morph happens once per
/// operator, before the gather fans out across workers.
pub(crate) fn ensure_random_access(data: &Column) -> Option<Column> {
    if data.supports_random_access() {
        None
    } else {
        let max = agg_max(data, &ExecSettings::default());
        Some(data.to_format(&Format::static_bp_for_max(max)))
    }
}

/// Gather `data[position]` for every position in `positions` (in order),
/// materialising the output in `out_format`.
///
/// With the specialized degree, a static-BP data column is gathered straight
/// off the packed bit stream ([`specialized::project_on_static_bp`]); any
/// other format keeps the general path (morph to a random-access format if
/// needed, then per-element access).
///
/// # Panics
/// Panics if a position is out of bounds for `data`.
pub fn project(
    data: &Column,
    positions: &Column,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    if settings.degree == IntegrationDegree::Specialized
        && matches!(data.format(), Format::StaticBp(_))
    {
        return specialized::project_on_static_bp(data, positions, out_format);
    }
    let data = with_random_access(data);
    let gather = |chunk: &[u64], out: &mut Vec<u64>| {
        for &position in chunk {
            let value = data
                .get(position as usize)
                .unwrap_or_else(|| panic!("project: position {position} out of bounds"));
            out.push(value);
        }
    };
    match settings.degree {
        IntegrationDegree::PurelyUncompressed => {
            let mut values = Vec::with_capacity(positions.logical_len());
            positions.for_each_chunk(&mut |chunk| {
                crate::govern::checkpoint_chunk();
                gather(chunk, &mut values);
            });
            Column::from_vec(values)
        }
        _ => {
            let mut builder = ColumnBuilder::new(*out_format);
            let mut scratch: Vec<u64> = Vec::new();
            positions.for_each_chunk(&mut |chunk| {
                crate::govern::checkpoint_chunk();
                scratch.clear();
                gather(chunk, &mut scratch);
                builder.push_slice(&scratch);
            });
            builder.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 37) % 2048).collect()
    }

    #[test]
    fn project_matches_reference_for_all_formats() {
        let data_values = sample(6000);
        let position_values: Vec<u64> = (0..6000u64).filter(|p| p % 3 == 0).collect();
        let expected: Vec<u64> = position_values
            .iter()
            .map(|&p| data_values[p as usize])
            .collect();
        for data_format in Format::all_formats(2047) {
            let data = Column::compress(&data_values, &data_format);
            for pos_format in [
                Format::Uncompressed,
                Format::DeltaDynBp,
                Format::StaticBp(13),
            ] {
                let positions = Column::compress(&position_values, &pos_format);
                let out = project(&data, &positions, &Format::DynBp, &ExecSettings::default());
                assert_eq!(
                    out.decompress(),
                    expected,
                    "data {data_format}, positions {pos_format}"
                );
            }
        }
    }

    #[test]
    fn project_output_format_is_respected() {
        let data = Column::compress(&sample(1000), &Format::StaticBp(11));
        let positions = Column::from_slice(&[0, 10, 999, 500, 500]);
        for out_format in Format::all_formats(2047) {
            let out = project(&data, &positions, &out_format, &ExecSettings::default());
            assert_eq!(out.format(), &out_format);
            assert_eq!(out.logical_len(), 5);
        }
    }

    #[test]
    fn project_preserves_position_order_and_duplicates() {
        let data = Column::from_slice(&[10, 20, 30, 40]);
        let positions = Column::from_slice(&[3, 0, 3, 1, 1]);
        let out = project(
            &data,
            &positions,
            &Format::Uncompressed,
            &ExecSettings::default(),
        );
        assert_eq!(out.decompress(), vec![40, 10, 40, 20, 20]);
    }

    #[test]
    fn purely_uncompressed_output() {
        let data = Column::from_slice(&sample(100));
        let positions = Column::from_slice(&[5, 6, 7]);
        let out = project(
            &data,
            &positions,
            &Format::Rle,
            &ExecSettings::scalar_uncompressed(),
        );
        assert_eq!(out.format(), &Format::Uncompressed);
    }

    #[test]
    fn empty_positions_give_empty_output() {
        let data = Column::compress(&sample(100), &Format::DynBp);
        let positions = Column::from_slice(&[]);
        let out = project(&data, &positions, &Format::DynBp, &ExecSettings::default());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_position_panics() {
        let data = Column::from_slice(&[1, 2, 3]);
        let positions = Column::from_slice(&[7]);
        project(
            &data,
            &positions,
            &Format::Uncompressed,
            &ExecSettings::default(),
        );
    }

    #[test]
    fn positions_in_the_remainder_are_projected_correctly() {
        // Data column where most positions land in the uncompressed remainder
        // of a 512-block format.
        let data_values = sample(600);
        let data = Column::compress(&data_values, &Format::DynBp);
        assert_eq!(data.main_part_len(), 512);
        let positions = Column::from_slice(&[511, 512, 599]);
        let out = project(
            &data,
            &positions,
            &Format::Uncompressed,
            &ExecSettings::default(),
        );
        assert_eq!(
            out.decompress(),
            vec![data_values[511], data_values[512], data_values[599]]
        );
    }
}
