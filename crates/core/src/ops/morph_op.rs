//! The morph operator: re-encode a column in a different compression format.
//!
//! In a query execution plan the morph operator appears wherever the format
//! an intermediate was produced in differs from the format a downstream
//! operator wants to consume (or from the format the optimizer assigned to
//! it).  It is also the building block of the *on-the-fly morphing*
//! integration degree, where it is applied at block granularity around a
//! specialized operator rather than to a whole column.

use morph_compression::Format;
use morph_storage::Column;

/// Re-encode `column` in `target` format.  The logical content is unchanged.
pub fn morph(column: &Column, target: &Format) -> Column {
    column.to_format(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morph_changes_format_but_not_content() {
        let values: Vec<u64> = (0..4000u64).map(|i| i % 300).collect();
        let source = Column::compress(&values, &Format::DynBp);
        let target = morph(&source, &Format::Rle);
        assert_eq!(target.format(), &Format::Rle);
        assert_eq!(target.decompress(), values);
    }

    #[test]
    fn morph_to_uncompressed_is_full_decompression() {
        let values: Vec<u64> = (0..1000u64).collect();
        let compressed = Column::compress(&values, &Format::DeltaDynBp);
        let plain = morph(&compressed, &Format::Uncompressed);
        assert_eq!(plain.format(), &Format::Uncompressed);
        assert_eq!(plain.size_used_bytes(), values.len() * 8);
    }

    #[test]
    fn morph_roundtrip_returns_to_original_size() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i % 64).collect();
        let original = Column::compress(&values, &Format::StaticBp(6));
        let there = morph(&original, &Format::Uncompressed);
        let back = morph(&there, &Format::StaticBp(6));
        assert_eq!(back, original);
    }
}
