//! The select operator: evaluate a predicate on a column and produce the
//! sorted list of matching positions.
//!
//! This is the operator the paper uses for its single-operator
//! micro-benchmark (Section 5.1, Figure 5): its input is a data column in an
//! arbitrary format and its output — a sorted column of positions, itself an
//! intermediate — can be materialised in any format as well, giving the 25
//! input×output format combinations of Figure 5.

use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};
use morph_vector::emu::V512;
use morph_vector::kernels;
use morph_vector::scalar::Scalar;
use morph_vector::ProcessingStyle;

use crate::exec::{ExecSettings, IntegrationDegree};
use crate::specialized;
use crate::CmpOp;

/// The vector-register-layer core of the select operator: filter one
/// uncompressed chunk, appending matching positions (offset by `base`).
#[inline]
pub(crate) fn filter_chunk(
    style: ProcessingStyle,
    op: CmpOp,
    chunk: &[u64],
    constant: u64,
    base: u64,
    out: &mut Vec<u64>,
) {
    match style {
        ProcessingStyle::Scalar => {
            kernels::filter_positions::<Scalar>(op, chunk, constant, base, out)
        }
        ProcessingStyle::Vectorized => {
            kernels::filter_positions::<V512>(op, chunk, constant, base, out)
        }
    }
}

/// Select the positions of `input` whose value satisfies `op` against
/// `constant`; the output column is materialised in `out_format`.
///
/// The execution follows the chosen [`IntegrationDegree`]:
/// * purely uncompressed — the output is uncompressed regardless of
///   `out_format` (the baseline involves no compressed data at all),
/// * on-the-fly de/re-compression — input chunks are decompressed into the
///   cache, filtered, and the resulting positions recompressed,
/// * specialized — if the input is RLE-compressed, the run-based kernel of
///   [`specialized::select_on_rle`] processes the compressed data directly;
///   otherwise the operator falls back to on-the-fly de/re-compression,
/// * on-the-fly morphing — the input is morphed to RLE first so the
///   specialized kernel can be used irrespective of the input format.
pub fn select(
    op: CmpOp,
    input: &Column,
    constant: u64,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    match settings.degree {
        IntegrationDegree::PurelyUncompressed => {
            let mut positions = Vec::new();
            let mut base = 0u64;
            input.for_each_chunk(&mut |chunk| {
                crate::govern::checkpoint_chunk();
                filter_chunk(settings.style, op, chunk, constant, base, &mut positions);
                base += chunk.len() as u64;
            });
            Column::from_vec(positions)
        }
        IntegrationDegree::OnTheFlyDeRecompression => {
            select_de_recompress(op, input, constant, out_format, settings)
        }
        IntegrationDegree::Specialized => {
            if input.format() == &Format::Rle {
                specialized::select_on_rle(op, input, constant, out_format)
            } else {
                // No specialization available for this input format: fall
                // back to the general degree (Section 3.3: the degree choice
                // depends on the availability of the respective variant).
                select_de_recompress(op, input, constant, out_format, settings)
            }
        }
        IntegrationDegree::OnTheFlyMorphing => {
            let morphed = input.to_format(&Format::Rle);
            specialized::select_on_rle(op, &morphed, constant, out_format)
        }
    }
}

fn select_de_recompress(
    op: CmpOp,
    input: &Column,
    constant: u64,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    let mut builder = ColumnBuilder::new(*out_format);
    let mut scratch: Vec<u64> = Vec::new();
    let mut base = 0u64;
    input.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        scratch.clear();
        filter_chunk(settings.style, op, chunk, constant, base, &mut scratch);
        builder.push_slice(&scratch);
        base += chunk.len() as u64;
    });
    builder.finish()
}

/// Select the positions of `input` whose value lies in `[low, high]`
/// (inclusive range predicate, used by the SSB queries for date and discount
/// ranges).
pub fn select_between(
    input: &Column,
    low: u64,
    high: u64,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    assert!(low <= high, "select_between requires low <= high");
    let produce = |builder_push: &mut dyn FnMut(&[u64])| {
        let mut scratch: Vec<u64> = Vec::new();
        let mut base = 0u64;
        input.for_each_chunk(&mut |chunk| {
            crate::govern::checkpoint_chunk();
            scratch.clear();
            for (i, &value) in chunk.iter().enumerate() {
                if value >= low && value <= high {
                    scratch.push(base + i as u64);
                }
            }
            builder_push(&scratch);
            base += chunk.len() as u64;
        });
    };
    match settings.degree {
        IntegrationDegree::PurelyUncompressed => {
            let mut positions = Vec::new();
            produce(&mut |chunk| positions.extend_from_slice(chunk));
            Column::from_vec(positions)
        }
        _ => {
            let mut builder = ColumnBuilder::new(*out_format);
            produce(&mut |chunk| builder.push_slice(chunk));
            builder.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_positions(values: &[u64], op: CmpOp, constant: u64) -> Vec<u64> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| op.eval(v, constant))
            .map(|(i, _)| i as u64)
            .collect()
    }

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 2654435761) % 1000).collect()
    }

    #[test]
    fn select_matches_reference_for_all_degrees_and_formats() {
        let values = sample(5000);
        let expected = reference_positions(&values, CmpOp::Lt, 100);
        for format in Format::all_formats(999) {
            let input = Column::compress(&values, &format);
            for degree in IntegrationDegree::all() {
                for style in [ProcessingStyle::Scalar, ProcessingStyle::Vectorized] {
                    let settings = ExecSettings {
                        style,
                        degree,
                        ..ExecSettings::default()
                    };
                    let out = select(CmpOp::Lt, &input, 100, &Format::DeltaDynBp, &settings);
                    assert_eq!(
                        out.decompress(),
                        expected,
                        "format {format}, degree {degree:?}, style {style:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_output_format_is_respected() {
        let values = sample(10_000);
        let input = Column::compress(&values, &Format::DynBp);
        let settings = ExecSettings::default();
        for out_format in Format::all_formats(10_000) {
            let out = select(CmpOp::Ge, &input, 500, &out_format, &settings);
            assert_eq!(out.format(), &out_format);
            assert_eq!(
                out.decompress(),
                reference_positions(&values, CmpOp::Ge, 500)
            );
        }
    }

    #[test]
    fn purely_uncompressed_ignores_output_format() {
        let values = sample(1000);
        let input = Column::from_slice(&values);
        let settings = ExecSettings::scalar_uncompressed();
        let out = select(CmpOp::Eq, &input, values[17], &Format::Rle, &settings);
        assert_eq!(out.format(), &Format::Uncompressed);
    }

    #[test]
    fn select_on_empty_column() {
        let input = Column::from_slice(&[]);
        let out = select(
            CmpOp::Eq,
            &input,
            5,
            &Format::DynBp,
            &ExecSettings::default(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn select_all_and_none() {
        let values = vec![7u64; 3000];
        let input = Column::compress(&values, &Format::Rle);
        let settings = ExecSettings::default();
        let all = select(CmpOp::Eq, &input, 7, &Format::DeltaDynBp, &settings);
        assert_eq!(all.logical_len(), 3000);
        assert_eq!(all.decompress(), (0..3000u64).collect::<Vec<_>>());
        let none = select(CmpOp::Gt, &input, 7, &Format::DeltaDynBp, &settings);
        assert!(none.is_empty());
    }

    #[test]
    fn all_comparison_operators() {
        let values = sample(2000);
        let input = Column::compress(&values, &Format::StaticBp(10));
        let settings = ExecSettings::default();
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let out = select(op, &input, 500, &Format::DynBp, &settings);
            assert_eq!(
                out.decompress(),
                reference_positions(&values, op, 500),
                "{op:?}"
            );
        }
    }

    #[test]
    fn select_between_matches_reference() {
        let values = sample(4000);
        let expected: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (100..=300).contains(&v))
            .map(|(i, _)| i as u64)
            .collect();
        for format in [Format::Uncompressed, Format::DynBp, Format::Rle] {
            let input = Column::compress(&values, &format);
            let out = select_between(
                &input,
                100,
                300,
                &Format::DeltaDynBp,
                &ExecSettings::default(),
            );
            assert_eq!(out.decompress(), expected, "format {format}");
        }
        let uncompressed_out = select_between(
            &Column::from_slice(&values),
            100,
            300,
            &Format::DynBp,
            &ExecSettings::scalar_uncompressed(),
        );
        assert_eq!(uncompressed_out.decompress(), expected);
        assert_eq!(uncompressed_out.format(), &Format::Uncompressed);
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn select_between_rejects_inverted_range() {
        let input = Column::from_slice(&[1, 2, 3]);
        select_between(
            &input,
            10,
            5,
            &Format::Uncompressed,
            &ExecSettings::default(),
        );
    }

    #[test]
    fn select_output_is_sorted_for_delta_friendliness() {
        // The paper notes the select output is always sorted, which is why
        // DELTA + SIMD-BP is the best output format (Section 5.1).
        let values = sample(8000);
        let input = Column::compress(&values, &Format::DynBp);
        let out = select(
            CmpOp::Lt,
            &input,
            900,
            &Format::DeltaDynBp,
            &ExecSettings::default(),
        );
        let positions = out.decompress();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }
}
