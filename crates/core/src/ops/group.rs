//! The group operator: assign dense group identifiers to the rows of one or
//! more key columns (MonetDB-style `group`/`groupby` with extents).
//!
//! [`group_by`] groups by a single key column; [`group_by_refine`] refines an
//! existing grouping by an additional key column, which is how multi-column
//! `GROUP BY` clauses (e.g. `GROUP BY d_year, p_brand1` in SSB query flight
//! 2) are executed operator-at-a-time.

use std::collections::HashMap;

use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};

use crate::exec::{ExecSettings, IntegrationDegree};
use crate::ops::zip_chunks;

/// The result of a grouping: per-row group identifiers and, per group, the
/// position of its first occurrence (the "extents" in MonetDB terminology,
/// used to look up the group's key values for the final result).
///
/// The two output columns are `Arc`-shared so the plan-level cache can
/// retain and serve a grouping without copying column bytes (consumers take
/// `&Column` and deref transparently).
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// For every input row, the dense identifier (`0..group_count`) of its
    /// group, in input order.
    pub group_ids: std::sync::Arc<Column>,
    /// For every group, the position of its first occurrence in the input.
    pub representatives: std::sync::Arc<Column>,
    /// Number of distinct groups.
    pub group_count: usize,
}

fn finish_outputs(
    ids: Vec<u64>,
    reps: Vec<u64>,
    out_formats: (&Format, &Format),
    settings: &ExecSettings,
) -> GroupResult {
    let group_count = reps.len();
    if settings.degree == IntegrationDegree::PurelyUncompressed {
        return GroupResult {
            group_ids: std::sync::Arc::new(Column::from_vec(ids)),
            representatives: std::sync::Arc::new(Column::from_vec(reps)),
            group_count,
        };
    }
    let mut id_builder = ColumnBuilder::new(*out_formats.0);
    id_builder.push_slice(&ids);
    let mut rep_builder = ColumnBuilder::new(*out_formats.1);
    rep_builder.push_slice(&reps);
    GroupResult {
        group_ids: std::sync::Arc::new(id_builder.finish()),
        representatives: std::sync::Arc::new(rep_builder.finish()),
        group_count,
    }
}

/// Group the rows of `keys` by value.  Group identifiers are dense and
/// assigned in order of first occurrence.
///
/// `out_formats` is `(format of group_ids, format of representatives)`.
pub fn group_by(
    keys: &Column,
    out_formats: (&Format, &Format),
    settings: &ExecSettings,
) -> GroupResult {
    let mut mapping: HashMap<u64, u64> = HashMap::new();
    let mut ids: Vec<u64> = Vec::with_capacity(keys.logical_len());
    let mut reps: Vec<u64> = Vec::new();
    let mut pos = 0u64;
    keys.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        for &key in chunk {
            let next_id = mapping.len() as u64;
            let id = *mapping.entry(key).or_insert_with(|| {
                reps.push(pos);
                next_id
            });
            ids.push(id);
            pos += 1;
        }
    });
    finish_outputs(ids, reps, out_formats, settings)
}

/// Refine an existing grouping by an additional key column: rows belong to
/// the same output group iff they had the same previous group identifier
/// *and* the same key value.
pub fn group_by_refine(
    previous: &GroupResult,
    keys: &Column,
    out_formats: (&Format, &Format),
    settings: &ExecSettings,
) -> GroupResult {
    let mut mapping: HashMap<(u64, u64), u64> = HashMap::new();
    let mut ids: Vec<u64> = Vec::with_capacity(keys.logical_len());
    let mut reps: Vec<u64> = Vec::new();
    let mut pos = 0u64;
    zip_chunks(&previous.group_ids, keys, &mut |prev_ids, key_chunk| {
        for (&prev, &key) in prev_ids.iter().zip(key_chunk.iter()) {
            let next_id = mapping.len() as u64;
            let id = *mapping.entry((prev, key)).or_insert_with(|| {
                reps.push(pos);
                next_id
            });
            ids.push(id);
            pos += 1;
        }
    });
    finish_outputs(ids, reps, out_formats, settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORMATS: (&Format, &Format) = (&Format::StaticBp(20), &Format::DeltaDynBp);

    #[test]
    fn single_column_grouping() {
        let keys = Column::from_slice(&[5, 9, 5, 5, 7, 9]);
        let result = group_by(&keys, FORMATS, &ExecSettings::default());
        assert_eq!(result.group_count, 3);
        assert_eq!(result.group_ids.decompress(), vec![0, 1, 0, 0, 2, 1]);
        assert_eq!(result.representatives.decompress(), vec![0, 1, 4]);
        assert_eq!(result.group_ids.format(), &Format::StaticBp(20));
        assert_eq!(result.representatives.format(), &Format::DeltaDynBp);
    }

    #[test]
    fn grouping_is_format_independent() {
        let key_values: Vec<u64> = (0..6000u64).map(|i| (i * 31) % 13).collect();
        let reference = group_by(
            &Column::from_slice(&key_values),
            (&Format::Uncompressed, &Format::Uncompressed),
            &ExecSettings::default(),
        );
        for format in Format::all_formats(12) {
            let keys = Column::compress(&key_values, &format);
            let result = group_by(&keys, FORMATS, &ExecSettings::default());
            assert_eq!(result.group_count, reference.group_count, "format {format}");
            assert_eq!(
                result.group_ids.decompress(),
                reference.group_ids.decompress(),
                "format {format}"
            );
            assert_eq!(
                result.representatives.decompress(),
                reference.representatives.decompress()
            );
        }
    }

    #[test]
    fn refinement_produces_composite_groups() {
        let year = Column::from_slice(&[1997, 1997, 1998, 1998, 1997]);
        let brand = Column::from_slice(&[1, 2, 1, 1, 1]);
        let by_year = group_by(&year, FORMATS, &ExecSettings::default());
        assert_eq!(by_year.group_count, 2);
        let by_year_brand = group_by_refine(&by_year, &brand, FORMATS, &ExecSettings::default());
        // Groups: (1997,1), (1997,2), (1998,1) -> 3 groups.
        assert_eq!(by_year_brand.group_count, 3);
        assert_eq!(by_year_brand.group_ids.decompress(), vec![0, 1, 2, 2, 0]);
        assert_eq!(by_year_brand.representatives.decompress(), vec![0, 1, 2]);
    }

    #[test]
    fn refinement_matches_tuple_grouping_reference() {
        let a_values: Vec<u64> = (0..3000u64).map(|i| i % 4).collect();
        let b_values: Vec<u64> = (0..3000u64).map(|i| (i * 7) % 5).collect();
        let a = Column::compress(&a_values, &Format::DynBp);
        let b = Column::compress(&b_values, &Format::StaticBp(3));
        let refined = group_by_refine(
            &group_by(&a, FORMATS, &ExecSettings::default()),
            &b,
            FORMATS,
            &ExecSettings::default(),
        );
        // Reference: group by the pair directly.
        let mut mapping = HashMap::new();
        let mut expected_ids = Vec::new();
        for (x, y) in a_values.iter().zip(b_values.iter()) {
            let next = mapping.len() as u64;
            expected_ids.push(*mapping.entry((*x, *y)).or_insert(next));
        }
        assert_eq!(refined.group_count, mapping.len());
        assert_eq!(refined.group_ids.decompress(), expected_ids);
    }

    #[test]
    fn purely_uncompressed_outputs() {
        let keys = Column::from_slice(&[1, 1, 2]);
        let result = group_by(&keys, FORMATS, &ExecSettings::scalar_uncompressed());
        assert_eq!(result.group_ids.format(), &Format::Uncompressed);
        assert_eq!(result.representatives.format(), &Format::Uncompressed);
    }

    #[test]
    fn empty_input() {
        let keys = Column::from_slice(&[]);
        let result = group_by(&keys, FORMATS, &ExecSettings::default());
        assert_eq!(result.group_count, 0);
        assert!(result.group_ids.is_empty());
        assert!(result.representatives.is_empty());
    }

    #[test]
    fn all_rows_in_one_group() {
        let keys = Column::compress(&vec![42u64; 5000], &Format::Rle);
        let result = group_by(&keys, FORMATS, &ExecSettings::default());
        assert_eq!(result.group_count, 1);
        assert_eq!(result.representatives.decompress(), vec![0]);
        assert!(result.group_ids.decompress().iter().all(|&g| g == 0));
    }
}
