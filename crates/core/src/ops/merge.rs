//! Position-list set operations: intersection and union of sorted position
//! columns.
//!
//! Conjunctive predicates over different columns (e.g. the lineorder filters
//! of SSB query flight 1: `lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25`)
//! are evaluated as one select per column followed by an intersection of the
//! resulting sorted position lists; disjunctions use the union.  Both inputs
//! are consumed chunk-wise, so compressed position lists are never fully
//! decompressed.

use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};

use crate::exec::{ExecSettings, IntegrationDegree};
use crate::ops::{MergeStep, PullSide};

/// Merge-intersect two sorted position columns.
///
/// Both inputs must be strictly increasing (as produced by [`crate::select`]).
pub fn intersect_sorted(
    a: &Column,
    b: &Column,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    set_op(a, b, out_format, settings, SetOp::Intersect)
}

/// Merge-union two sorted position columns (duplicates collapse).
pub fn merge_sorted(
    a: &Column,
    b: &Column,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    set_op(a, b, out_format, settings, SetOp::Union)
}

#[derive(Clone, Copy, PartialEq)]
enum SetOp {
    Intersect,
    Union,
}

fn set_op(
    a: &Column,
    b: &Column,
    out_format: &Format,
    settings: &ExecSettings,
    op: SetOp,
) -> Column {
    // Both inputs stay compressed: `a` is streamed push-style, `b` is pulled
    // through its chunk cursor into a carry buffer bounded by one chunk —
    // the merge never materialises a whole position list (cf. `zip_chunks`).
    let uncompressed = settings.degree == IntegrationDegree::PurelyUncompressed;
    let mut plain: Vec<u64> = Vec::new();
    let mut builder = ColumnBuilder::new(*out_format);
    let mut push = |value: u64| {
        if uncompressed {
            plain.push(value);
        } else {
            builder.push(value);
        }
    };
    let mut pulled = PullSide::new(b.cursor());
    a.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        for &value in chunk {
            match op {
                // An intersection keeps a value iff `b` also holds it;
                // smaller `b` values are silently skipped.
                SetOp::Intersect => {
                    if pulled.merge_step(value, |_| {}) == MergeStep::Matched {
                        push(value);
                    }
                }
                // A union emits the smaller `b` values in passing and the
                // probed value exactly once (duplicates collapse).
                SetOp::Union => {
                    pulled.merge_step(value, &mut push);
                    push(value);
                }
            }
        }
    });
    // A union keeps whatever remains of `b` once `a` is exhausted.
    if op == SetOp::Union {
        loop {
            let available = pulled.peek();
            if available.is_empty() {
                break;
            }
            for &other in available {
                push(other);
            }
            let n = available.len();
            pulled.advance(n);
        }
    }
    pulled.finish();
    if uncompressed {
        Column::from_vec(plain)
    } else {
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_intersect(a: &[u64], b: &[u64]) -> Vec<u64> {
        let set: std::collections::HashSet<u64> = b.iter().copied().collect();
        a.iter().copied().filter(|v| set.contains(v)).collect()
    }

    fn reference_union(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut set: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        set.extend(b.iter().copied());
        set.into_iter().collect()
    }

    #[test]
    fn intersect_matches_reference() {
        let a_values: Vec<u64> = (0..10_000u64).filter(|i| i % 3 == 0).collect();
        let b_values: Vec<u64> = (0..10_000u64).filter(|i| i % 5 == 0).collect();
        let expected = reference_intersect(&a_values, &b_values);
        for format in [Format::Uncompressed, Format::DeltaDynBp, Format::DynBp] {
            let a = Column::compress(&a_values, &format);
            let b = Column::compress(&b_values, &format);
            let out = intersect_sorted(&a, &b, &Format::DeltaDynBp, &ExecSettings::default());
            assert_eq!(out.decompress(), expected, "format {format}");
            // Intersection is symmetric.
            let out_rev = intersect_sorted(&b, &a, &Format::DeltaDynBp, &ExecSettings::default());
            assert_eq!(out_rev.decompress(), expected);
        }
    }

    #[test]
    fn union_matches_reference() {
        let a_values: Vec<u64> = (0..5000u64).filter(|i| i % 7 == 0).collect();
        let b_values: Vec<u64> = (0..5000u64).filter(|i| i % 11 == 0).collect();
        let expected = reference_union(&a_values, &b_values);
        let a = Column::compress(&a_values, &Format::DeltaDynBp);
        let b = Column::compress(&b_values, &Format::DeltaDynBp);
        let out = merge_sorted(&a, &b, &Format::DeltaDynBp, &ExecSettings::default());
        assert_eq!(out.decompress(), expected);
        let out_rev = merge_sorted(&b, &a, &Format::DeltaDynBp, &ExecSettings::default());
        assert_eq!(out_rev.decompress(), expected);
    }

    #[test]
    fn disjoint_and_identical_inputs() {
        let a = Column::from_slice(&[1, 3, 5]);
        let b = Column::from_slice(&[2, 4, 6]);
        assert!(
            intersect_sorted(&a, &b, &Format::Uncompressed, &ExecSettings::default()).is_empty()
        );
        assert_eq!(
            merge_sorted(&a, &b, &Format::Uncompressed, &ExecSettings::default()).decompress(),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(
            intersect_sorted(&a, &a, &Format::Uncompressed, &ExecSettings::default()).decompress(),
            vec![1, 3, 5]
        );
        assert_eq!(
            merge_sorted(&a, &a, &Format::Uncompressed, &ExecSettings::default()).decompress(),
            vec![1, 3, 5]
        );
    }

    #[test]
    fn empty_inputs() {
        let a = Column::from_slice(&[1, 2, 3]);
        let empty = Column::from_slice(&[]);
        assert!(
            intersect_sorted(&a, &empty, &Format::Uncompressed, &ExecSettings::default())
                .is_empty()
        );
        assert_eq!(
            merge_sorted(&a, &empty, &Format::Uncompressed, &ExecSettings::default()).decompress(),
            vec![1, 2, 3]
        );
        assert_eq!(
            merge_sorted(&empty, &a, &Format::Uncompressed, &ExecSettings::default()).decompress(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn output_format_and_degree_are_respected() {
        let a_values: Vec<u64> = (0..4000u64).step_by(2).collect();
        let b_values: Vec<u64> = (0..4000u64).step_by(3).collect();
        let a = Column::compress(&a_values, &Format::DeltaDynBp);
        let b = Column::compress(&b_values, &Format::DeltaDynBp);
        let compressed = intersect_sorted(&a, &b, &Format::DeltaDynBp, &ExecSettings::default());
        assert_eq!(compressed.format(), &Format::DeltaDynBp);
        let plain = intersect_sorted(
            &a,
            &b,
            &Format::DeltaDynBp,
            &ExecSettings::scalar_uncompressed(),
        );
        assert_eq!(plain.format(), &Format::Uncompressed);
        assert_eq!(plain.decompress(), compressed.decompress());
    }
}
