//! The calc operator: element-wise arithmetic between two equally long
//! columns.
//!
//! SSB query flight 1 computes `SUM(lo_extendedprice * lo_discount)` and
//! flight 4 computes `lo_revenue - lo_supplycost`; both are element-wise
//! binary operations on projected intermediates, performed by this operator
//! before the final aggregation.

use morph_compression::Format;
use morph_storage::{Column, ColumnBuilder};
use morph_vector::emu::V512;
use morph_vector::kernels::{self, BinaryOp};
use morph_vector::scalar::Scalar;
use morph_vector::ProcessingStyle;

use crate::exec::{ExecSettings, IntegrationDegree};
use crate::ops::zip_chunks;

/// Element-wise `lhs op rhs`, materialised in `out_format`.
///
/// # Panics
/// Panics if the inputs do not have the same logical length.
pub fn calc_binary(
    op: BinaryOp,
    lhs: &Column,
    rhs: &Column,
    out_format: &Format,
    settings: &ExecSettings,
) -> Column {
    let apply = |style: ProcessingStyle, a: &[u64], b: &[u64], out: &mut Vec<u64>| match style {
        ProcessingStyle::Scalar => kernels::binary_op::<Scalar>(op, a, b, out),
        ProcessingStyle::Vectorized => kernels::binary_op::<V512>(op, a, b, out),
    };
    match settings.degree {
        IntegrationDegree::PurelyUncompressed => {
            let mut values = Vec::with_capacity(lhs.logical_len());
            zip_chunks(lhs, rhs, &mut |a, b| {
                apply(settings.style, a, b, &mut values)
            });
            Column::from_vec(values)
        }
        _ => {
            let mut builder = ColumnBuilder::new(*out_format);
            let mut scratch: Vec<u64> = Vec::new();
            zip_chunks(lhs, rhs, &mut |a, b| {
                scratch.clear();
                apply(settings.style, a, b, &mut scratch);
                builder.push_slice(&scratch);
            });
            builder.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, step: u64) -> Vec<u64> {
        (0..n as u64).map(|i| (i * step) % 5000 + 1).collect()
    }

    #[test]
    fn calc_matches_reference_for_all_ops() {
        let a_values = sample(4000, 13);
        let b_values = sample(4000, 29);
        let a = Column::compress(&a_values, &Format::DynBp);
        let b = Column::compress(&b_values, &Format::StaticBp(13));
        for op in [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul] {
            let out = calc_binary(op, &a, &b, &Format::DynBp, &ExecSettings::default());
            let expected: Vec<u64> = a_values
                .iter()
                .zip(b_values.iter())
                .map(|(&x, &y)| match op {
                    BinaryOp::Add => x.wrapping_add(y),
                    BinaryOp::Sub => x.wrapping_sub(y),
                    BinaryOp::Mul => x.wrapping_mul(y),
                })
                .collect();
            assert_eq!(out.decompress(), expected, "{op:?}");
        }
    }

    #[test]
    fn calc_output_format_and_styles() {
        let a = Column::from_slice(&sample(2000, 3));
        let b = Column::from_slice(&sample(2000, 7));
        for style in [ProcessingStyle::Scalar, ProcessingStyle::Vectorized] {
            let settings = ExecSettings {
                style,
                ..ExecSettings::default()
            };
            let out = calc_binary(BinaryOp::Mul, &a, &b, &Format::DeltaDynBp, &settings);
            assert_eq!(out.format(), &Format::DeltaDynBp);
            assert_eq!(out.logical_len(), 2000);
        }
        let plain = calc_binary(
            BinaryOp::Add,
            &a,
            &b,
            &Format::DynBp,
            &ExecSettings::scalar_uncompressed(),
        );
        assert_eq!(plain.format(), &Format::Uncompressed);
    }

    #[test]
    fn calc_on_empty_columns() {
        let empty = Column::from_slice(&[]);
        let out = calc_binary(
            BinaryOp::Add,
            &empty,
            &empty,
            &Format::DynBp,
            &ExecSettings::default(),
        );
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn calc_rejects_length_mismatch() {
        let a = Column::from_slice(&[1, 2, 3]);
        let b = Column::from_slice(&[1, 2]);
        calc_binary(
            BinaryOp::Add,
            &a,
            &b,
            &Format::DynBp,
            &ExecSettings::default(),
        );
    }
}
