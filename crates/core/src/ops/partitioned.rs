//! Chunk-partitioned variants of the hot operator kernels — the operator
//! side of intra-operator (morsel) parallelism.
//!
//! The paper's block-at-a-time processing (DP3) makes a compressed column a
//! sequence of independently decodable chunks, recorded in the column's
//! seekable chunk directory ([`Column::chunk_count`],
//! [`Column::for_each_chunk_in`]).  A *morsel* is a contiguous range of
//! those chunks; each per-part kernel in this module processes one range
//! into a private partial result, and [`concat_partials`] splices the
//! partials back — in range order — into a column that is **byte-identical**
//! to the single-threaded operator:
//!
//! * every per-part kernel emits exactly the values the serial kernel would
//!   emit for that logical range (select positions are computed from the
//!   chunk's global logical start, so no rebasing pass is needed at merge
//!   time),
//! * [`morph_storage::ColumnBuilder::append_column`] re-creates the serial
//!   builder's byte stream (splicing without re-encoding where the format's
//!   blocks are position-independent), and
//! * partial sums of the wrapping [`agg_sum`](crate::agg_sum) reduce
//!   associatively.
//!
//! The [`crate::parallel::ParallelExecutor`] drives these kernels from its
//! worker pool; the functions are public so tests (and other schedulers)
//! can exercise the partition → process → merge pipeline directly.

use std::collections::HashSet;
use std::ops::Range;

use morph_compression::{ChunkCursor, Format};
use morph_storage::{Column, ColumnBuilder};
use morph_vector::emu::V512;
use morph_vector::kernels::{self, BinaryOp};
use morph_vector::scalar::Scalar;
use morph_vector::ProcessingStyle;

use crate::exec::{ExecSettings, IntegrationDegree};
use crate::ops::agg::sum_chunk;
use crate::ops::select::filter_chunk;
use crate::ops::PullSide;
use crate::CmpOp;

/// Partition a column's seekable chunks into at most `parts` contiguous
/// ranges of roughly equal logical span (delegates to
/// [`Column::partition_chunks`]).
pub fn partition(input: &Column, parts: usize) -> Vec<Range<usize>> {
    input.partition_chunks(parts)
}

/// The format a partial result (and the merged column) is materialised in:
/// the requested output format, except under the purely uncompressed degree,
/// where operators ignore the output format (the baseline involves no
/// compressed data at all).
pub fn effective_output_format(out_format: &Format, settings: &ExecSettings) -> Format {
    if settings.degree == IntegrationDegree::PurelyUncompressed {
        Format::Uncompressed
    } else {
        *out_format
    }
}

/// Partial select: the positions of the chunk range `chunks` of `input`
/// whose value satisfies `op` against `constant`, materialised in `format`.
///
/// Positions are global (offset by each chunk's logical start), so
/// concatenating the partials of a contiguous partition in range order
/// yields exactly the serial [`crate::select`] output.
pub fn select_part(
    op: CmpOp,
    input: &Column,
    constant: u64,
    chunks: Range<usize>,
    format: &Format,
    style: ProcessingStyle,
) -> Column {
    let mut builder = ColumnBuilder::new(*format);
    let mut scratch: Vec<u64> = Vec::new();
    input.for_each_chunk_in(chunks, &mut |start, chunk| {
        crate::govern::checkpoint_chunk();
        scratch.clear();
        filter_chunk(style, op, chunk, constant, start, &mut scratch);
        builder.push_slice(&scratch);
    });
    builder.finish()
}

/// Partial range select: the positions of the chunk range `chunks` of
/// `input` whose value lies in `[low, high]` (the partitioned
/// [`crate::select_between`]).
pub fn select_between_part(
    input: &Column,
    low: u64,
    high: u64,
    chunks: Range<usize>,
    format: &Format,
) -> Column {
    let mut builder = ColumnBuilder::new(*format);
    let mut scratch: Vec<u64> = Vec::new();
    input.for_each_chunk_in(chunks, &mut |start, chunk| {
        crate::govern::checkpoint_chunk();
        scratch.clear();
        for (i, &value) in chunk.iter().enumerate() {
            if value >= low && value <= high {
                scratch.push(start + i as u64);
            }
        }
        builder.push_slice(&scratch);
    });
    builder.finish()
}

/// Partial project: gather `data[position]` for the chunk range `chunks` of
/// the position list.  `data` must support random access — the caller morphs
/// it **once** before fanning out (mirroring the serial
/// [`crate::project`]), so workers never repeat the morph.
pub fn project_part(
    data: &Column,
    positions: &Column,
    chunks: Range<usize>,
    format: &Format,
) -> Column {
    assert!(
        data.supports_random_access(),
        "project_part requires a random-access data column; morph before fanning out"
    );
    let mut builder = ColumnBuilder::new(*format);
    let mut scratch: Vec<u64> = Vec::new();
    positions.for_each_chunk_in(chunks, &mut |_, chunk| {
        crate::govern::checkpoint_chunk();
        scratch.clear();
        for &position in chunk {
            let value = data
                .get(position as usize)
                .unwrap_or_else(|| panic!("project: position {position} out of bounds"));
            scratch.push(value);
        }
        builder.push_slice(&scratch);
    });
    builder.finish()
}

/// The hash set of build-side values of a semi-join, built once by the
/// coordinator and shared by all probe-side parts.
pub fn build_semi_join_set(build: &Column) -> HashSet<u64> {
    let mut set = HashSet::new();
    build.for_each_chunk(&mut |chunk| {
        crate::govern::checkpoint_chunk();
        set.extend(chunk.iter().copied());
    });
    set
}

/// Partial semi-join: the global positions of the chunk range `chunks` of
/// `probe` whose value occurs in the shared build `set` (the partitioned
/// probe side of [`crate::semi_join`]).
pub fn semi_join_part(
    probe: &Column,
    set: &HashSet<u64>,
    chunks: Range<usize>,
    format: &Format,
) -> Column {
    let mut builder = ColumnBuilder::new(*format);
    probe.for_each_chunk_in(chunks, &mut |start, chunk| {
        crate::govern::checkpoint_chunk();
        for (i, value) in chunk.iter().enumerate() {
            if set.contains(value) {
                builder.push(start + i as u64);
            }
        }
    });
    builder.finish()
}

/// Partial whole-column sum over the chunk range `chunks` (wrapping 64-bit
/// arithmetic, like [`crate::agg_sum`]).  Partials reduce with
/// [`u64::wrapping_add`].
pub fn agg_sum_part(input: &Column, chunks: Range<usize>, style: ProcessingStyle) -> u64 {
    let mut total = 0u64;
    input.for_each_chunk_in(chunks, &mut |_, chunk| {
        crate::govern::checkpoint_chunk();
        total = total.wrapping_add(sum_chunk(style, chunk));
    });
    total
}

/// Partial element-wise calculation: `lhs[i] op rhs[i]` for the logical
/// span of the chunk range `chunks` of `lhs` (the partitioned
/// [`crate::calc_binary`]).
///
/// `lhs` is streamed by its own chunk directory; the *aligned logical
/// range* of `rhs` is pulled through [`Column::cursor_at`] into a carry
/// buffer bounded by one chunk — the partitioned analogue of the serial
/// operator's streaming pairwise reader (`zip_chunks`), so a part's
/// transient memory is O(chunk) irrespective of its span.
pub fn calc_binary_part(
    op: BinaryOp,
    lhs: &Column,
    rhs: &Column,
    chunks: Range<usize>,
    format: &Format,
    style: ProcessingStyle,
) -> Column {
    assert!(
        lhs.logical_len() == rhs.logical_len(),
        "position-wise operators require equally long inputs: \
         lhs holds {} elements ({}), rhs holds {} elements ({})",
        lhs.logical_len(),
        lhs.format(),
        rhs.logical_len(),
        rhs.format(),
    );
    let start = lhs.chunk_logical_start(chunks.start);
    let end = lhs.chunk_logical_start(chunks.end);
    let mut pulled = PullSide::new(rhs.cursor_at(start..end));
    let mut builder = ColumnBuilder::new(*format);
    let mut scratch: Vec<u64> = Vec::new();
    lhs.for_each_chunk_in(chunks, &mut |_, chunk| {
        crate::govern::checkpoint_chunk();
        let mut done = 0usize;
        while done < chunk.len() {
            let available = pulled.peek();
            // A drained pull side here means the rhs decoded fewer values
            // than the aligned span — fail loudly with a structured
            // payload, never spin.
            if available.is_empty() {
                std::panic::panic_any(morph_compression::DecodeError::CorruptHeader {
                    format: "pairwise",
                    detail: format!(
                        "rhs ({}) ended early inside logical range {start}..{end}",
                        rhs.format(),
                    ),
                });
            }
            let n = (chunk.len() - done).min(available.len());
            scratch.clear();
            match style {
                ProcessingStyle::Scalar => kernels::binary_op::<Scalar>(
                    op,
                    &chunk[done..done + n],
                    &available[..n],
                    &mut scratch,
                ),
                ProcessingStyle::Vectorized => kernels::binary_op::<V512>(
                    op,
                    &chunk[done..done + n],
                    &available[..n],
                    &mut scratch,
                ),
            }
            builder.push_slice(&scratch);
            pulled.advance(n);
            done += n;
        }
    });
    pulled.finish();
    builder.finish()
}

/// Partial sorted intersection: the values of the chunk range `chunks` of
/// `a` that also occur in the sorted column `b` (the partitioned
/// [`crate::intersect_sorted`]).
///
/// Both sides stay compressed: each part opens its own [`ChunkCursor`] over
/// `b`, seeks it to the chunk containing the part's first value (binary
/// search over `b`'s chunk directory, probing one decoded chunk per step)
/// and merge-walks from there through a carry buffer bounded by one chunk —
/// so a part costs its share of `a` plus the matching span of `b`, with
/// O(chunk) transient memory.  Both position lists are strictly increasing,
/// so concatenating the partials of a contiguous partition in range order
/// yields exactly the serial intersection.
pub fn intersect_sorted_part(
    a: &Column,
    b: &Column,
    chunks: Range<usize>,
    format: &Format,
) -> Column {
    let mut builder = ColumnBuilder::new(*format);
    let mut pulled: Option<PullSide<'_>> = None;
    a.for_each_chunk_in(chunks, &mut |_, chunk| {
        crate::govern::checkpoint_chunk();
        let Some(&first) = chunk.first() else {
            return;
        };
        // One cursor per part, constructed lazily (DICT decodes its
        // embedded dictionary at construction) and positioned once by
        // value-seek; the same cursor then serves the whole merge-walk.
        let pulled = pulled.get_or_insert_with(|| {
            let mut cursor = b.cursor();
            seek_cursor_to_value(b, &mut cursor, first);
            PullSide::new(cursor)
        });
        for &value in chunk {
            match pulled.merge_step(value, |_| {}) {
                crate::ops::MergeStep::Matched => builder.push(value),
                crate::ops::MergeStep::Absent => {}
                crate::ops::MergeStep::Exhausted => return,
            }
        }
    });
    if let Some(pulled) = &pulled {
        pulled.finish();
    }
    builder.finish()
}

/// Position `cursor` at the start of the chunk of the sorted column `b` in
/// which a merge for `value` should begin: the last chunk whose first
/// element is `<= value` (chunk 0 when `value` precedes everything).
/// Binary search over the chunk directory, decoding one chunk head per
/// probe through the same seekable cursor that afterwards serves the walk.
fn seek_cursor_to_value(b: &Column, cursor: &mut morph_storage::ColumnCursor<'_>, value: u64) {
    let n = b.chunk_count();
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        cursor.seek(mid);
        match cursor.next_chunk().and_then(|piece| piece.first().copied()) {
            Some(first) if first <= value => lo = mid + 1,
            _ => hi = mid,
        }
    }
    cursor.seek(lo.saturating_sub(1));
}

/// Splice the partial columns of a contiguous chunk partition — in range
/// order — into one column in `format`.
///
/// The result is byte-identical to a single [`ColumnBuilder`] fed the
/// concatenated value sequence, i.e. to the serial operator
/// ([`ColumnBuilder::append_column`] splices position-independent formats
/// without re-encoding and re-pushes the rest through the streaming
/// compressor).
pub fn concat_partials<'a>(
    format: &Format,
    partials: impl IntoIterator<Item = &'a Column>,
) -> Column {
    let mut builder = ColumnBuilder::new(*format);
    for partial in partials {
        builder.append_column(partial);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::{select, select_between};
    use crate::{agg_sum, project, semi_join};

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 2654435761) % 1000).collect()
    }

    #[test]
    fn partitioned_select_is_byte_identical_to_serial_for_all_formats() {
        let values = sample(20_000);
        let settings = ExecSettings::vectorized_compressed();
        for in_format in Format::all_formats(999) {
            let input = Column::compress(&values, &in_format);
            for out_format in [Format::DeltaDynBp, Format::DynBp, Format::Rle, Format::Dict] {
                let serial = select(CmpOp::Lt, &input, 300, &out_format, &settings);
                for parts in [1, 2, 3, 7] {
                    let ranges = partition(&input, parts);
                    let partials: Vec<Column> = ranges
                        .iter()
                        .map(|r| {
                            select_part(
                                CmpOp::Lt,
                                &input,
                                300,
                                r.clone(),
                                &out_format,
                                settings.style,
                            )
                        })
                        .collect();
                    let merged = concat_partials(&out_format, &partials);
                    assert_eq!(merged, serial, "{in_format} -> {out_format}, {parts} parts");
                }
            }
        }
    }

    #[test]
    fn partitioned_select_between_matches_serial() {
        let values = sample(12_000);
        let input = Column::compress(&values, &Format::DynBp);
        let settings = ExecSettings::vectorized_compressed();
        let serial = select_between(&input, 100, 400, &Format::DeltaDynBp, &settings);
        let partials: Vec<Column> = partition(&input, 4)
            .iter()
            .map(|r| select_between_part(&input, 100, 400, r.clone(), &Format::DeltaDynBp))
            .collect();
        assert_eq!(concat_partials(&Format::DeltaDynBp, &partials), serial);
    }

    #[test]
    fn partitioned_project_matches_serial() {
        let data_values = sample(8000);
        let positions: Vec<u64> = (0..8000u64).filter(|p| p % 3 == 0).collect();
        let data = Column::compress(&data_values, &Format::StaticBp(10));
        let pos = Column::compress(&positions, &Format::DeltaDynBp);
        let settings = ExecSettings::vectorized_compressed();
        let serial = project(&data, &pos, &Format::DynBp, &settings);
        let partials: Vec<Column> = partition(&pos, 3)
            .iter()
            .map(|r| project_part(&data, &pos, r.clone(), &Format::DynBp))
            .collect();
        assert_eq!(concat_partials(&Format::DynBp, &partials), serial);
    }

    #[test]
    fn partitioned_semi_join_matches_serial() {
        let probe_values: Vec<u64> = (0..15_000u64).map(|i| i % 997).collect();
        let build_values: Vec<u64> = (0..200u64).map(|i| i * 5).collect();
        let probe = Column::compress(&probe_values, &Format::DynBp);
        let build = Column::compress(&build_values, &Format::StaticBp(10));
        let settings = ExecSettings::vectorized_compressed();
        let serial = semi_join(&probe, &build, &Format::DeltaDynBp, &settings);
        let set = build_semi_join_set(&build);
        let partials: Vec<Column> = partition(&probe, 5)
            .iter()
            .map(|r| semi_join_part(&probe, &set, r.clone(), &Format::DeltaDynBp))
            .collect();
        assert_eq!(concat_partials(&Format::DeltaDynBp, &partials), serial);
    }

    #[test]
    fn partitioned_calc_is_byte_identical_to_serial_for_all_formats() {
        let lhs_values = sample(18_000);
        let rhs_values: Vec<u64> = (0..18_000u64).map(|i| (i * 31) % 4000 + 1).collect();
        let settings = ExecSettings::vectorized_compressed();
        for lhs_format in Format::all_formats(999) {
            let lhs = Column::compress(&lhs_values, &lhs_format);
            // The right operand deliberately carries a different chunk grid.
            let rhs = Column::compress(&rhs_values, &Format::DeltaDynBp);
            for out_format in [Format::DynBp, Format::Rle, Format::DeltaDynBp] {
                for op in [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul] {
                    let serial = crate::calc_binary(op, &lhs, &rhs, &out_format, &settings);
                    for parts in [1, 2, 5] {
                        let partials: Vec<Column> = partition(&lhs, parts)
                            .iter()
                            .map(|r| {
                                calc_binary_part(
                                    op,
                                    &lhs,
                                    &rhs,
                                    r.clone(),
                                    &out_format,
                                    settings.style,
                                )
                            })
                            .collect();
                        let merged = concat_partials(&out_format, &partials);
                        assert_eq!(
                            merged, serial,
                            "{lhs_format} {op:?} -> {out_format}, {parts} parts"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_intersect_is_byte_identical_to_serial() {
        let a_values: Vec<u64> = (0..40_000u64).filter(|i| i % 3 == 0).collect();
        let b_values: Vec<u64> = (0..40_000u64).filter(|i| i % 5 == 0).collect();
        let settings = ExecSettings::vectorized_compressed();
        for (a_format, b_format) in [
            (Format::DeltaDynBp, Format::DeltaDynBp),
            (Format::DynBp, Format::Uncompressed),
            (Format::Uncompressed, Format::DynBp),
        ] {
            let a = Column::compress(&a_values, &a_format);
            let b = Column::compress(&b_values, &b_format);
            for out_format in [Format::DeltaDynBp, Format::Uncompressed, Format::Rle] {
                let serial = crate::intersect_sorted(&a, &b, &out_format, &settings);
                for parts in [1, 2, 4, 9] {
                    let partials: Vec<Column> = partition(&a, parts)
                        .iter()
                        .map(|r| intersect_sorted_part(&a, &b, r.clone(), &out_format))
                        .collect();
                    let merged = concat_partials(&out_format, &partials);
                    assert_eq!(
                        merged, serial,
                        "{a_format}/{b_format} -> {out_format}, {parts} parts"
                    );
                }
            }
        }
        // Asymmetric sizes: the partitioned side may be the shorter one.
        let small: Vec<u64> = (0..500u64).map(|i| i * 16).collect();
        let a = Column::compress(&small, &Format::DeltaDynBp);
        let b = Column::compress(&a_values, &Format::DeltaDynBp);
        let serial = crate::intersect_sorted(&a, &b, &Format::DeltaDynBp, &settings);
        let partials: Vec<Column> = partition(&a, 3)
            .iter()
            .map(|r| intersect_sorted_part(&a, &b, r.clone(), &Format::DeltaDynBp))
            .collect();
        assert_eq!(concat_partials(&Format::DeltaDynBp, &partials), serial);
    }

    #[test]
    fn partitioned_sum_matches_serial_including_wrapping() {
        let mut values = sample(9000);
        values[17] = u64::MAX;
        values[8000] = u64::MAX - 3;
        for format in [Format::Uncompressed, Format::DynBp, Format::Rle] {
            let input = Column::compress(&values, &format);
            let serial = agg_sum(&input, &ExecSettings::vectorized_compressed());
            let total = partition(&input, 4)
                .into_iter()
                .map(|r| agg_sum_part(&input, r, ProcessingStyle::Vectorized))
                .fold(0u64, u64::wrapping_add);
            assert_eq!(total, serial, "format {format}");
        }
    }

    #[test]
    fn effective_format_mirrors_the_purely_uncompressed_degree() {
        let compressed = ExecSettings::vectorized_compressed();
        let plain = ExecSettings::scalar_uncompressed();
        assert_eq!(
            effective_output_format(&Format::Rle, &compressed),
            Format::Rle
        );
        assert_eq!(
            effective_output_format(&Format::Rle, &plain),
            Format::Uncompressed
        );
    }

    #[test]
    fn empty_and_single_chunk_partitions() {
        let empty = Column::from_slice(&[]);
        assert!(partition(&empty, 4).is_empty());
        let tiny = Column::from_slice(&[1, 2, 3]);
        let ranges = partition(&tiny, 4);
        assert_eq!(ranges, vec![0..1]);
    }
}
