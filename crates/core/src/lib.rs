//! # morphstore-engine
//!
//! Query operators and the holistic compression-enabled processing model of
//! MorphStore-rs.
//!
//! The engine follows the operator-at-a-time model of MonetDB (design
//! principle DP1): every operator consumes one or more columns and fully
//! materialises its output column(s) before the next operator runs.  The
//! difference to MonetDB — and the paper's core contribution — is that every
//! input *and* output column can be held in a lightweight integer compression
//! format, chosen independently per column (DP2), and that no operator ever
//! materialises a whole column uncompressed (DP3).
//!
//! ## Degrees of integration (Figure 2 of the paper)
//!
//! Every operator can be executed at one of four [`IntegrationDegree`]s:
//!
//! 1. **Purely uncompressed** — the baseline: uncompressed input, output and
//!    internal processing.
//! 2. **On-the-fly de/re-compression** — the workhorse degree: inputs are
//!    decompressed one cache-resident block (or vector register) at a time
//!    and fed to the operator core, whose uncompressed output values are
//!    gathered in a 16 KiB cache-resident buffer and recompressed into the
//!    output format whenever it fills up (the three-layer architecture of
//!    Figure 4: column layer / buffer layer / vector-register layer).
//! 3. **Specialized operators** — process the compressed representation
//!    directly (e.g. run-value comparisons on RLE data, per-block shortcuts
//!    on FOR data) for specific format combinations.
//! 4. **On-the-fly morphing** — inputs/outputs are *morphed* between
//!    compressed formats so that specialized operators can be used even when
//!    the intermediates carry different formats.
//!
//! ## Operators
//!
//! The operator set mirrors the one the paper needs for the Star Schema
//! Benchmark (Section 4.2): [`select`], [`project`], [`join`], [`semi_join`],
//! [`intersect_sorted`], [`merge_sorted`], [`group_by`], [`group_by_refine`],
//! [`agg_sum`], [`agg_sum_grouped`] and [`calc_binary`], plus the
//! column-level [`morph`] operator that re-encodes a column in another
//! format.
//!
//! ## Query plans
//!
//! Operators compose into a declarative DAG via the [`plan`] module: a
//! [`plan::PlanBuilder`] offers one constructor per operator and returns
//! typed handles, and a [`plan::PlanExecutor`] walks the finished
//! [`plan::QueryPlan`] in topological order, resolving each edge's
//! compression format from the [`exec::FormatConfig`] and recording
//! footprints and timings in the [`ExecutionContext`].  Because DP1
//! materialises every intermediate, the plan is an explicit dependency
//! graph, and the [`parallel::ParallelExecutor`] schedules independent
//! subtrees on a worker pool with bookkeeping identical to the serial
//! walk.  With [`ExecSettings::morsel_threshold`] set it additionally
//! splits single large operators into chunk-range morsels over the
//! columns' seekable chunk directories ([`ops::partitioned`]), spliced
//! back byte-identically.  With an [`ExecSettings::cache`] handle set,
//! both executors additionally consult the cross-query plan-level
//! [`QueryCache`] (`morph-cache`): every non-scan node is keyed by a
//! canonical fingerprint of the subplan rooted at it, a hit completes the
//! node without running the operator — with footprint and timing records
//! identical to an execution — and a miss inserts the result for the next
//! query.  With an [`ExecSettings::tracer`] attached (`morph-telemetry`),
//! both executors additionally record one lock-free span per plan node —
//! wall time, rows, compressed vs. logical bytes, cache hits, morsel
//! fan-out — which [`plan::QueryPlan::explain_analyze`] renders as a
//! per-node profile; results, footprint records and timing-label sequences
//! stay byte-identical with tracing on.  See DESIGN.md for how the plan
//! layer sits on top of the three-layer operator architecture.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod exec;
#[cfg(feature = "faults")]
pub mod faults;
pub mod fusion;
pub mod govern;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod specialized;
pub mod verify;

pub use exec::{ExecSettings, ExecutionContext, IntegrationDegree};
pub use fusion::{FusedRegionSummary, FusionPlan};
pub use govern::{ExecError, GovernorScope, QueryGovernor};
pub use morph_cache::{CacheKey, CacheStats, QueryCache};
pub use morph_telemetry::{Histogram, MetricsRegistry, PlanTopology, PlanTrace, QueryTracer};
pub use morph_vector::kernels::BinaryOp;
pub use morph_vector::ProcessingStyle;
pub use ops::agg::{agg_max, agg_sum, agg_sum_grouped};
pub use ops::calc::calc_binary;
pub use ops::group::{group_by, group_by_refine, GroupResult};
pub use ops::join::{join, semi_join};
pub use ops::merge::{intersect_sorted, merge_sorted};
pub use ops::morph_op::morph;
pub use ops::project::project;
pub use ops::select::{select, select_between};
pub use ops::transient;
pub use parallel::ParallelExecutor;
pub use plan::{ColRef, ColumnSource, GroupRef, PlanBuilder, PlanExecutor, QueryPlan, ScalarRef};
pub use verify::PlanError;

/// Comparison predicate of the [`select`] operator (re-exported from the
/// vector crate, where the SIMD comparison kernels live).
pub type CmpOp = morph_vector::VecCmp;
