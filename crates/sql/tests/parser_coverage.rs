//! Parser coverage: a property round-trip (pretty-print a generated AST,
//! parse it back, require the identical tree) plus a pile of fuzz-style
//! malformed inputs that must all produce `Err` — never a panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

use morph_sql::ast::{ArithOp, ColumnRef, Expr, Literal, OrderItem, Predicate, Query, SelectItem};
use morph_sql::SqlError;
use morphstore_engine::CmpOp;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// AST generation
// ---------------------------------------------------------------------------

/// Identifier pool: realistic names that are guaranteed not to be reserved
/// words (the parser rejects keywords as identifiers, so generating from a
/// fixed pool keeps every produced AST printable *and* re-parsable).
const IDENTS: &[&str] = &[
    "lineorder",
    "dates",
    "part",
    "supplier",
    "customer",
    "lo_revenue",
    "lo_extendedprice",
    "lo_discount",
    "d_year",
    "p_brand1",
    "s_city",
    "c_nation",
    "revenue",
    "total",
    "x",
    "y2",
    "_private",
    "MixedCase",
];

/// String-literal pool: contents the lexer reproduces exactly (no quotes).
const STRINGS: &[&str] = &["EUROPE", "MFGR#12", "UNITED KI1", "", "a b c", "1993"];

fn ident(rng: &mut TestRng) -> String {
    IDENTS[(rng.next_u64() % IDENTS.len() as u64) as usize].to_string()
}

fn literal(rng: &mut TestRng) -> Literal {
    if rng.next_u64() & 1 == 0 {
        Literal::Number(rng.next_u64())
    } else {
        Literal::Str(STRINGS[(rng.next_u64() % STRINGS.len() as u64) as usize].to_string())
    }
}

fn column_ref(rng: &mut TestRng) -> ColumnRef {
    ColumnRef {
        table: (rng.next_u64() & 1 == 0).then(|| ident(rng)),
        column: ident(rng),
    }
}

fn expr(rng: &mut TestRng, depth: u32) -> Expr {
    let choice = if depth == 0 {
        rng.next_u64() % 2
    } else {
        rng.next_u64() % 4
    };
    match choice {
        0 => Expr::Column(column_ref(rng)),
        // Literals in expressions: numbers only — a bare string factor is
        // accepted by the grammar too, but keep arithmetic numeric.
        1 => Expr::Literal(Literal::Number(rng.next_u64() % 10_000)),
        _ => {
            let op = match rng.next_u64() % 3 {
                0 => ArithOp::Add,
                1 => ArithOp::Sub,
                _ => ArithOp::Mul,
            };
            Expr::Binary {
                op,
                lhs: Box::new(expr(rng, depth - 1)),
                rhs: Box::new(expr(rng, depth - 1)),
            }
        }
    }
}

fn cmp_op(rng: &mut TestRng) -> CmpOp {
    match rng.next_u64() % 6 {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

fn predicate(rng: &mut TestRng) -> Predicate {
    match rng.next_u64() % 4 {
        0 => Predicate::Join {
            left: column_ref(rng),
            right: column_ref(rng),
        },
        1 => Predicate::Compare {
            column: column_ref(rng),
            op: cmp_op(rng),
            value: literal(rng),
        },
        2 => Predicate::Between {
            column: column_ref(rng),
            low: literal(rng),
            high: literal(rng),
        },
        _ => Predicate::In {
            column: column_ref(rng),
            values: (0..1 + rng.next_u64() % 4).map(|_| literal(rng)).collect(),
        },
    }
}

fn select_item(rng: &mut TestRng) -> SelectItem {
    let alias = (rng.next_u64() & 1 == 0).then(|| ident(rng));
    if rng.next_u64() & 1 == 0 {
        SelectItem::Sum {
            expr: expr(rng, 3),
            alias,
        }
    } else {
        SelectItem::Column {
            column: column_ref(rng),
            alias,
        }
    }
}

fn query(rng: &mut TestRng) -> Query {
    Query {
        explain_analyze: rng.next_u64().is_multiple_of(8),
        select: (0..1 + rng.next_u64() % 4)
            .map(|_| select_item(rng))
            .collect(),
        from: (0..1 + rng.next_u64() % 5).map(|_| ident(rng)).collect(),
        predicates: (0..rng.next_u64() % 6).map(|_| predicate(rng)).collect(),
        group_by: (0..rng.next_u64() % 4).map(|_| column_ref(rng)).collect(),
        order_by: (0..rng.next_u64() % 4)
            .map(|_| OrderItem {
                column: column_ref(rng),
                desc: rng.next_u64() & 1 == 0,
            })
            .collect(),
    }
}

/// Strategy wrapper so `proptest!` can draw whole queries.
struct QueryStrategy;

impl Strategy for QueryStrategy {
    type Value = Query;
    fn generate(&self, rng: &mut TestRng) -> Query {
        query(rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The canonical pretty-print of any AST re-parses to the identical AST.
    #[test]
    fn pretty_print_parse_round_trip(ast in QueryStrategy) {
        let printed = ast.to_string();
        let reparsed = morph_sql::parse(&printed)
            .unwrap_or_else(|e| panic!("canonical text failed to parse: {e}\n  text: {printed}"));
        prop_assert_eq!(reparsed, ast, "round-trip mismatch for: {}", printed);
    }

    // The trailing-semicolon form parses to the same tree too.
    #[test]
    fn trailing_semicolon_is_equivalent(ast in QueryStrategy) {
        let printed = format!("{ast};");
        prop_assert_eq!(morph_sql::parse(&printed).unwrap(), ast);
    }
}

// ---------------------------------------------------------------------------
// Malformed inputs: every case must be a structured error, never a panic.
// ---------------------------------------------------------------------------

#[test]
fn malformed_inputs_error_without_panicking() {
    let cases: &[&str] = &[
        // Empty / truncated at every clause boundary.
        "",
        "   \n\t ",
        "SELECT",
        "SELECT SUM",
        "SELECT SUM(",
        "SELECT SUM(x",
        "SELECT SUM(x)",
        "SELECT SUM(x) FROM",
        "SELECT SUM(x) FROM t WHERE",
        "SELECT SUM(x) FROM t WHERE a =",
        "SELECT SUM(x) FROM t WHERE a BETWEEN",
        "SELECT SUM(x) FROM t WHERE a BETWEEN 1",
        "SELECT SUM(x) FROM t WHERE a BETWEEN 1 AND",
        "SELECT SUM(x) FROM t WHERE a IN",
        "SELECT SUM(x) FROM t WHERE a IN (",
        "SELECT SUM(x) FROM t GROUP",
        "SELECT SUM(x) FROM t GROUP BY",
        "SELECT SUM(x) FROM t ORDER",
        "SELECT SUM(x) FROM t ORDER BY",
        "SELECT a. FROM t",
        // Unbalanced parentheses.
        "SELECT SUM((x) FROM t",
        "SELECT SUM(x)) FROM t",
        "SELECT SUM((a + b) FROM t",
        "SELECT SUM(a + b)) FROM t",
        "SELECT SUM(x) FROM t WHERE a IN (1, 2",
        "SELECT SUM(x) FROM t WHERE a IN 1, 2)",
        // Reserved words where identifiers are required.
        "SELECT SUM(select) FROM t",
        "SELECT SUM(x) FROM from",
        "SELECT SUM(x) FROM t WHERE where = 1",
        "SELECT SUM(x) FROM t GROUP BY group",
        "SELECT SUM(x) FROM t ORDER BY order",
        "SELECT SUM(x) AS as FROM t",
        // Empty IN list.
        "SELECT SUM(x) FROM t WHERE a IN ()",
        // Bad literals and characters.
        "SELECT SUM(x) FROM t WHERE a = 'unterminated",
        "SELECT SUM(x) FROM t WHERE a = 99999999999999999999999999",
        "SELECT SUM(x) FROM t WHERE a ! 1",
        "SELECT SUM(x) FROM t WHERE a = #",
        "SELECT SUM(x) FROM t @",
        // Trailing garbage after a complete query.
        "SELECT SUM(x) FROM t extra",
        "SELECT SUM(x) FROM t; extra",
        "SELECT SUM(x) FROM t;;",
        // Structural nonsense.
        "FROM t SELECT SUM(x)",
        "SELECT FROM t",
        "SELECT , SUM(x) FROM t",
        "SELECT SUM(x) FROM t,",
        "SELECT SUM(x) FROM t WHERE AND a = 1",
        "SELECT SUM(x) FROM t WHERE a = 1 AND",
        "SELECT SUM(x) FROM t WHERE BETWEEN 1 AND 2",
        "SELECT SUM(x) x y FROM t",
        "SELECT SUM(x) FROM t GROUP BY a,",
        "SELECT SUM(x) FROM t ORDER BY a DESC ASC",
    ];
    for case in cases {
        let outcome = catch_unwind(AssertUnwindSafe(|| morph_sql::parse(case)));
        match outcome {
            Ok(Err(_)) => {}
            Ok(Ok(query)) => panic!("malformed input parsed: {case:?} -> {query:?}"),
            Err(_) => panic!("parser panicked on: {case:?}"),
        }
    }
}

/// Parse errors carry usable 1-based positions.
#[test]
fn parse_errors_report_positions() {
    match morph_sql::parse("SELECT SUM(x)\nFROM t WHERE ?") {
        Err(SqlError::Parse { line, column, .. }) => {
            assert_eq!((line, column), (2, 14));
        }
        other => panic!("unexpected {other:?}"),
    }
    match morph_sql::parse("SELECT SUM(x) FROM") {
        Err(SqlError::Parse { line, column, .. }) => {
            assert_eq!(line, 1);
            assert!(column >= 18, "column {column} should point at end of input");
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Random byte soup never panics the parser (it may parse or error; both
/// are fine — panics are the only failure).
#[test]
fn random_token_soup_never_panics() {
    const PIECES: &[&str] = &[
        "SELECT",
        "SUM",
        "FROM",
        "WHERE",
        "AND",
        "BETWEEN",
        "IN",
        "GROUP",
        "BY",
        "ORDER",
        "ASC",
        "DESC",
        "AS",
        "(",
        ")",
        ",",
        ".",
        ";",
        "=",
        "<>",
        "<",
        "<=",
        ">",
        ">=",
        "+",
        "-",
        "*",
        "x",
        "t",
        "'s'",
        "42",
        "18446744073709551615",
    ];
    for case in 0..512u64 {
        let mut state = case.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let len = 1 + next() % 24;
        let soup: Vec<&str> = (0..len)
            .map(|_| PIECES[(next() % PIECES.len() as u64) as usize])
            .collect();
        let text = soup.join(" ");
        if catch_unwind(AssertUnwindSafe(|| morph_sql::parse(&text))).is_err() {
            panic!("parser panicked on soup: {text:?}");
        }
    }
}
