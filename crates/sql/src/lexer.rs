//! Hand-written lexer producing spanned tokens.

use crate::error::SqlError;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub column: u32,
}

impl Span {
    pub(crate) fn start() -> Span {
        Span { line: 1, column: 1 }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A non-reserved identifier (as written).
    Ident(String),
    /// An unsigned integer literal.
    Number(u64),
    /// A single-quoted string literal (quotes stripped; no escapes).
    StringLit(String),
    // Keywords (case-insensitive in the source).
    /// `EXPLAIN`
    Explain,
    /// `ANALYZE`
    Analyze,
    /// `SELECT`
    Select,
    /// `SUM`
    Sum,
    /// `AS`
    As,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `BETWEEN`
    Between,
    /// `IN`
    In,
    /// `GROUP`
    Group,
    /// `BY`
    By,
    /// `ORDER`
    Order,
    /// `ASC`
    Asc,
    /// `DESC`
    Desc,
    // Punctuation and operators.
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Number(value) => format!("number `{value}`"),
            TokenKind::StringLit(text) => format!("string '{text}'"),
            TokenKind::Explain => "keyword EXPLAIN".to_string(),
            TokenKind::Analyze => "keyword ANALYZE".to_string(),
            TokenKind::Select => "keyword SELECT".to_string(),
            TokenKind::Sum => "keyword SUM".to_string(),
            TokenKind::As => "keyword AS".to_string(),
            TokenKind::From => "keyword FROM".to_string(),
            TokenKind::Where => "keyword WHERE".to_string(),
            TokenKind::And => "keyword AND".to_string(),
            TokenKind::Between => "keyword BETWEEN".to_string(),
            TokenKind::In => "keyword IN".to_string(),
            TokenKind::Group => "keyword GROUP".to_string(),
            TokenKind::By => "keyword BY".to_string(),
            TokenKind::Order => "keyword ORDER".to_string(),
            TokenKind::Asc => "keyword ASC".to_string(),
            TokenKind::Desc => "keyword DESC".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Dot => "`.`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Semicolon => "`;`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::NotEq => "`<>`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::Le => "`<=`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::Ge => "`>=`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

fn keyword(word: &str) -> Option<TokenKind> {
    // Keywords are matched case-insensitively; `word` arrives lowercased.
    Some(match word {
        "explain" => TokenKind::Explain,
        "analyze" => TokenKind::Analyze,
        "select" => TokenKind::Select,
        "sum" => TokenKind::Sum,
        "as" => TokenKind::As,
        "from" => TokenKind::From,
        "where" => TokenKind::Where,
        "and" => TokenKind::And,
        "between" => TokenKind::Between,
        "in" => TokenKind::In,
        "group" => TokenKind::Group,
        "by" => TokenKind::By,
        "order" => TokenKind::Order,
        "asc" => TokenKind::Asc,
        "desc" => TokenKind::Desc,
        _ => return None,
    })
}

/// Lex `sql` into tokens (terminated by [`TokenKind::Eof`]).
pub fn lex(sql: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let mut chars = sql.chars().peekable();
    let mut span = Span::start();

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    span.line += 1;
                    span.column = 1;
                } else {
                    span.column += 1;
                }
            }
            c
        }};
    }

    loop {
        let start = span;
        let Some(&c) = chars.peek() else {
            tokens.push(Token {
                kind: TokenKind::Eof,
                span: start,
            });
            return Ok(tokens);
        };
        let kind = match c {
            c if c.is_whitespace() => {
                bump!();
                continue;
            }
            ',' => {
                bump!();
                TokenKind::Comma
            }
            '.' => {
                bump!();
                TokenKind::Dot
            }
            '(' => {
                bump!();
                TokenKind::LParen
            }
            ')' => {
                bump!();
                TokenKind::RParen
            }
            ';' => {
                bump!();
                TokenKind::Semicolon
            }
            '=' => {
                bump!();
                TokenKind::Eq
            }
            '+' => {
                bump!();
                TokenKind::Plus
            }
            '-' => {
                bump!();
                TokenKind::Minus
            }
            '*' => {
                bump!();
                TokenKind::Star
            }
            '<' => {
                bump!();
                match chars.peek() {
                    Some('=') => {
                        bump!();
                        TokenKind::Le
                    }
                    Some('>') => {
                        bump!();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '\'' => {
                bump!();
                let mut text = String::new();
                loop {
                    match bump!() {
                        Some('\'') => break,
                        Some(c) => text.push(c),
                        None => {
                            return Err(SqlError::Parse {
                                line: start.line,
                                column: start.column,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                    }
                }
                TokenKind::StringLit(text)
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    bump!();
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(d as u64 - '0' as u64))
                        .ok_or(SqlError::Parse {
                            line: start.line,
                            column: start.column,
                            message: "integer literal overflows u64".to_string(),
                        })?;
                }
                TokenKind::Number(value)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&a) = chars.peek() {
                    if !(a.is_alphanumeric() || a == '_') {
                        break;
                    }
                    bump!();
                    word.push(a);
                }
                keyword(&word.to_ascii_lowercase()).unwrap_or(TokenKind::Ident(word))
            }
            other => {
                return Err(SqlError::Parse {
                    line: start.line,
                    column: start.column,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        tokens.push(Token { kind, span: start });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_small_query() {
        let tokens = kinds("SELECT SUM(a * b) FROM t WHERE x <= 5");
        assert_eq!(
            tokens,
            vec![
                TokenKind::Select,
                TokenKind::Sum,
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Star,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::From,
                TokenKind::Ident("t".into()),
                TokenKind::Where,
                TokenKind::Ident("x".into()),
                TokenKind::Le,
                TokenKind::Number(5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive_but_idents_keep_case() {
        assert_eq!(kinds("select")[0], TokenKind::Select);
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Select);
        assert_eq!(kinds("Foo")[0], TokenKind::Ident("Foo".into()));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = lex("SELECT a\nFROM t").unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, column: 1 });
        assert_eq!(tokens[1].span, Span { line: 1, column: 8 });
        assert_eq!(tokens[2].span, Span { line: 2, column: 1 });
        assert_eq!(tokens[3].span, Span { line: 2, column: 6 });
    }

    #[test]
    fn string_literals_and_two_char_operators() {
        assert_eq!(
            kinds("'UNITED KI1' <> <= >="),
            vec![
                TokenKind::StringLit("UNITED KI1".into()),
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn bad_inputs_error_with_positions() {
        match lex("a\n  'oops") {
            Err(SqlError::Parse { line, column, .. }) => {
                assert_eq!((line, column), (2, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(lex("99999999999999999999999").is_err());
        assert!(lex("a ? b").is_err());
    }
}
