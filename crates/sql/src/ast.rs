//! The typed AST of the supported SQL subset.
//!
//! The AST is deliberately span-free: parse errors are reported with
//! line/column positions *during* parsing, and name-resolution errors
//! identify the offending name itself.  That keeps the tree `Eq`-comparable,
//! which the proptest round-trip (pretty-print → parse → identical AST)
//! relies on.
//!
//! [`Query`]'s `Display` implementation prints the canonical form of the
//! subset: uppercase keywords, single spaces, explicit `ASC`/`DESC`, and
//! fully parenthesised arithmetic (so the printed text re-parses to the
//! exact same tree regardless of operator precedence).

use std::fmt;

use morphstore_engine::CmpOp;

/// A possibly table-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// The qualifying table, if written as `table.column`.
    pub table: Option<String>,
    /// The column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: &str) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.to_string(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(table) => write!(f, "{table}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// An unsigned integer.
    Number(u64),
    /// A single-quoted string (resolved against a column dictionary).
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(value) => write!(f, "{value}"),
            Literal::Str(text) => write!(f, "'{text}'"),
        }
    }
}

/// Arithmetic operator inside an aggregate expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        })
    }
}

/// An arithmetic expression over columns and literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A column reference.
    Column(ColumnRef),
    /// A literal.
    Literal(Literal),
    /// A binary arithmetic operation.
    Binary {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(column) => write!(f, "{column}"),
            Expr::Literal(literal) => write!(f, "{literal}"),
            // Always parenthesised: the canonical form is precedence-free.
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `SUM(expr) [AS alias]`
    Sum {
        /// The summed expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
    /// `column [AS alias]` (must also appear in `GROUP BY`).
    Column {
        /// The selected column.
        column: ColumnRef,
        /// Optional output alias.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let alias = match self {
            SelectItem::Sum { expr, alias } => {
                write!(f, "SUM({expr})")?;
                alias
            }
            SelectItem::Column { column, alias } => {
                write!(f, "{column}")?;
                alias
            }
        };
        if let Some(alias) = alias {
            write!(f, " AS {alias}")?;
        }
        Ok(())
    }
}

/// One `WHERE` conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `left = right`, both columns (an equi-join).
    Join {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
    },
    /// `column <op> literal`.
    Compare {
        /// The restricted column.
        column: ColumnRef,
        /// The comparison operator.
        op: CmpOp,
        /// The constant.
        value: Literal,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// The restricted column.
        column: ColumnRef,
        /// Lower bound.
        low: Literal,
        /// Upper bound.
        high: Literal,
    },
    /// `column IN (v1, v2, ...)`.
    In {
        /// The restricted column.
        column: ColumnRef,
        /// The admitted values (at least one).
        values: Vec<Literal>,
    },
}

/// The canonical spelling of a comparison operator.
pub fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Join { left, right } => write!(f, "{left} = {right}"),
            Predicate::Compare { column, op, value } => {
                write!(f, "{column} {} {value}", cmp_symbol(*op))
            }
            Predicate::Between { column, low, high } => {
                write!(f, "{column} BETWEEN {low} AND {high}")
            }
            Predicate::In { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderItem {
    /// The ordering column (a `GROUP BY` column or an aggregate alias).
    pub column: ColumnRef,
    /// Descending order?
    pub desc: bool,
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            self.column,
            if self.desc { "DESC" } else { "ASC" }
        )
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Whether the query was prefixed with `EXPLAIN ANALYZE`: execute it
    /// under a tracer and return the per-node profile alongside the result.
    pub explain_analyze: bool,
    /// The `SELECT` list (at least one item).
    pub select: Vec<SelectItem>,
    /// The `FROM` tables (at least one).
    pub from: Vec<String>,
    /// The `WHERE` conjuncts (possibly empty).
    pub predicates: Vec<Predicate>,
    /// The `GROUP BY` columns (possibly empty).
    pub group_by: Vec<ColumnRef>,
    /// The `ORDER BY` items (possibly empty).
    pub order_by: Vec<OrderItem>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.explain_analyze {
            f.write_str("EXPLAIN ANALYZE ")?;
        }
        f.write_str("SELECT ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str(" FROM ")?;
        for (i, table) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(table)?;
        }
        for (i, predicate) in self.predicates.iter().enumerate() {
            f.write_str(if i == 0 { " WHERE " } else { " AND " })?;
            write!(f, "{predicate}")?;
        }
        for (i, column) in self.group_by.iter().enumerate() {
            f.write_str(if i == 0 { " GROUP BY " } else { ", " })?;
            write!(f, "{column}")?;
        }
        for (i, item) in self.order_by.iter().enumerate() {
            f.write_str(if i == 0 { " ORDER BY " } else { ", " })?;
            write!(f, "{item}")?;
        }
        Ok(())
    }
}
