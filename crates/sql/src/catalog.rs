//! The catalog: tables, columns and per-column string dictionaries the
//! name resolver works against.
//!
//! MorphStore columns are `u64` throughout; string attributes are stored as
//! keys of an order-preserving per-domain dictionary (paper Section 3.1).
//! The catalog therefore records, per column, an optional dictionary mapping
//! strings to keys so the planner can resolve string literals in predicates
//! to the integer constants the engine's selection operators take.

use std::collections::HashMap;

use crate::error::{nearest, SqlError};

/// A column of a catalog table.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// The column name (e.g. `"lo_revenue"`).
    pub name: String,
    /// String → dictionary-key mapping for string-typed columns (empty for
    /// plain integer columns).
    dictionary: HashMap<String, u64>,
}

impl ColumnDef {
    /// An integer column.
    pub fn integer(name: &str) -> ColumnDef {
        ColumnDef {
            name: name.to_string(),
            dictionary: HashMap::new(),
        }
    }

    /// A dictionary-encoded string column.
    pub fn dictionary(name: &str, entries: impl IntoIterator<Item = (String, u64)>) -> ColumnDef {
        ColumnDef {
            name: name.to_string(),
            dictionary: entries.into_iter().collect(),
        }
    }

    /// Whether the column has a string dictionary.
    pub fn has_dictionary(&self) -> bool {
        !self.dictionary.is_empty()
    }

    /// The dictionary key of `text`, if the column is dictionary-encoded and
    /// the string is in its domain.
    pub fn key_of(&self, text: &str) -> Option<u64> {
        self.dictionary.get(text).copied()
    }
}

/// A table with its columns and (for dimensions) primary key.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// The table name (e.g. `"lineorder"`).
    pub name: String,
    /// The single-column primary key, if declared.  The planner uses
    /// declared keys to orient equi-joins: the primary-key side is the
    /// dimension, the other the fact foreign key.
    pub primary_key: Option<String>,
    columns: Vec<ColumnDef>,
}

impl TableDef {
    /// A table with no columns yet.
    pub fn new(name: &str) -> TableDef {
        TableDef {
            name: name.to_string(),
            primary_key: None,
            columns: Vec::new(),
        }
    }

    /// Declare the single-column primary key (must be added as a column
    /// too).
    pub fn with_primary_key(mut self, column: &str) -> TableDef {
        self.primary_key = Some(column.to_string());
        self
    }

    /// Add an integer column.
    pub fn with_column(mut self, name: &str) -> TableDef {
        self.columns.push(ColumnDef::integer(name));
        self
    }

    /// Add a dictionary-encoded string column.
    pub fn with_dict_column(
        mut self,
        name: &str,
        entries: impl IntoIterator<Item = (String, u64)>,
    ) -> TableDef {
        self.columns.push(ColumnDef::dictionary(name, entries));
        self
    }

    /// The column named `name`, if present.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }
}

/// The set of loaded tables the resolver works against.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Add a table (replacing any previous table of the same name).
    pub fn add_table(&mut self, table: TableDef) {
        self.tables.retain(|t| t.name != table.name);
        self.tables.push(table);
    }

    /// Builder-style [`Catalog::add_table`].
    pub fn with_table(mut self, table: TableDef) -> Catalog {
        self.add_table(table);
        self
    }

    /// All tables.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// The table named `name`, or an [`SqlError::UnknownTable`] with a
    /// did-you-mean suggestion.
    pub fn table(&self, name: &str) -> Result<&TableDef, SqlError> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| SqlError::UnknownTable {
                name: name.to_string(),
                did_you_mean: nearest(name, self.tables.iter().map(|t| t.name.as_str())),
            })
    }

    /// An `UnknownColumn` error for `name`, suggesting the nearest column
    /// name among `tables` (which must be catalog tables).
    pub(crate) fn unknown_column(&self, name: &str, tables: &[&TableDef]) -> SqlError {
        SqlError::UnknownColumn {
            name: name.to_string(),
            did_you_mean: nearest(
                name,
                tables
                    .iter()
                    .flat_map(|t| t.columns().iter().map(|c| c.name.as_str())),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new()
            .with_table(
                TableDef::new("dim")
                    .with_primary_key("d_key")
                    .with_column("d_key")
                    .with_dict_column(
                        "d_color",
                        [("RED".to_string(), 0), ("GREEN".to_string(), 1)],
                    ),
            )
            .with_table(
                TableDef::new("fact")
                    .with_column("f_dim")
                    .with_column("f_value"),
            )
    }

    #[test]
    fn lookup_and_did_you_mean() {
        let catalog = catalog();
        assert_eq!(
            catalog.table("dim").unwrap().primary_key.as_deref(),
            Some("d_key")
        );
        match catalog.table("facts") {
            Err(SqlError::UnknownTable { did_you_mean, .. }) => {
                assert_eq!(did_you_mean.as_deref(), Some("fact"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dictionary_resolution() {
        let catalog = catalog();
        let color = catalog.table("dim").unwrap().column("d_color").unwrap();
        assert!(color.has_dictionary());
        assert_eq!(color.key_of("GREEN"), Some(1));
        assert_eq!(color.key_of("BLUE"), None);
        let key = catalog.table("dim").unwrap().column("d_key").unwrap();
        assert!(!key.has_dictionary());
    }

    #[test]
    fn add_table_replaces_same_name() {
        let mut catalog = catalog();
        catalog.add_table(TableDef::new("fact").with_column("f_other"));
        assert!(catalog.table("fact").unwrap().column("f_value").is_none());
        assert!(catalog.table("fact").unwrap().column("f_other").is_some());
    }
}
