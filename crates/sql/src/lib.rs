//! # morph-sql
//!
//! The SQL front-end of MorphStore-rs: a hand-written lexer, a
//! recursive-descent parser for the SQL subset the Star Schema Benchmark
//! needs, a typed AST, name resolution against a [`Catalog`] of loaded
//! tables, and a planner that lowers resolved queries into the engine's
//! [`QueryPlan`](morphstore_engine::plan::QueryPlan) DAGs.
//!
//! ## Grammar subset
//!
//! ```text
//! query      := [EXPLAIN ANALYZE]
//!               SELECT select_item ("," select_item)*
//!               FROM ident ("," ident)*
//!               [WHERE conjunct (AND conjunct)*]
//!               [GROUP BY column ("," column)*]
//!               [ORDER BY column [ASC|DESC] ("," column [ASC|DESC])*]
//!               [";"]
//! select_item := SUM "(" expr ")" [AS ident] | column [AS ident]
//! expr        := term (("+" | "-") term)*
//! term        := factor ("*" factor)*
//! factor      := column | literal | "(" expr ")"
//! conjunct    := column "=" column                 -- equi-join
//!              | column cmp literal                -- cmp: = <> < <= > >=
//!              | column BETWEEN literal AND literal
//!              | column IN "(" literal ("," literal)* ")"
//! column      := ident ["." ident]
//! literal     := integer | "'" chars "'"
//! ```
//!
//! Keywords are case-insensitive; identifiers are case-sensitive and must
//! not be reserved words.  String literals are resolved against the
//! order-preserving per-column dictionaries the [`Catalog`] declares (the
//! paper's Section 3.1 dictionary model), so `p_brand1 BETWEEN 'MFGR#2221'
//! AND 'MFGR#2228'` compiles to an integer range selection.
//!
//! ## Lowering
//!
//! [`compile`] resolves names, classifies the `WHERE` conjuncts into
//! equi-joins (one side a declared primary key — the dimension — and the
//! other the fact foreign key) and single-table predicates, and emits the
//! same star-join shape the hand-built SSB plans use: per restricted
//! dimension a select → project-keys → semi-join chain, fact-local selects,
//! one sorted intersection of all position lists, join-backs for the
//! dimension group attributes, `group_by`/`group_by_refine` in `GROUP BY`
//! order, and a grouped (or scalar) sum.  The differential suite in
//! `morph-ssb` asserts the resulting execution is byte-identical to the
//! hand-built [`SsbQuery::plan()`] counterparts.
//!
//! `ORDER BY` is applied as a post-processing permutation of the decompressed
//! result rows by [`CompiledQuery::execute`] — the engine's plans
//! deliberately produce group-discovery order, exactly like the hand-built
//! plans.
//!
//! [`SsbQuery::plan()`]: https://docs.rs/morph-ssb
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
mod error;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use catalog::{Catalog, ColumnDef, TableDef};
pub use error::SqlError;
pub use planner::{compile, compile_with_label, CompiledQuery};

/// Parse `sql` into the typed AST without resolving names.
pub fn parse(sql: &str) -> Result<ast::Query, SqlError> {
    parser::parse(sql)
}
