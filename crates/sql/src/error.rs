//! The structured error type of the SQL front-end.

use std::fmt;

/// A front-end error: malformed text, an unresolvable name, or a construct
/// outside the supported subset.  Every variant is a plain value — the
/// front-end never panics on user input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The text does not lex or parse.  `line` and `column` are 1-based and
    /// point at the offending token.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        column: u32,
        /// What was expected / found.
        message: String,
    },
    /// A `FROM` table that is not in the catalog.
    UnknownTable {
        /// The name as written.
        name: String,
        /// The closest catalog table name, if any is plausibly close.
        did_you_mean: Option<String>,
    },
    /// A column that is not in any `FROM` table (or not in its qualifying
    /// table).
    UnknownColumn {
        /// The name as written.
        name: String,
        /// The closest known column name, if any is plausibly close.
        did_you_mean: Option<String>,
    },
    /// Well-formed SQL outside the supported subset (ambiguous names,
    /// missing restrictions, unsupported expressions, …).
    Unsupported {
        /// Why the query cannot be lowered.
        message: String,
    },
    /// The lowered plan failed static verification
    /// ([`morphstore_engine::verify::verify`]) — a planner bug, reported
    /// as a structured error instead of a panic inside an executor.
    InvalidPlan {
        /// The structural defect the verifier found.
        error: morphstore_engine::verify::PlanError,
    },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at line {line}, column {column}: {message}"),
            SqlError::UnknownTable { name, did_you_mean } => {
                write!(f, "unknown table `{name}`")?;
                if let Some(suggestion) = did_you_mean {
                    write!(f, " (did you mean `{suggestion}`?)")?;
                }
                Ok(())
            }
            SqlError::UnknownColumn { name, did_you_mean } => {
                write!(f, "unknown column `{name}`")?;
                if let Some(suggestion) = did_you_mean {
                    write!(f, " (did you mean `{suggestion}`?)")?;
                }
                Ok(())
            }
            SqlError::Unsupported { message } => write!(f, "unsupported query: {message}"),
            SqlError::InvalidPlan { error } => {
                write!(f, "compiled plan failed verification: {error}")
            }
        }
    }
}

impl std::error::Error for SqlError {}

/// Levenshtein edit distance, used for did-you-mean suggestions.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            current[j + 1] = substitution.min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// The candidate closest to `name` by edit distance, if close enough to be a
/// plausible typo (distance at most 2, or a third of the name's length for
/// long names).
pub(crate) fn nearest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let threshold = 2.max(name.chars().count() / 3);
    candidates
        .map(|candidate| (edit_distance(name, candidate), candidate))
        .min()
        .filter(|(distance, _)| *distance <= threshold)
        .map(|(_, candidate)| candidate.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("lineorderz", "lineorder"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn nearest_suggests_only_plausible_typos() {
        let names = ["lineorder", "customer", "supplier"];
        assert_eq!(
            nearest("lineorderz", names.iter().copied()),
            Some("lineorder".to_string())
        );
        assert_eq!(nearest("zzzzz", names.iter().copied()), None);
    }

    #[test]
    fn display_includes_spans_and_suggestions() {
        let parse = SqlError::Parse {
            line: 2,
            column: 7,
            message: "expected FROM".to_string(),
        };
        assert!(parse.to_string().contains("line 2, column 7"));
        let unknown = SqlError::UnknownColumn {
            name: "lo_revenuez".to_string(),
            did_you_mean: Some("lo_revenue".to_string()),
        };
        assert!(unknown.to_string().contains("did you mean `lo_revenue`"));
    }
}
