//! Recursive-descent parser for the supported SQL subset.
//!
//! Every error is a [`SqlError::Parse`] carrying the 1-based line/column of
//! the offending token; malformed input never panics (the fuzz-style tests
//! in `tests/parser_coverage.rs` hold the front-end to that).

use morphstore_engine::CmpOp;

use crate::ast::{ArithOp, ColumnRef, Expr, Literal, OrderItem, Predicate, Query, SelectItem};
use crate::error::SqlError;
use crate::lexer::{lex, Token, TokenKind};

/// Parse `sql` into a [`Query`].
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let tokens = lex(sql)?;
    let mut parser = Parser { tokens, at: 0 };
    let query = parser.query()?;
    // Allow one trailing semicolon, then require end of input.
    if parser.peek() == &TokenKind::Semicolon {
        parser.advance();
    }
    parser.expect(TokenKind::Eof, "end of input")?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at].kind
    }

    fn advance(&mut self) -> TokenKind {
        let token = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        let span = self.tokens[self.at].span;
        SqlError::Parse {
            line: span.line,
            column: span.column,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), SqlError> {
        if self.peek() == &kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {}", self.peek().describe())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek() {
            TokenKind::Ident(_) => match self.advance() {
                TokenKind::Ident(name) => Ok(name),
                _ => unreachable!(),
            },
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        // Optional `EXPLAIN ANALYZE` prefix (plain EXPLAIN without ANALYZE
        // is not part of the subset — the unexecuted plan is available via
        // `QueryPlan::describe_with_fusion`).
        let explain_analyze = if self.peek() == &TokenKind::Explain {
            self.advance();
            self.expect(TokenKind::Analyze, "ANALYZE after EXPLAIN")?;
            true
        } else {
            false
        };
        self.expect(TokenKind::Select, "SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.peek() == &TokenKind::Comma {
            self.advance();
            select.push(self.select_item()?);
        }

        self.expect(TokenKind::From, "FROM")?;
        let mut from = vec![self.ident("a table name")?];
        while self.peek() == &TokenKind::Comma {
            self.advance();
            from.push(self.ident("a table name")?);
        }

        let mut predicates = Vec::new();
        if self.peek() == &TokenKind::Where {
            self.advance();
            predicates.push(self.predicate()?);
            while self.peek() == &TokenKind::And {
                self.advance();
                predicates.push(self.predicate()?);
            }
        }

        let mut group_by = Vec::new();
        if self.peek() == &TokenKind::Group {
            self.advance();
            self.expect(TokenKind::By, "BY after GROUP")?;
            group_by.push(self.column_ref()?);
            while self.peek() == &TokenKind::Comma {
                self.advance();
                group_by.push(self.column_ref()?);
            }
        }

        let mut order_by = Vec::new();
        if self.peek() == &TokenKind::Order {
            self.advance();
            self.expect(TokenKind::By, "BY after ORDER")?;
            order_by.push(self.order_item()?);
            while self.peek() == &TokenKind::Comma {
                self.advance();
                order_by.push(self.order_item()?);
            }
        }

        Ok(Query {
            explain_analyze,
            select,
            from,
            predicates,
            group_by,
            order_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let item = if self.peek() == &TokenKind::Sum {
            self.advance();
            self.expect(TokenKind::LParen, "`(` after SUM")?;
            let expr = self.expr()?;
            self.expect(TokenKind::RParen, "`)` closing SUM")?;
            SelectItem::Sum { expr, alias: None }
        } else {
            SelectItem::Column {
                column: self.column_ref()?,
                alias: None,
            }
        };
        let alias = if self.peek() == &TokenKind::As {
            self.advance();
            Some(self.ident("an alias after AS")?)
        } else {
            None
        };
        Ok(match item {
            SelectItem::Sum { expr, .. } => SelectItem::Sum { expr, alias },
            SelectItem::Column { column, .. } => SelectItem::Column { column, alias },
        })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.ident("a column name")?;
        if self.peek() == &TokenKind::Dot {
            self.advance();
            let column = self.ident("a column name after `.`")?;
            Ok(ColumnRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn literal(&mut self) -> Result<Literal, SqlError> {
        match self.peek() {
            TokenKind::Number(value) => {
                let value = *value;
                self.advance();
                Ok(Literal::Number(value))
            }
            TokenKind::StringLit(_) => match self.advance() {
                TokenKind::StringLit(text) => Ok(Literal::Str(text)),
                _ => unreachable!(),
            },
            other => Err(self.error(format!("expected a literal, found {}", other.describe()))),
        }
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn term(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.factor()?;
        while self.peek() == &TokenKind::Star {
            self.advance();
            let rhs = self.factor()?;
            lhs = Expr::Binary {
                op: ArithOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, SqlError> {
        match self.peek() {
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::Number(_) | TokenKind::StringLit(_) => Ok(Expr::Literal(self.literal()?)),
            TokenKind::Ident(_) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(self.error(format!(
                "expected a column, literal or `(`, found {}",
                other.describe()
            ))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate, SqlError> {
        let column = self.column_ref()?;
        match self.peek().clone() {
            TokenKind::Between => {
                self.advance();
                let low = self.literal()?;
                self.expect(TokenKind::And, "AND in BETWEEN")?;
                let high = self.literal()?;
                Ok(Predicate::Between { column, low, high })
            }
            TokenKind::In => {
                self.advance();
                self.expect(TokenKind::LParen, "`(` after IN")?;
                let mut values = vec![self.literal()?];
                while self.peek() == &TokenKind::Comma {
                    self.advance();
                    values.push(self.literal()?);
                }
                self.expect(TokenKind::RParen, "`)` closing IN")?;
                Ok(Predicate::In { column, values })
            }
            TokenKind::Eq => {
                self.advance();
                // `a = b` with a column on the right is an equi-join;
                // `a = <literal>` is a point restriction.
                if matches!(self.peek(), TokenKind::Ident(_)) {
                    let right = self.column_ref()?;
                    Ok(Predicate::Join {
                        left: column,
                        right,
                    })
                } else {
                    Ok(Predicate::Compare {
                        column,
                        op: CmpOp::Eq,
                        value: self.literal()?,
                    })
                }
            }
            kind @ (TokenKind::NotEq
            | TokenKind::Lt
            | TokenKind::Le
            | TokenKind::Gt
            | TokenKind::Ge) => {
                self.advance();
                let op = match kind {
                    TokenKind::NotEq => CmpOp::Ne,
                    TokenKind::Lt => CmpOp::Lt,
                    TokenKind::Le => CmpOp::Le,
                    TokenKind::Gt => CmpOp::Gt,
                    TokenKind::Ge => CmpOp::Ge,
                    _ => unreachable!(),
                };
                Ok(Predicate::Compare {
                    column,
                    op,
                    value: self.literal()?,
                })
            }
            other => Err(self.error(format!(
                "expected a comparison, BETWEEN or IN, found {}",
                other.describe()
            ))),
        }
    }

    fn order_item(&mut self) -> Result<OrderItem, SqlError> {
        let column = self.column_ref()?;
        let desc = match self.peek() {
            TokenKind::Asc => {
                self.advance();
                false
            }
            TokenKind::Desc => {
                self.advance();
                true
            }
            _ => false,
        };
        Ok(OrderItem { column, desc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_ssb_shaped_query() {
        let query = parse(
            "SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1 \
             FROM lineorder, date, part, supplier \
             WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
               AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' \
               AND s_region = 'AMERICA' AND lo_discount BETWEEN 1 AND 3 \
               AND p_mfgr IN ('MFGR#1', 'MFGR#2') AND lo_quantity < 25 \
             GROUP BY d_year, p_brand1 \
             ORDER BY d_year ASC, revenue DESC;",
        )
        .unwrap();
        assert_eq!(query.select.len(), 3);
        assert_eq!(query.from, vec!["lineorder", "date", "part", "supplier"]);
        assert_eq!(query.predicates.len(), 8);
        assert!(matches!(query.predicates[0], Predicate::Join { .. }));
        assert!(matches!(query.predicates[5], Predicate::Between { .. }));
        assert!(matches!(
            query.predicates[6],
            Predicate::In { ref values, .. } if values.len() == 2
        ));
        assert_eq!(query.group_by.len(), 2);
        assert_eq!(query.order_by.len(), 2);
        assert!(query.order_by[1].desc);
    }

    #[test]
    fn arithmetic_is_left_associative_with_precedence() {
        let query = parse("SELECT SUM(a + b * c - d) FROM t").unwrap();
        let SelectItem::Sum { expr, .. } = &query.select[0] else {
            panic!("expected SUM");
        };
        // ((a + (b * c)) - d)
        assert_eq!(expr.to_string(), "((a + (b * c)) - d)");
    }

    #[test]
    fn qualified_columns_parse() {
        let query = parse("SELECT t.a FROM t WHERE t.a = 1 GROUP BY t.a").unwrap();
        let SelectItem::Column { column, .. } = &query.select[0] else {
            panic!("expected column");
        };
        assert_eq!(column.table.as_deref(), Some("t"));
    }

    #[test]
    fn canonical_display_round_trips() {
        let text = "SELECT SUM((lo_extendedprice * lo_discount)) AS revenue \
                    FROM lineorder, date \
                    WHERE lo_orderdate = d_datekey AND d_year = 1993 \
                    AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25";
        let query = parse(text).unwrap();
        assert_eq!(parse(&query.to_string()).unwrap(), query);
    }

    #[test]
    fn reserved_words_are_not_identifiers() {
        for bad in [
            "SELECT select FROM t",
            "SELECT a FROM from",
            "SELECT a FROM t WHERE where = 1",
            "SELECT a FROM t GROUP BY group",
        ] {
            assert!(matches!(parse(bad), Err(SqlError::Parse { .. })), "{bad}");
        }
    }

    #[test]
    fn error_positions_point_at_the_offending_token() {
        match parse("SELECT a\nFROM") {
            Err(SqlError::Parse { line, column, .. }) => assert_eq!((line, column), (2, 5)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
