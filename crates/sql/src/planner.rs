//! Name resolution and lowering of parsed queries into [`QueryPlan`] DAGs.
//!
//! The lowering emits exactly the star-join shape the hand-built SSB plans
//! use (see `morph-ssb`'s flight modules):
//!
//! 1. every `FROM` dimension with predicates is reduced to its qualifying
//!    primary keys (select per conjunct, intersect, project) and the fact
//!    table is restricted by one semi-join per such dimension;
//! 2. fact-local predicates become selections; all position lists are
//!    intersected (sorted position lists make the intersection
//!    order-insensitive, so the restricted set — and everything derived
//!    from it — is independent of construction details);
//! 3. `GROUP BY` attributes from dimensions are fetched per restricted fact
//!    row by an N:1 join back over the projected foreign keys (assuming
//!    foreign-key integrity, dimensions without predicates restrict
//!    nothing — the same assumption the hand-built plans make);
//! 4. grouping applies `group_by` / `group_by_refine` in `GROUP BY` order
//!    and the single `SUM` aggregate becomes a `calc` tree over projected
//!    fact measures feeding a (grouped) summation.
//!
//! Group keys are emitted in `GROUP BY` order and rows in group-discovery
//! order, which is what makes SQL-compiled execution *byte-identical* to the
//! hand-built plans; `ORDER BY` is applied by [`CompiledQuery::execute`] as
//! a permutation of the finished rows.

use std::collections::HashMap;
use std::collections::HashSet;

use morphstore_engine::plan::{
    ColRef, ColumnSource, GroupRef, PlanBuilder, PlanExecutor, PlanOutput, QueryPlan,
};
use morphstore_engine::{BinaryOp, CmpOp, ExecutionContext, ParallelExecutor};

use crate::ast::{ColumnRef, Expr, Literal, Predicate, Query, SelectItem};
use crate::catalog::{Catalog, TableDef};
use crate::error::SqlError;
use crate::parser;

/// What an `ORDER BY` item sorts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderTarget {
    /// The i-th group-key output column.
    Key(usize),
    /// The aggregate value column.
    Aggregate,
}

/// A compiled query: the engine plan plus the post-processing (`ORDER BY`)
/// the plan itself does not perform.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    plan: QueryPlan,
    key_count: usize,
    order_by: Vec<(OrderTarget, bool)>,
    explain_analyze: bool,
}

impl CompiledQuery {
    /// The lowered engine plan (rows in group-discovery order, group keys in
    /// `GROUP BY` order — the same contract as the hand-built SSB plans).
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Whether the query was prefixed with `EXPLAIN ANALYZE`: the caller
    /// should execute under a tracer and render the per-node profile with
    /// [`QueryPlan::explain_analyze`] alongside the result.
    pub fn is_explain_analyze(&self) -> bool {
        self.explain_analyze
    }

    /// Number of group-key output columns (0 for a scalar aggregate).
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    /// Whether the query is a bare aggregate without `GROUP BY`.
    pub fn is_scalar(&self) -> bool {
        self.key_count == 0
    }

    /// Whether an `ORDER BY` permutation is applied after execution.
    pub fn has_order_by(&self) -> bool {
        !self.order_by.is_empty()
    }

    /// Execute serially and apply `ORDER BY`.
    pub fn execute(&self, source: &dyn ColumnSource, ctx: &mut ExecutionContext) -> PlanOutput {
        self.ordered(PlanExecutor.execute(&self.plan, source, ctx))
    }

    /// Fallible counterpart of [`CompiledQuery::execute`]: a tripped
    /// [`QueryGovernor`](morphstore_engine::QueryGovernor) limit or a
    /// decode failure returns a structured
    /// [`ExecError`](morphstore_engine::ExecError) instead of unwinding.
    pub fn try_execute(
        &self,
        source: &dyn ColumnSource,
        ctx: &mut ExecutionContext,
    ) -> Result<PlanOutput, morphstore_engine::ExecError> {
        PlanExecutor
            .try_execute(&self.plan, source, ctx)
            .map(|output| self.ordered(output))
    }

    /// Fallible counterpart of [`CompiledQuery::execute_parallel`]
    /// (see [`CompiledQuery::try_execute`]).
    pub fn try_execute_parallel(
        &self,
        source: &(dyn ColumnSource + Sync),
        ctx: &mut ExecutionContext,
        threads: usize,
    ) -> Result<PlanOutput, morphstore_engine::ExecError> {
        ParallelExecutor::new(threads)
            .try_execute(&self.plan, source, ctx)
            .map(|output| self.ordered(output))
    }

    /// Execute on `threads` workers and apply `ORDER BY`.
    pub fn execute_parallel(
        &self,
        source: &(dyn ColumnSource + Sync),
        ctx: &mut ExecutionContext,
        threads: usize,
    ) -> PlanOutput {
        self.ordered(ParallelExecutor::new(threads).execute(&self.plan, source, ctx))
    }

    /// Apply the query's `ORDER BY` permutation to a raw plan output.
    pub fn ordered(&self, output: PlanOutput) -> PlanOutput {
        if self.order_by.is_empty() || output.values.len() <= 1 {
            return output;
        }
        let mut permutation: Vec<usize> = (0..output.values.len()).collect();
        permutation.sort_by(|&a, &b| {
            for &(target, desc) in &self.order_by {
                let (left, right) = match target {
                    OrderTarget::Key(k) => (output.group_keys[k][a], output.group_keys[k][b]),
                    OrderTarget::Aggregate => (output.values[a], output.values[b]),
                };
                let ordering = if desc {
                    right.cmp(&left)
                } else {
                    left.cmp(&right)
                };
                if ordering != std::cmp::Ordering::Equal {
                    return ordering;
                }
            }
            std::cmp::Ordering::Equal
        });
        PlanOutput {
            group_keys: output
                .group_keys
                .iter()
                .map(|column| permutation.iter().map(|&i| column[i]).collect())
                .collect(),
            values: permutation.iter().map(|&i| output.values[i]).collect(),
        }
    }
}

/// Compile `sql` against `catalog` with the default plan label `"sql"`.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<CompiledQuery, SqlError> {
    compile_with_label(sql, catalog, "sql")
}

/// Compile `sql` against `catalog`, labelling the plan (and thereby its
/// `"<label>/<step>"` intermediate names) with `label`.
///
/// Labels do not affect results or subplan cache keys (those are structural),
/// only the names under which footprints and timings are recorded.
pub fn compile_with_label(
    sql: &str,
    catalog: &Catalog,
    label: &str,
) -> Result<CompiledQuery, SqlError> {
    let query = parser::parse(sql)?;
    let resolved = resolve(&query, catalog)?;
    let mut compiled = lower(&resolved, label);
    compiled.explain_analyze = query.explain_analyze;
    // Every compiled plan passes static verification before it reaches an
    // executor: a planner bug surfaces here as a structured error naming
    // the defective node, never as a panic mid-execution.
    morphstore_engine::verify::verify(&compiled.plan)
        .map_err(|error| SqlError::InvalidPlan { error })?;
    Ok(compiled)
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// A resolved single-table predicate.
#[derive(Debug, Clone)]
enum PredKind {
    Cmp(CmpOp, u64),
    Between(u64, u64),
    In(Vec<u64>),
}

#[derive(Debug, Clone)]
struct ResolvedPred {
    table: usize,
    column: String,
    kind: PredKind,
}

/// A dimension's equi-join to the fact table.
#[derive(Debug, Clone)]
struct DimJoin {
    /// FROM index of the dimension.
    table: usize,
    /// Fact foreign-key column name.
    fk: String,
    /// Dimension primary-key column name.
    pk: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ResolvedColumn {
    table: usize,
    column: String,
}

struct Resolved<'a> {
    tables: Vec<&'a TableDef>,
    fact: usize,
    dims: Vec<DimJoin>,
    predicates: Vec<ResolvedPred>,
    /// The single SUM expression, over fact columns only.
    sum: Expr,
    group_by: Vec<ResolvedColumn>,
    order_by: Vec<(OrderTarget, bool)>,
}

fn unsupported(message: impl Into<String>) -> SqlError {
    SqlError::Unsupported {
        message: message.into(),
    }
}

fn resolve<'a>(query: &Query, catalog: &'a Catalog) -> Result<Resolved<'a>, SqlError> {
    // FROM tables.
    let mut tables: Vec<&TableDef> = Vec::new();
    for name in &query.from {
        let table = catalog.table(name)?;
        if tables.iter().any(|t| t.name == table.name) {
            return Err(unsupported(format!("table `{name}` appears twice in FROM")));
        }
        tables.push(table);
    }

    let resolve_column = |column: &ColumnRef| -> Result<ResolvedColumn, SqlError> {
        if let Some(qualifier) = &column.table {
            let table = catalog.table(qualifier)?;
            let Some(index) = tables.iter().position(|t| t.name == table.name) else {
                return Err(unsupported(format!(
                    "table `{qualifier}` is not listed in FROM"
                )));
            };
            if table.column(&column.column).is_none() {
                return Err(catalog.unknown_column(&column.column, &[table]));
            }
            return Ok(ResolvedColumn {
                table: index,
                column: column.column.clone(),
            });
        }
        let matches: Vec<usize> = tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.column(&column.column).is_some())
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [index] => Ok(ResolvedColumn {
                table: *index,
                column: column.column.clone(),
            }),
            [] => Err(catalog.unknown_column(&column.column, &tables)),
            many => Err(unsupported(format!(
                "ambiguous column `{}` (in tables {})",
                column.column,
                many.iter()
                    .map(|&i| tables[i].name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    };

    let resolve_literal =
        |table: &TableDef, column: &str, literal: &Literal| -> Result<u64, SqlError> {
            let def = table
                .column(column)
                .expect("column resolved before literal");
            match literal {
                Literal::Number(value) => Ok(*value),
                Literal::Str(text) => {
                    if !def.has_dictionary() {
                        return Err(unsupported(format!(
                            "column `{column}` is not a string column (no dictionary)"
                        )));
                    }
                    def.key_of(text).ok_or_else(|| {
                        unsupported(format!(
                            "string '{text}' is not in the dictionary of column `{column}`"
                        ))
                    })
                }
            }
        };

    // Classify WHERE conjuncts.
    let mut joins: Vec<(ResolvedColumn, ResolvedColumn)> = Vec::new();
    let mut raw_preds: Vec<(ResolvedColumn, PredKind)> = Vec::new();
    for predicate in &query.predicates {
        match predicate {
            Predicate::Join { left, right } => {
                joins.push((resolve_column(left)?, resolve_column(right)?));
            }
            Predicate::Compare { column, op, value } => {
                let col = resolve_column(column)?;
                let constant = resolve_literal(tables[col.table], &col.column, value)?;
                raw_preds.push((col, PredKind::Cmp(*op, constant)));
            }
            Predicate::Between { column, low, high } => {
                let col = resolve_column(column)?;
                let low = resolve_literal(tables[col.table], &col.column, low)?;
                let high = resolve_literal(tables[col.table], &col.column, high)?;
                raw_preds.push((col, PredKind::Between(low, high)));
            }
            Predicate::In { column, values } => {
                let col = resolve_column(column)?;
                let resolved: Result<Vec<u64>, SqlError> = values
                    .iter()
                    .map(|v| resolve_literal(tables[col.table], &col.column, v))
                    .collect();
                raw_preds.push((col, PredKind::In(resolved?)));
            }
        }
    }

    // Orient the joins: the declared-primary-key side is the dimension.
    let mut fact: Option<usize> = None;
    let mut dims: Vec<DimJoin> = Vec::new();
    for (left, right) in joins {
        let is_pk = |c: &ResolvedColumn| tables[c.table].primary_key.as_deref() == Some(&c.column);
        let (dim_side, fact_side) = match (is_pk(&left), is_pk(&right)) {
            (true, false) => (left, right),
            (false, true) => (right, left),
            (true, true) => {
                return Err(unsupported(format!(
                    "join `{} = {}` connects two primary keys; only dimension-to-fact \
                     equi-joins are supported",
                    left.column, right.column
                )))
            }
            (false, false) => {
                return Err(unsupported(format!(
                    "join `{} = {}` involves no declared primary key",
                    left.column, right.column
                )))
            }
        };
        if dim_side.table == fact_side.table {
            return Err(unsupported("self-joins are not supported"));
        }
        match fact {
            None => fact = Some(fact_side.table),
            Some(existing) if existing == fact_side.table => {}
            Some(existing) => {
                return Err(unsupported(format!(
                    "joins target two different fact tables (`{}` and `{}`)",
                    tables[existing].name, tables[fact_side.table].name
                )))
            }
        }
        if dims.iter().any(|d| d.table == dim_side.table) {
            return Err(unsupported(format!(
                "dimension `{}` is joined more than once",
                tables[dim_side.table].name
            )));
        }
        dims.push(DimJoin {
            table: dim_side.table,
            fk: fact_side.column,
            pk: dim_side.column,
        });
    }
    let fact = match fact {
        Some(fact) => fact,
        None if tables.len() == 1 => 0,
        None => {
            return Err(unsupported(
                "multiple FROM tables require equi-join predicates (cartesian products \
                 are not supported)",
            ))
        }
    };
    // Every non-fact table must be joined to the fact.
    for (index, table) in tables.iter().enumerate() {
        if index != fact && !dims.iter().any(|d| d.table == index) {
            return Err(unsupported(format!(
                "table `{}` is not joined to the fact table",
                table.name
            )));
        }
    }

    let predicates: Vec<ResolvedPred> = raw_preds
        .into_iter()
        .map(|(col, kind)| ResolvedPred {
            table: col.table,
            column: col.column,
            kind,
        })
        .collect();

    // The fact table must be restricted somehow: an unrestricted full scan
    // would materialise every position, which the engine's star-join shape
    // does not model.
    if predicates.is_empty() {
        return Err(unsupported(
            "the query restricts nothing; at least one WHERE predicate is required",
        ));
    }

    // SELECT list: exactly one SUM aggregate; every other item must be a
    // GROUP BY column.
    let mut sum: Option<Expr> = None;
    let mut sum_alias: Option<String> = None;
    let mut selected_columns: Vec<(ResolvedColumn, Option<String>)> = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Sum { expr, alias } => {
                if sum.is_some() {
                    return Err(unsupported("only a single SUM aggregate is supported"));
                }
                check_sum_expr(expr, fact, &tables, &resolve_column)?;
                sum = Some(expr.clone());
                sum_alias = alias.clone();
            }
            SelectItem::Column { column, alias } => {
                selected_columns.push((resolve_column(column)?, alias.clone()));
            }
        }
    }
    let Some(sum) = sum else {
        return Err(unsupported(
            "the SELECT list needs exactly one SUM aggregate",
        ));
    };

    // GROUP BY columns; selected plain columns must be exactly the GROUP BY
    // set (standard SQL would reject anything else anyway).
    let group_by: Vec<ResolvedColumn> = query
        .group_by
        .iter()
        .map(&resolve_column)
        .collect::<Result<_, _>>()?;
    let group_set: HashSet<&ResolvedColumn> = group_by.iter().collect();
    for (column, _) in &selected_columns {
        if !group_set.contains(column) {
            return Err(unsupported(format!(
                "selected column `{}` does not appear in GROUP BY",
                column.column
            )));
        }
    }
    // Dimension group attributes need a join to fetch them.
    for column in &group_by {
        if column.table != fact && !dims.iter().any(|d| d.table == column.table) {
            return Err(unsupported(format!(
                "GROUP BY column `{}` is from a table not joined to the fact",
                column.column
            )));
        }
    }

    // ORDER BY: the aggregate (by its alias) or a GROUP BY column (by name,
    // alias, or qualified reference).
    let mut order_by = Vec::new();
    for item in &query.order_by {
        let name = &item.column.column;
        let target = if item.column.table.is_none() && sum_alias.as_deref() == Some(name) {
            OrderTarget::Aggregate
        } else if let Some(position) = (item.column.table.is_none())
            .then(|| {
                selected_columns
                    .iter()
                    .position(|(_, alias)| alias.as_deref() == Some(name))
            })
            .flatten()
            .and_then(|i| {
                let column = &selected_columns[i].0;
                group_by.iter().position(|g| g == column)
            })
        {
            OrderTarget::Key(position)
        } else {
            let column = resolve_column(&item.column)?;
            match group_by.iter().position(|g| *g == column) {
                Some(position) => OrderTarget::Key(position),
                None => {
                    return Err(unsupported(format!(
                        "ORDER BY `{name}` is neither a GROUP BY column nor the aggregate"
                    )))
                }
            }
        };
        order_by.push((target, item.desc));
    }

    Ok(Resolved {
        tables,
        fact,
        dims,
        predicates,
        sum,
        group_by,
        order_by,
    })
}

/// SUM expressions range over fact columns combined with `+`/`-`/`*`.
fn check_sum_expr(
    expr: &Expr,
    fact: usize,
    tables: &[&TableDef],
    resolve_column: &impl Fn(&ColumnRef) -> Result<ResolvedColumn, SqlError>,
) -> Result<(), SqlError> {
    match expr {
        Expr::Column(column) => {
            let resolved = resolve_column(column)?;
            if resolved.table != fact {
                return Err(unsupported(format!(
                    "SUM argument `{}` must be a column of the fact table `{}`",
                    resolved.column, tables[fact].name
                )));
            }
            Ok(())
        }
        Expr::Literal(literal) => Err(unsupported(format!(
            "literal `{literal}` inside SUM is not supported (columns only)"
        ))),
        Expr::Binary { lhs, rhs, .. } => {
            check_sum_expr(lhs, fact, tables, resolve_column)?;
            check_sum_expr(rhs, fact, tables, resolve_column)
        }
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Unique step-name generator (`PlanBuilder` requires unique step names).
struct Names {
    used: HashSet<String>,
}

impl Names {
    fn new() -> Names {
        Names {
            used: HashSet::new(),
        }
    }

    fn fresh(&mut self, base: &str) -> String {
        if self.used.insert(base.to_string()) {
            return base.to_string();
        }
        for suffix in 2.. {
            let candidate = format!("{base}_{suffix}");
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
        unreachable!()
    }
}

/// Append a selection for `kind` over the scan of `column`.
fn filter(
    p: &mut PlanBuilder,
    names: &mut Names,
    base: &str,
    column: &str,
    kind: &PredKind,
) -> ColRef {
    let input = p.scan(column);
    match kind {
        PredKind::Cmp(op, constant) => {
            let name = names.fresh(base);
            p.select(&name, input, *op, *constant)
        }
        PredKind::Between(low, high) => {
            let name = names.fresh(base);
            p.select_between(&name, input, *low, *high)
        }
        PredKind::In(values) => match values.as_slice() {
            [] => unreachable!("the grammar requires at least one IN value"),
            [single] => {
                let name = names.fresh(base);
                p.select(&name, input, CmpOp::Eq, *single)
            }
            [first, second] => {
                let name = names.fresh(base);
                p.select_in2(&name, input, *first, *second)
            }
            [first, second, rest @ ..] => {
                // IN with more than two values: a select_in2 seed merged
                // with one equality selection per further value (sorted
                // unions keep the position list sorted).
                let name = names.fresh(base);
                let mut positions = p.select_in2(&name, input, *first, *second);
                for value in rest {
                    let sel_name = names.fresh(base);
                    let sel = p.select(&sel_name, input, CmpOp::Eq, *value);
                    let merge_name = names.fresh(&format!("{base}_union"));
                    positions = p.merge_sorted(&merge_name, positions, sel);
                }
                positions
            }
        },
    }
}

/// Project `column` at the restricted fact positions, sharing one projection
/// per column (the hand-built plans share e.g. `orderdate_at_pos` the same
/// way).
fn at_pos(
    p: &mut PlanBuilder,
    names: &mut Names,
    cache: &mut HashMap<String, ColRef>,
    column: &str,
    pos: ColRef,
) -> ColRef {
    if let Some(&found) = cache.get(column) {
        return found;
    }
    let scanned = p.scan(column);
    let name = names.fresh(&format!("{column}_at_pos"));
    let projected = p.project(&name, scanned, pos);
    cache.insert(column.to_string(), projected);
    projected
}

fn lower(resolved: &Resolved<'_>, label: &str) -> CompiledQuery {
    let mut p = PlanBuilder::new(label);
    let mut names = Names::new();

    // 1. Per-dimension restrictions (FROM order) → semi-join position lists.
    let mut pos_lists: Vec<ColRef> = Vec::new();
    for dim in &resolved.dims {
        let table = resolved.tables[dim.table];
        let preds: Vec<&ResolvedPred> = resolved
            .predicates
            .iter()
            .filter(|pred| pred.table == dim.table)
            .collect();
        if preds.is_empty() {
            // Unrestricted dimension: restricts nothing under foreign-key
            // integrity (the hand-built plans skip the semi-join too).
            continue;
        }
        let mut dim_pos: Option<ColRef> = None;
        for pred in preds {
            let base = format!("{}_pos", table.name);
            let selected = filter(&mut p, &mut names, &base, &pred.column, &pred.kind);
            dim_pos = Some(match dim_pos {
                None => selected,
                Some(previous) => {
                    let name = names.fresh(&format!("{}_pos_all", table.name));
                    p.intersect_sorted(&name, previous, selected)
                }
            });
        }
        let pk = p.scan(&dim.pk);
        let keys_name = names.fresh(&format!("{}_keys", table.name));
        let keys = p.project(&keys_name, pk, dim_pos.expect("at least one predicate"));
        let fk = p.scan(&dim.fk);
        let pos_name = names.fresh(&format!("pos_{}", table.name));
        pos_lists.push(p.semi_join(&pos_name, fk, keys));
    }

    // 2. Fact-local predicates (WHERE order) → selection position lists.
    for pred in &resolved.predicates {
        if pred.table != resolved.fact {
            continue;
        }
        let base = format!("pos_{}", pred.column);
        pos_lists.push(filter(&mut p, &mut names, &base, &pred.column, &pred.kind));
    }

    // 3. One sorted intersection of everything.
    let mut iter = pos_lists.into_iter();
    let mut pos = iter.next().expect("resolution guarantees a restriction");
    for next in iter {
        let name = names.fresh("pos");
        pos = p.intersect_sorted(&name, pos, next);
    }

    // 4. Group-by attributes per restricted fact row, in GROUP BY order.
    let mut projections: HashMap<String, ColRef> = HashMap::new();
    let mut per_row_columns: Vec<ColRef> = Vec::new();
    for column in &resolved.group_by {
        if column.table == resolved.fact {
            per_row_columns.push(at_pos(
                &mut p,
                &mut names,
                &mut projections,
                &column.column,
                pos,
            ));
            continue;
        }
        let dim = resolved
            .dims
            .iter()
            .find(|d| d.table == column.table)
            .expect("resolution checked the join");
        let fk_at_pos = at_pos(&mut p, &mut names, &mut projections, &dim.fk, pos);
        let pk = p.scan(&dim.pk);
        let attr = p.scan(&column.column);
        let dimpos_name = names.fresh(&format!("{}_dimpos", column.column));
        let dim_positions = p.join(&dimpos_name, fk_at_pos, pk);
        let per_row_name = names.fresh(&format!("{}_per_row", column.column));
        per_row_columns.push(p.project(&per_row_name, attr, dim_positions));
    }

    // 5. Grouping in GROUP BY order.
    let mut group: Option<GroupRef> = None;
    for &per_row in &per_row_columns {
        group = Some(match group {
            None => {
                let name = names.fresh("group");
                p.group_by(&name, per_row)
            }
            Some(previous) => {
                let name = names.fresh("group_refine");
                p.group_by_refine(&name, previous, per_row)
            }
        });
    }

    // 6. The aggregate: a calc tree over projected fact measures.
    let values = lower_sum_expr(&resolved.sum, &mut p, &mut names, &mut projections, pos);

    let plan = match group {
        Some(group) => {
            let sum_name = names.fresh("sum");
            let sums = p.agg_sum_grouped(&sum_name, group, values);
            let keys: Vec<ColRef> = per_row_columns
                .iter()
                .enumerate()
                .map(|(i, &per_row)| {
                    let name = names.fresh(&format!("result_{i}"));
                    p.project(&name, per_row, group.representatives())
                })
                .collect();
            p.finish_grouped(keys, sums)
        }
        None => {
            let sum_name = names.fresh("sum");
            let total = p.agg_sum(&sum_name, values);
            p.finish_scalar(total)
        }
    };

    CompiledQuery {
        plan,
        key_count: resolved.group_by.len(),
        order_by: resolved.order_by.clone(),
        explain_analyze: false,
    }
}

fn lower_sum_expr(
    expr: &Expr,
    p: &mut PlanBuilder,
    names: &mut Names,
    projections: &mut HashMap<String, ColRef>,
    pos: ColRef,
) -> ColRef {
    match expr {
        Expr::Column(column) => at_pos(p, names, projections, &column.column, pos),
        Expr::Literal(_) => unreachable!("rejected during resolution"),
        Expr::Binary { op, lhs, rhs } => {
            let lhs = lower_sum_expr(lhs, p, names, projections, pos);
            let rhs = lower_sum_expr(rhs, p, names, projections, pos);
            let op = match op {
                crate::ast::ArithOp::Add => BinaryOp::Add,
                crate::ast::ArithOp::Sub => BinaryOp::Sub,
                crate::ast::ArithOp::Mul => BinaryOp::Mul,
            };
            let name = names.fresh("calc");
            p.calc_binary(&name, op, lhs, rhs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_storage::Column;
    use morphstore_engine::exec::FormatConfig;
    use morphstore_engine::ExecSettings;

    /// A two-table star: `fact(f_dim, f_a, f_b)` and `dim(d_key, d_attr,
    /// d_color)` with a color dictionary.
    fn catalog() -> Catalog {
        Catalog::new()
            .with_table(
                crate::TableDef::new("dim")
                    .with_primary_key("d_key")
                    .with_column("d_key")
                    .with_column("d_attr")
                    .with_dict_column(
                        "d_color",
                        [
                            ("RED".to_string(), 0),
                            ("GREEN".to_string(), 1),
                            ("BLUE".to_string(), 2),
                        ],
                    ),
            )
            .with_table(
                crate::TableDef::new("fact")
                    .with_column("f_dim")
                    .with_column("f_a")
                    .with_column("f_b"),
            )
    }

    fn source() -> std::collections::HashMap<String, Column> {
        let mut columns = std::collections::HashMap::new();
        // dim: keys 10,20,30 with attrs 7,8,9 and colors RED,GREEN,BLUE.
        columns.insert("d_key".to_string(), Column::from_vec(vec![10, 20, 30]));
        columns.insert("d_attr".to_string(), Column::from_vec(vec![7, 8, 9]));
        columns.insert("d_color".to_string(), Column::from_vec(vec![0, 1, 2]));
        // fact: 6 rows.
        columns.insert(
            "f_dim".to_string(),
            Column::from_vec(vec![10, 20, 10, 30, 20, 10]),
        );
        columns.insert("f_a".to_string(), Column::from_vec(vec![1, 2, 3, 4, 5, 6]));
        columns.insert(
            "f_b".to_string(),
            Column::from_vec(vec![10, 10, 10, 10, 10, 10]),
        );
        columns
    }

    fn run(sql: &str) -> PlanOutput {
        let compiled = compile(sql, &catalog()).unwrap();
        let mut ctx = ExecutionContext::new(
            ExecSettings::scalar_uncompressed(),
            FormatConfig::uncompressed(),
        );
        compiled.execute(&source(), &mut ctx)
    }

    #[test]
    fn scalar_aggregate_over_semi_join() {
        // Rows with GREEN or BLUE dims: f_dim in {20, 30} → f_a 2, 4, 5.
        let output = run("SELECT SUM(f_a) FROM fact, dim \
             WHERE f_dim = d_key AND d_color IN ('GREEN', 'BLUE')");
        assert!(output.group_keys.is_empty());
        assert_eq!(output.values, vec![11]);
    }

    #[test]
    fn grouped_aggregate_with_arithmetic_and_order() {
        // All rows; group by d_attr; SUM(f_a * f_b).
        let output = run("SELECT d_attr, SUM(f_a * f_b) AS total FROM fact, dim \
             WHERE f_dim = d_key AND f_a >= 1 \
             GROUP BY d_attr ORDER BY total DESC");
        // attr 7 (key 10): rows 1,3,6 → 100; attr 8 (key 20): 2,5 → 70;
        // attr 9 (key 30): 4 → 40.
        assert_eq!(output.group_keys, vec![vec![7, 8, 9]]);
        assert_eq!(output.values, vec![100, 70, 40]);
    }

    #[test]
    fn order_by_key_ascending_and_descending() {
        let ascending = run("SELECT d_attr, SUM(f_a) FROM fact, dim \
             WHERE f_dim = d_key AND f_a >= 1 GROUP BY d_attr ORDER BY d_attr");
        assert_eq!(ascending.group_keys, vec![vec![7, 8, 9]]);
        let descending = run("SELECT d_attr, SUM(f_a) FROM fact, dim \
             WHERE f_dim = d_key AND f_a >= 1 GROUP BY d_attr ORDER BY d_attr DESC");
        assert_eq!(descending.group_keys, vec![vec![9, 8, 7]]);
        assert_eq!(descending.values, vec![4, 7, 10]);
    }

    #[test]
    fn in_with_three_values_merges_selections() {
        let output = run("SELECT SUM(f_a) FROM fact, dim \
             WHERE f_dim = d_key AND d_color IN ('RED', 'GREEN', 'BLUE')");
        assert_eq!(output.values, vec![21]);
    }

    #[test]
    fn between_on_dictionary_strings() {
        let output = run("SELECT SUM(f_a) FROM fact, dim \
             WHERE f_dim = d_key AND d_color BETWEEN 'RED' AND 'GREEN'");
        // RED=0, GREEN=1 → keys 10, 20 → f_a 1+2+3+5+6.
        assert_eq!(output.values, vec![17]);
    }

    #[test]
    fn unknown_names_get_suggestions() {
        match compile("SELECT SUM(f_a) FROM factz WHERE f_a = 1", &catalog()) {
            Err(SqlError::UnknownTable { did_you_mean, .. }) => {
                assert_eq!(did_you_mean.as_deref(), Some("fact"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match compile("SELECT SUM(f_aa) FROM fact WHERE f_aa = 1", &catalog()) {
            Err(SqlError::UnknownColumn { did_you_mean, .. }) => {
                assert_eq!(did_you_mean.as_deref(), Some("f_a"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        let catalog = catalog();
        for (sql, needle) in [
            ("SELECT SUM(f_a) FROM fact, dim WHERE f_a = 1", "equi-join"),
            ("SELECT SUM(f_a) FROM fact", "restricts nothing"),
            ("SELECT f_a FROM fact WHERE f_a = 1", "SUM aggregate"),
            (
                "SELECT SUM(f_a), SUM(f_b) FROM fact WHERE f_a = 1",
                "single SUM",
            ),
            ("SELECT SUM(f_a * 2) FROM fact WHERE f_a = 1", "literal"),
            (
                "SELECT f_b, SUM(f_a) FROM fact WHERE f_a = 1 GROUP BY f_a",
                "GROUP BY",
            ),
            (
                "SELECT SUM(f_a) FROM fact WHERE f_a = 1 ORDER BY f_b",
                "ORDER BY",
            ),
            (
                "SELECT SUM(d_attr) FROM fact, dim WHERE f_dim = d_key AND f_a = 1",
                "fact table",
            ),
            (
                "SELECT SUM(f_a) FROM fact WHERE f_b = 'RED'",
                "not a string column",
            ),
            (
                "SELECT SUM(f_a) FROM fact, dim WHERE f_dim = d_key AND d_color = 'MAUVE'",
                "not in the dictionary",
            ),
        ] {
            match compile(sql, &catalog) {
                Err(SqlError::Unsupported { message }) => {
                    assert!(message.contains(needle), "{sql}: {message}");
                }
                other => panic!("{sql}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn group_by_fact_column_works() {
        let output = run(
            "SELECT f_dim, SUM(f_a) FROM fact WHERE f_a BETWEEN 1 AND 6 \
             GROUP BY f_dim ORDER BY f_dim",
        );
        assert_eq!(output.group_keys, vec![vec![10, 20, 30]]);
        assert_eq!(output.values, vec![10, 7, 4]);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let compiled = compile(
            "SELECT d_attr, SUM(f_a) FROM fact, dim \
             WHERE f_dim = d_key AND f_a >= 2 GROUP BY d_attr",
            &catalog(),
        )
        .unwrap();
        let source = source();
        let mut serial_ctx = ExecutionContext::new(
            ExecSettings::scalar_uncompressed(),
            FormatConfig::uncompressed(),
        );
        let serial = compiled.execute(&source, &mut serial_ctx);
        let mut parallel_ctx = ExecutionContext::new(
            ExecSettings::scalar_uncompressed(),
            FormatConfig::uncompressed(),
        );
        let parallel = compiled.execute_parallel(&source, &mut parallel_ctx, 4);
        assert_eq!(serial, parallel);
    }
}
