//! Synthetic data generators reproducing the columns of the paper's
//! micro-benchmarks (Table 1) and generic building blocks for workloads.
//!
//! All generators are deterministic for a given seed (the benchmark harness
//! uses fixed seeds so that paper-style experiments are reproducible run to
//! run).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four synthetic columns of Table 1.
///
/// | column | distribution                                   | sorted | max bits |
/// |--------|-----------------------------------------------|--------|----------|
/// | C1     | uniform in `[0, 63]`                           | no     | 6        |
/// | C2     | 99.99 % uniform in `[0, 63]`, 0.01 % `2^63 - 1`| no     | 63       |
/// | C3     | uniform in `[2^62, 2^62 + 63]`                 | no     | 63       |
/// | C4     | uniform in `[2^47, 2^47 + 100_000]`            | yes    | 48       |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticColumn {
    /// Uniform small values.
    C1,
    /// Small values with rare huge outliers.
    C2,
    /// Narrow range of huge values.
    C3,
    /// Sorted values around `2^47`.
    C4,
}

impl SyntheticColumn {
    /// All four columns, in Table 1 order.
    pub fn all() -> [SyntheticColumn; 4] {
        [
            SyntheticColumn::C1,
            SyntheticColumn::C2,
            SyntheticColumn::C3,
            SyntheticColumn::C4,
        ]
    }

    /// Label used in the figures ("C1" … "C4").
    pub fn label(&self) -> &'static str {
        match self {
            SyntheticColumn::C1 => "C1",
            SyntheticColumn::C2 => "C2",
            SyntheticColumn::C3 => "C3",
            SyntheticColumn::C4 => "C4",
        }
    }

    /// Maximum effective bit width of the column per Table 1.
    pub fn max_bit_width(&self) -> u8 {
        match self {
            SyntheticColumn::C1 => 6,
            SyntheticColumn::C2 | SyntheticColumn::C3 => 63,
            SyntheticColumn::C4 => 48,
        }
    }

    /// Whether the column is sorted per Table 1.
    pub fn is_sorted(&self) -> bool {
        matches!(self, SyntheticColumn::C4)
    }

    /// Generate `n` data elements of this column with the given `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed ^ (*self as u64 + 1).wrapping_mul(0x9E37));
        match self {
            SyntheticColumn::C1 => (0..n).map(|_| rng.gen_range(0..=63u64)).collect(),
            SyntheticColumn::C2 => (0..n)
                .map(|_| {
                    if rng.gen_bool(0.0001) {
                        (1u64 << 63) - 1
                    } else {
                        rng.gen_range(0..=63u64)
                    }
                })
                .collect(),
            SyntheticColumn::C3 => {
                let base = 1u64 << 62;
                (0..n).map(|_| base + rng.gen_range(0..=63u64)).collect()
            }
            SyntheticColumn::C4 => {
                let base = 1u64 << 47;
                let mut values: Vec<u64> = (0..n)
                    .map(|_| base + rng.gen_range(0..=100_000u64))
                    .collect();
                values.sort_unstable();
                values
            }
        }
    }

    /// Generate the select-operator micro-benchmark variant of this column
    /// (Section 5.1): 90 % of the elements are the a-priori known lowest
    /// value of the distribution, the remaining 10 % follow the distribution.
    ///
    /// Returns the values and the predicate constant (the lowest value).
    pub fn generate_select_input(&self, n: usize, seed: u64) -> (Vec<u64>, u64) {
        let lowest = match self {
            SyntheticColumn::C1 | SyntheticColumn::C2 => 0,
            SyntheticColumn::C3 => 1u64 << 62,
            SyntheticColumn::C4 => 1u64 << 47,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE ^ (*self as u64 + 1));
        let tail = self.generate(n, seed.wrapping_add(17));
        let mut values: Vec<u64> = (0..n)
            .map(|i| if rng.gen_bool(0.9) { lowest } else { tail[i] })
            .collect();
        if self.is_sorted() {
            values.sort_unstable();
        }
        (values, lowest)
    }
}

/// Uniformly distributed values in `[low, high]`.
pub fn uniform(n: usize, low: u64, high: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(low..=high)).collect()
}

/// Sorted uniformly distributed values in `[low, high]`.
pub fn sorted_uniform(n: usize, low: u64, high: u64, seed: u64) -> Vec<u64> {
    let mut values = uniform(n, low, high, seed);
    values.sort_unstable();
    values
}

/// Values with runs: each run's value is uniform in `[0, distinct)` and each
/// run's length is uniform in `[1, max_run_len]`.
pub fn with_runs(n: usize, distinct: u64, max_run_len: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n);
    while values.len() < n {
        let value = rng.gen_range(0..distinct);
        let run = rng.gen_range(1..=max_run_len).min(n - values.len());
        values.extend(std::iter::repeat_n(value, run));
    }
    values
}

/// A skewed (approximately Zipfian) key distribution over `[0, domain)`,
/// used to model foreign-key columns with popular values.
pub fn skewed_keys(n: usize, domain: u64, skew: f64, seed: u64) -> Vec<u64> {
    assert!(domain > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            // Inverse-power transform: dense near 0, sparse near `domain`.
            let key = (u.powf(1.0 + skew) * domain as f64) as u64;
            key.min(domain - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnStats;

    const N: usize = 100_000;

    #[test]
    fn c1_characteristics_match_table1() {
        let values = SyntheticColumn::C1.generate(N, 42);
        let stats = ColumnStats::from_values(&values);
        assert_eq!(stats.len, N);
        assert!(stats.max <= 63);
        assert_eq!(stats.max_bit_width(), 6);
        assert!(!stats.sorted);
    }

    #[test]
    fn c2_has_rare_huge_outliers() {
        let values = SyntheticColumn::C2.generate(N, 42);
        let stats = ColumnStats::from_values(&values);
        assert_eq!(stats.max, (1 << 63) - 1);
        assert_eq!(stats.max_bit_width(), 63);
        let outliers = values.iter().filter(|&&v| v > 63).count();
        // 0.01 % of 100k = ~10 outliers; allow generous slack.
        assert!(outliers > 0 && outliers < 60, "outliers = {outliers}");
    }

    #[test]
    fn c3_narrow_range_of_huge_values() {
        let values = SyntheticColumn::C3.generate(N, 42);
        let stats = ColumnStats::from_values(&values);
        assert!(stats.min >= 1 << 62);
        assert!(stats.max <= (1 << 62) + 63);
        assert_eq!(stats.max_bit_width(), 63);
        assert_eq!(stats.range_bit_width, 6);
    }

    #[test]
    fn c4_sorted_around_2_pow_47() {
        let values = SyntheticColumn::C4.generate(N, 42);
        let stats = ColumnStats::from_values(&values);
        assert!(stats.sorted);
        assert_eq!(stats.max_bit_width(), 48);
        assert!(stats.min >= 1 << 47);
        assert!(stats.max <= (1 << 47) + 100_000);
    }

    #[test]
    fn table1_metadata_helpers() {
        assert_eq!(SyntheticColumn::all().len(), 4);
        assert_eq!(SyntheticColumn::C1.label(), "C1");
        assert_eq!(SyntheticColumn::C1.max_bit_width(), 6);
        assert_eq!(SyntheticColumn::C4.max_bit_width(), 48);
        assert!(SyntheticColumn::C4.is_sorted());
        assert!(!SyntheticColumn::C2.is_sorted());
    }

    #[test]
    fn generators_are_deterministic() {
        for column in SyntheticColumn::all() {
            assert_eq!(column.generate(1000, 7), column.generate(1000, 7));
            assert_ne!(column.generate(1000, 7), column.generate(1000, 8));
        }
        assert_eq!(uniform(100, 0, 50, 3), uniform(100, 0, 50, 3));
    }

    #[test]
    fn select_input_has_ninety_percent_selectivity() {
        for column in SyntheticColumn::all() {
            let (values, constant) = column.generate_select_input(N, 99);
            let matches = values.iter().filter(|&&v| v == constant).count();
            let fraction = matches as f64 / N as f64;
            assert!(
                (0.85..=0.95).contains(&fraction),
                "{}: fraction {fraction}",
                column.label()
            );
            if column.is_sorted() {
                assert!(values.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn run_generator_produces_runs() {
        let values = with_runs(50_000, 10, 100, 5);
        let stats = ColumnStats::from_values(&values);
        assert_eq!(stats.len, 50_000);
        assert!(stats.avg_run_length() > 5.0);
        assert!(stats.max < 10);
    }

    #[test]
    fn sorted_uniform_is_sorted_and_bounded() {
        let values = sorted_uniform(10_000, 100, 10_000, 11);
        let stats = ColumnStats::from_values(&values);
        assert!(stats.sorted);
        assert!(stats.min >= 100);
        assert!(stats.max <= 10_000);
    }

    #[test]
    fn skewed_keys_prefer_small_values() {
        let keys = skewed_keys(100_000, 1000, 1.0, 3);
        assert!(keys.iter().all(|&k| k < 1000));
        let small = keys.iter().filter(|&&k| k < 100).count();
        // With skew, far more than 10 % of the keys fall into the first 10 %.
        assert!(small > 20_000, "small = {small}");
    }
}
