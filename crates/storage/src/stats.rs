//! Column statistics: the basic data characteristics the cost-based format
//! selection of Section 5.2 assumes to be known for all intermediates —
//! "the number of (distinct) data elements, the bit width histogram, and the
//! sort order".

use std::collections::HashSet;

use morph_compression::bitpack;

use crate::Column;

/// Data characteristics of a column, used by the cost model of `morph-cost`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of data elements.
    pub len: usize,
    /// Smallest value (0 for an empty column).
    pub min: u64,
    /// Largest value (0 for an empty column).
    pub max: u64,
    /// Number of distinct values.
    pub distinct: usize,
    /// Whether the values are in non-decreasing order.
    pub sorted: bool,
    /// Number of runs of equal adjacent values (`0` for an empty column).
    pub runs: usize,
    /// Histogram of effective bit widths: `bit_width_histogram[w - 1]` counts
    /// the values whose effective bit width is `w`.
    pub bit_width_histogram: [usize; 64],
    /// Average of the absolute differences of consecutive values, as an
    /// effective bit width; characterises how well DELTA works.
    pub avg_delta_bit_width: f64,
    /// Effective bit width of `max - min`; characterises how well FOR works.
    pub range_bit_width: u8,
}

impl ColumnStats {
    /// Compute statistics from a slice of values.
    pub fn from_values(values: &[u64]) -> ColumnStats {
        let len = values.len();
        if len == 0 {
            return ColumnStats {
                len: 0,
                min: 0,
                max: 0,
                distinct: 0,
                sorted: true,
                runs: 0,
                bit_width_histogram: [0; 64],
                avg_delta_bit_width: 0.0,
                range_bit_width: 1,
            };
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sorted = true;
        let mut runs = 1usize;
        let mut histogram = [0usize; 64];
        let mut delta_bits_sum = 0f64;
        let mut distinct_set: HashSet<u64> = HashSet::with_capacity(len.min(1 << 16));
        for (i, &value) in values.iter().enumerate() {
            min = min.min(value);
            max = max.max(value);
            histogram[(bitpack::bit_width_of(value) - 1) as usize] += 1;
            distinct_set.insert(value);
            if i > 0 {
                let prev = values[i - 1];
                if value < prev {
                    sorted = false;
                }
                if value != prev {
                    runs += 1;
                }
                let delta = value.abs_diff(prev);
                delta_bits_sum += bitpack::bit_width_of(delta) as f64;
            }
        }
        let avg_delta_bit_width = if len > 1 {
            delta_bits_sum / (len - 1) as f64
        } else {
            1.0
        };
        ColumnStats {
            len,
            min,
            max,
            distinct: distinct_set.len(),
            sorted,
            runs,
            bit_width_histogram: histogram,
            avg_delta_bit_width,
            range_bit_width: bitpack::bit_width_of(max - min),
        }
    }

    /// Statistics of a column, served from the column's compute-once memo
    /// ([`Column::stats`]) — repeated calls on the same column (or a clone
    /// of it) never rescan the data.
    ///
    /// The result is identical to [`ColumnStats::from_values`] on the
    /// decompressed data.
    pub fn from_column(column: &Column) -> ColumnStats {
        column.stats().clone()
    }

    /// A 64-bit digest of the statistics, used by the plan-level cache to
    /// key memoised format decisions: two columns with equal statistics get
    /// equal digests, and any differing field changes the digest.
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x100000001B3;
        let mut state: u64 = 0xCBF29CE484222325;
        let mut mix = |word: u64| state = (state ^ word).wrapping_mul(PRIME);
        mix(self.len as u64);
        mix(self.min);
        mix(self.max);
        mix(self.distinct as u64);
        mix(self.sorted as u64);
        mix(self.runs as u64);
        for &count in &self.bit_width_histogram {
            mix(count as u64);
        }
        mix(self.avg_delta_bit_width.to_bits());
        mix(self.range_bit_width as u64);
        state
    }

    /// Effective bit width of the largest value.
    pub fn max_bit_width(&self) -> u8 {
        bitpack::bit_width_of(self.max)
    }

    /// Average effective bit width over all values.
    pub fn avg_bit_width(&self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        let total: usize = self
            .bit_width_histogram
            .iter()
            .enumerate()
            .map(|(i, &count)| (i + 1) * count)
            .sum();
        total as f64 / self.len as f64
    }

    /// Average run length.
    pub fn avg_run_length(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.len as f64 / self.runs as f64
    }

    /// Fraction of distinct values (`distinct / len`).
    pub fn distinct_fraction(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.distinct as f64 / self.len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_compression::Format;

    #[test]
    fn basic_statistics() {
        let values = vec![5, 5, 5, 9, 9, 2, 1000];
        let stats = ColumnStats::from_values(&values);
        assert_eq!(stats.len, 7);
        assert_eq!(stats.min, 2);
        assert_eq!(stats.max, 1000);
        assert_eq!(stats.distinct, 4);
        assert!(!stats.sorted);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.max_bit_width(), 10);
        assert_eq!(stats.range_bit_width, 10);
        assert!((stats.avg_run_length() - 7.0 / 4.0).abs() < 1e-9);
        assert!((stats.distinct_fraction() - 4.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_detection_and_delta_width() {
        let sorted: Vec<u64> = (0..1000).map(|i| 1_000_000 + i * 2).collect();
        let stats = ColumnStats::from_values(&sorted);
        assert!(stats.sorted);
        assert_eq!(stats.runs, 1000);
        assert!(stats.avg_delta_bit_width <= 2.0);
        assert_eq!(stats.max_bit_width(), 20);
        // FOR would reduce the data to ~11 bits.
        assert_eq!(stats.range_bit_width, 11);
    }

    #[test]
    fn bit_width_histogram_sums_to_len() {
        let values: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(97) % (1 << 20))
            .collect();
        let stats = ColumnStats::from_values(&values);
        assert_eq!(
            stats.bit_width_histogram.iter().sum::<usize>(),
            values.len()
        );
        assert!(stats.avg_bit_width() <= 20.0);
        assert!(stats.avg_bit_width() >= 15.0);
    }

    #[test]
    fn empty_and_single_element() {
        let empty = ColumnStats::from_values(&[]);
        assert_eq!(empty.len, 0);
        assert!(empty.sorted);
        assert_eq!(empty.runs, 0);
        assert_eq!(empty.avg_run_length(), 0.0);
        let single = ColumnStats::from_values(&[42]);
        assert_eq!(single.len, 1);
        assert_eq!(single.min, 42);
        assert_eq!(single.max, 42);
        assert_eq!(single.distinct, 1);
        assert_eq!(single.runs, 1);
        assert!(single.sorted);
    }

    #[test]
    fn stats_from_column_match_values() {
        let values: Vec<u64> = (0..3000u64).map(|i| (i * 7) % 100).collect();
        let column = Column::compress(&values, &Format::DynBp);
        assert_eq!(
            ColumnStats::from_column(&column),
            ColumnStats::from_values(&values)
        );
    }

    #[test]
    fn stats_are_memoised_and_travel_with_clones() {
        let values: Vec<u64> = (0..2000u64).map(|i| i % 13).collect();
        let column = Column::compress(&values, &Format::Rle);
        let first = column.stats() as *const ColumnStats;
        let second = column.stats() as *const ColumnStats;
        assert_eq!(first, second, "second call must hit the memo");
        // A clone keeps the computed statistics and stays byte-equal.
        let clone = column.clone();
        assert_eq!(clone.stats(), column.stats());
        assert_eq!(clone, column, "memo state must not affect equality");
    }

    #[test]
    fn digest_distinguishes_differing_stats() {
        let a = ColumnStats::from_values(&[1, 2, 3, 4]);
        let b = ColumnStats::from_values(&[1, 2, 3, 5]);
        let c = ColumnStats::from_values(&[1, 2, 3, 4]);
        assert_eq!(a.digest(), c.digest());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn constant_column_is_one_run() {
        let values = vec![7u64; 500];
        let stats = ColumnStats::from_values(&values);
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.distinct, 1);
        assert_eq!(stats.avg_run_length(), 500.0);
        assert!(stats.sorted);
    }
}
