//! The compressing column builder — the output-side buffer layer of the
//! on-the-fly de/re-compression wrapper (Figure 4 of the paper).
//!
//! Operators produce uncompressed values (one vector register or one small
//! chunk at a time) and push them into a [`ColumnBuilder`].  The builder
//! appends them to an internal L1-cache-resident buffer of
//! [`CACHE_BUFFER_ELEMENTS`] values (16 KiB, half the L1 data cache — the
//! size used in the paper's evaluation, Section 5).  Whenever the buffer
//! fills up, the output format's compression routine is invoked on it and the
//! compressed bytes are appended to the output column's buffer.  At the end,
//! whatever whole blocks remain are compressed and the rest is stored as the
//! uncompressed remainder — steps 6–9 of Figure 4.

use morph_compression::{compressor_for, uncompressed, Compressor, Format, CACHE_BUFFER_ELEMENTS};

use crate::Column;

/// Incrementally builds a [`Column`] in a chosen format from a stream of
/// uncompressed values.
pub struct ColumnBuilder {
    format: Format,
    buffer: Vec<u64>,
    compressor: Box<dyn Compressor>,
    data: Vec<u8>,
    main_len: usize,
    total_len: usize,
}

impl std::fmt::Debug for ColumnBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnBuilder")
            .field("format", &self.format)
            .field("buffered", &self.buffer.len())
            .field("total_len", &self.total_len)
            .finish()
    }
}

impl ColumnBuilder {
    /// Create a builder producing a column in `format`.
    pub fn new(format: Format) -> ColumnBuilder {
        ColumnBuilder {
            format,
            buffer: Vec::with_capacity(CACHE_BUFFER_ELEMENTS),
            compressor: compressor_for(&format),
            data: Vec::new(),
            main_len: 0,
            total_len: 0,
        }
    }

    /// The output format of this builder.
    pub fn format(&self) -> &Format {
        &self.format
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// Whether no values have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// Append a single value.
    #[inline]
    pub fn push(&mut self, value: u64) {
        self.buffer.push(value);
        self.total_len += 1;
        if self.buffer.len() == CACHE_BUFFER_ELEMENTS {
            self.flush_full_buffer();
        }
    }

    /// Append a slice of values.
    pub fn push_slice(&mut self, values: &[u64]) {
        let mut rest = values;
        self.total_len += values.len();
        while !rest.is_empty() {
            let space = CACHE_BUFFER_ELEMENTS - self.buffer.len();
            let take = space.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() == CACHE_BUFFER_ELEMENTS {
                self.flush_full_buffer();
            }
        }
    }

    /// Append the consecutive positions `start..start + len` without any
    /// caller-side scratch buffer: the run is written straight into the
    /// internal cache-resident buffer, one buffer-full at a time.
    ///
    /// This is the sink of the specialized RLE select kernel, whose matching
    /// runs can be arbitrarily long — materialising them in a caller-owned
    /// `Vec` first would grow that allocation to the longest run.
    pub fn push_run(&mut self, start: u64, len: u64) {
        let mut next = start;
        let end = start + len;
        self.total_len += len as usize;
        while next < end {
            let space = (CACHE_BUFFER_ELEMENTS - self.buffer.len()) as u64;
            let take = space.min(end - next);
            self.buffer.extend(next..next + take);
            next += take;
            if self.buffer.len() == CACHE_BUFFER_ELEMENTS {
                self.flush_full_buffer();
            }
        }
    }

    /// Append the entire logical content of `column`, exactly as if every
    /// one of its values had been pushed individually — the splice primitive
    /// that merges the partial outputs of a chunk-partitioned operator back
    /// into one column.
    ///
    /// For formats whose encoding is *position-independent* (uncompressed,
    /// static BP, dynamic BP, FOR + BP: stateless compressors whose blocks
    /// depend only on the block's own values), an aligned append splices the
    /// column's compressed main part byte-for-byte without re-encoding; only
    /// the sub-block remainder is re-buffered.  Stateful formats (DELTA's
    /// running reference, RLE's pending run, DICT's whole-column dictionary)
    /// and unaligned appends re-push the values through the streaming
    /// compressor instead.  Either way the resulting column is byte-identical
    /// to a single builder fed the concatenated value sequence.
    pub fn append_column(&mut self, column: &Column) {
        let splice_safe = matches!(
            self.format,
            Format::Uncompressed | Format::StaticBp(_) | Format::DynBp | Format::ForDynBp
        );
        // The spliced blocks must land where the serial builder would have
        // compressed them: with an empty buffer, `main_len` is a multiple of
        // the block size (it only ever grows by whole blocks), so the
        // incoming block grid lines up with the global one.
        if splice_safe && self.buffer.is_empty() && column.format() == &self.format {
            self.data.extend_from_slice(column.main_part_bytes());
            self.main_len += column.main_part_len();
            self.total_len += column.main_part_len();
            self.push_slice(&column.remainder_values());
            return;
        }
        column.for_each_chunk(&mut |chunk| self.push_slice(chunk));
    }

    /// Compress the full cache-resident buffer.  The buffer size is a
    /// multiple of every format's block size, so the whole buffer can be
    /// handed to the compressor.
    fn flush_full_buffer(&mut self) {
        debug_assert_eq!(self.buffer.len(), CACHE_BUFFER_ELEMENTS);
        self.compressor.append(&self.buffer, &mut self.data);
        self.main_len += self.buffer.len();
        self.buffer.clear();
    }

    /// Finish the column: compress the remaining whole blocks, then append
    /// the rest as the uncompressed remainder.
    pub fn finish(mut self) -> Column {
        let block = self.format.block_size();
        let compressible = self.buffer.len() - self.buffer.len() % block;
        if compressible > 0 {
            self.compressor
                .append(&self.buffer[..compressible], &mut self.data);
            self.main_len += compressible;
        }
        self.compressor.finish(&mut self.data);
        let main_bytes = self.data.len();
        uncompressed::encode_into(&self.buffer[compressible..], &mut self.data);
        Column::from_parts(
            self.format,
            self.total_len,
            self.main_len,
            main_bytes,
            self.data,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 31) % 509).collect()
    }

    #[test]
    fn builder_equals_whole_buffer_compression() {
        let values = sample(10_000);
        let max = *values.iter().max().unwrap();
        for format in Format::all_formats(max) {
            let mut builder = ColumnBuilder::new(format);
            for &v in &values {
                builder.push(v);
            }
            let streamed = builder.finish();
            let direct = Column::compress(&values, &format);
            assert_eq!(streamed, direct, "format {format}");
        }
    }

    #[test]
    fn push_slice_equals_push_loop() {
        let values = sample(7531);
        for format in [Format::DynBp, Format::DeltaDynBp, Format::Rle] {
            let mut by_slice = ColumnBuilder::new(format);
            // Push in odd-sized pieces to exercise buffer boundaries.
            for chunk in values.chunks(777) {
                by_slice.push_slice(chunk);
            }
            let mut by_value = ColumnBuilder::new(format);
            for &v in &values {
                by_value.push(v);
            }
            assert_eq!(by_slice.finish(), by_value.finish());
        }
    }

    #[test]
    fn push_run_equals_push_slice_of_the_range() {
        // Runs shorter, equal to and much longer than the internal buffer,
        // starting at unaligned buffer offsets.
        for format in [Format::DeltaDynBp, Format::DynBp, Format::Rle] {
            let mut by_run = ColumnBuilder::new(format);
            let mut by_slice = ColumnBuilder::new(format);
            let mut start = 3u64;
            for len in [0u64, 1, 7, 2048, 2049, 10_000] {
                by_run.push_run(start, len);
                let range: Vec<u64> = (start..start + len).collect();
                by_slice.push_slice(&range);
                start += len + 11;
            }
            assert_eq!(by_run.finish(), by_slice.finish(), "format {format}");
        }
    }

    #[test]
    fn append_column_equals_pushing_the_values_for_all_formats() {
        let values = sample(12_000);
        let max = *values.iter().max().unwrap();
        // Split into three uneven pieces, build each as its own column, then
        // splice; the result must be byte-identical to one continuous build
        // — for splice-safe formats (fast path) and stateful ones alike.
        let cuts = [0usize, 2048, 2048 + 3001, values.len()];
        for format in Format::all_formats(max) {
            let mut merged = ColumnBuilder::new(format);
            for window in cuts.windows(2) {
                let partial = {
                    let mut b = ColumnBuilder::new(format);
                    b.push_slice(&values[window[0]..window[1]]);
                    b.finish()
                };
                merged.append_column(&partial);
            }
            let direct = Column::compress(&values, &format);
            assert_eq!(merged.finish(), direct, "format {format}");
        }
    }

    #[test]
    fn append_column_merges_rle_runs_across_the_seam() {
        // A run spanning the splice point must re-merge (the serial builder
        // would have counted it as one run).
        let mut left = ColumnBuilder::new(Format::Rle);
        left.push_slice(&[1, 1, 4, 4, 4]);
        let right = {
            let mut b = ColumnBuilder::new(Format::Rle);
            b.push_slice(&[4, 4, 9]);
            b.finish()
        };
        left.append_column(&right);
        let direct = Column::compress(&[1, 1, 4, 4, 4, 4, 4, 9], &Format::Rle);
        assert_eq!(left.finish(), direct);
    }

    #[test]
    fn builder_tracks_length() {
        let mut builder = ColumnBuilder::new(Format::DynBp);
        assert!(builder.is_empty());
        builder.push_slice(&[1, 2, 3]);
        builder.push(4);
        assert_eq!(builder.len(), 4);
        assert_eq!(builder.format(), &Format::DynBp);
        let column = builder.finish();
        assert_eq!(column.decompress(), vec![1, 2, 3, 4]);
        assert_eq!(column.main_part_len(), 0);
        assert_eq!(column.remainder_len(), 4);
    }

    #[test]
    fn empty_builder_produces_empty_column() {
        for format in Format::all_formats(100) {
            let column = ColumnBuilder::new(format).finish();
            assert!(column.is_empty());
            assert_eq!(column.size_used_bytes(), 0, "format {format}");
        }
    }

    #[test]
    fn remainder_is_at_most_one_block() {
        let values = sample(5000);
        let column = {
            let mut b = ColumnBuilder::new(Format::DynBp);
            b.push_slice(&values);
            b.finish()
        };
        assert!(column.remainder_len() < 512);
        assert_eq!(column.main_part_len() + column.remainder_len(), 5000);
    }
}
