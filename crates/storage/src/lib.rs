//! # morph-storage
//!
//! Column storage for MorphStore-rs: the column data structure with its
//! compressed main part and uncompressed remainder (Figure 3 of the paper),
//! the compressing column builder used as the output-side buffer layer of the
//! on-the-fly de/re-compression wrapper (Figure 4), column statistics, and
//! the synthetic data generators of the evaluation (Table 1).
//!
//! Base data, intermediate results and query results are all represented as
//! [`Column`]s of unsigned 64-bit integers — they "are of exactly the same
//! nature" (Section 3.1), which is what allows compression to be applied
//! continuously throughout a query plan.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod column;
pub mod datagen;
mod stats;

pub use builder::ColumnBuilder;
pub use column::{Column, ColumnCursor};
pub use morph_compression::ChunkCursor;
pub use stats::ColumnStats;
