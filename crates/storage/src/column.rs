//! The column data structure.

use std::sync::{Arc, OnceLock};

use morph_compression::{
    chunk_directory, compress_main_part, cursor_for, for_each_decompressed_block,
    for_each_decompressed_block_in, get_element, morph, uncompressed, ChunkCursor, ChunkEntry,
    Format,
};

use crate::builder::ColumnBuilder;
use crate::stats::ColumnStats;

/// An immutable column of unsigned 64-bit integers, stored in one contiguous
/// byte buffer as a compressed main part followed by an uncompressed
/// remainder (Figure 3 of the paper).
///
/// For a column of `n` data elements and a format with block size `bs`, the
/// main part holds the first `n - n % bs` elements encoded in the column's
/// format and the remainder holds the last `n % bs` elements as plain 64-bit
/// integers.  The metadata (logical length, main-part length and byte sizes)
/// is kept alongside the buffer, mirroring the separate metadata structure of
/// the paper.
#[derive(Debug, Clone)]
pub struct Column {
    format: Format,
    /// Logical number of data elements.
    len: usize,
    /// Number of data elements in the compressed main part.
    main_len: usize,
    /// Byte length of the compressed main part within `data`.
    main_bytes: usize,
    /// Main part bytes followed by the uncompressed remainder.
    data: Vec<u8>,
    /// Seekable chunk directory of the main part, recorded at compression
    /// time: per decodable chunk, the byte offset and logical start
    /// ([`morph_compression::chunk_directory`]).  Deterministically derived
    /// from `(format, data, main_len)`, so equal columns carry equal
    /// directories and `PartialEq` stays byte-identity.
    chunks: Vec<ChunkEntry>,
    /// Compute-once memo of [`Column::stats`] (cloned along with the
    /// column, so a captured copy keeps the already-computed statistics).
    /// `Arc`-boxed: the statistics struct is large (a 64-entry histogram)
    /// and must not inflate every `Column` move.
    stats: OnceLock<Arc<ColumnStats>>,
    /// Compute-once memo of [`Column::fingerprint`].
    content_hash: OnceLock<u64>,
}

/// Byte identity of the stored representation: format, logical layout and
/// the data buffer.  The compute-once memo fields are deliberately excluded
/// — a column that has computed its statistics is still *equal* to a fresh
/// copy that has not.
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        self.format == other.format
            && self.len == other.len
            && self.main_len == other.main_len
            && self.main_bytes == other.main_bytes
            && self.data == other.data
    }
}

impl Eq for Column {}

// Columns are shared across the worker threads of the parallel plan executor
// (as `&Column` borrows of the source and as `Arc<Column>` in caches); the
// type must stay `Send + Sync`, i.e. hold only plain owned data.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Column>();
};

impl Column {
    /// Create an uncompressed column from a slice of values.
    pub fn from_slice(values: &[u64]) -> Column {
        Column::compress(values, &Format::Uncompressed)
    }

    /// Create an uncompressed column from a vector of values.
    pub fn from_vec(values: Vec<u64>) -> Column {
        Column::from_slice(&values)
    }

    /// Compress `values` into a column with the given `format`.
    pub fn compress(values: &[u64], format: &Format) -> Column {
        let (main, main_len) = compress_main_part(format, values);
        let mut data = main;
        let main_bytes = data.len();
        uncompressed::encode_into(&values[main_len..], &mut data);
        Column::from_parts(*format, values.len(), main_len, main_bytes, data)
    }

    /// Assemble a column from raw parts, recording the chunk directory of
    /// the main part.  Used by [`ColumnBuilder`] and the morph fast path;
    /// not part of the public construction API.
    pub(crate) fn from_parts(
        format: Format,
        len: usize,
        main_len: usize,
        main_bytes: usize,
        data: Vec<u8>,
    ) -> Column {
        debug_assert!(main_len <= len);
        debug_assert_eq!(data.len(), main_bytes + (len - main_len) * 8);
        let chunks = chunk_directory(&format, &data[..main_bytes], main_len);
        Column {
            format,
            len,
            main_len,
            main_bytes,
            data,
            chunks,
            stats: OnceLock::new(),
            content_hash: OnceLock::new(),
        }
    }

    /// The column's compression format.
    pub fn format(&self) -> &Format {
        &self.format
    }

    /// Logical number of data elements.
    pub fn logical_len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no data elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of data elements stored in the compressed main part.
    pub fn main_part_len(&self) -> usize {
        self.main_len
    }

    /// Number of data elements stored in the uncompressed remainder.
    pub fn remainder_len(&self) -> usize {
        self.len - self.main_len
    }

    /// Bytes of the compressed main part.
    pub fn main_part_bytes(&self) -> &[u8] {
        &self.data[..self.main_bytes]
    }

    /// The uncompressed remainder, decoded.
    pub fn remainder_values(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.remainder_len());
        let bytes = &self.data[self.main_bytes..];
        for chunk in bytes.chunks_exact(8) {
            out.push(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        out
    }

    /// Total number of bytes used by the column's data (compressed main part
    /// plus uncompressed remainder).  This is the "memory footprint" metric
    /// used throughout the paper's evaluation.
    pub fn size_used_bytes(&self) -> usize {
        self.data.len()
    }

    /// Decompress the whole column into a vector.
    pub fn decompress(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each_chunk(&mut |chunk| out.extend_from_slice(chunk));
        out
    }

    /// Visit the column's values as a sequence of cache-resident uncompressed
    /// chunks: the main part is decompressed block by block, then the
    /// remainder is passed as one final chunk.
    ///
    /// This is the input-side buffer layer of Figure 4 — no operator ever
    /// needs the whole column in uncompressed form (DP3).
    pub fn for_each_chunk(&self, consumer: &mut dyn FnMut(&[u64])) {
        for_each_decompressed_block(
            &self.format,
            self.main_part_bytes(),
            self.main_len,
            consumer,
        );
        if self.remainder_len() > 0 {
            let remainder = self.remainder_values();
            consumer(&remainder);
        }
    }

    /// Number of seekable chunks of the column: the chunk-directory entries
    /// of the compressed main part plus one final chunk for the uncompressed
    /// remainder (if any).
    ///
    /// `for_each_chunk_in(0..chunk_count())` visits exactly the values of
    /// [`Column::decompress`], and any contiguous partition of the chunk
    /// range can be decoded independently — the raw material of
    /// intra-operator parallelism.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len() + usize::from(self.remainder_len() > 0)
    }

    /// Logical index of the first data element of chunk `chunk`; the total
    /// length for `chunk == chunk_count()` (end sentinel).
    pub fn chunk_logical_start(&self, chunk: usize) -> usize {
        assert!(chunk <= self.chunk_count(), "chunk {chunk} out of bounds");
        match self.chunks.get(chunk) {
            Some(entry) => entry.logical_start,
            None if chunk == self.chunks.len() && self.remainder_len() > 0 => self.main_len,
            None => self.len,
        }
    }

    /// Check the chunk directory for self-consistency: the first entry
    /// starts at byte 0 / element 0, byte offsets and logical starts are
    /// strictly increasing, every entry lies inside the main part, and the
    /// chunk spans sum to the main-part length (which, with the remainder,
    /// covers the full logical length).
    ///
    /// A directory violating any of these would make seekable decoding
    /// ([`Column::for_each_chunk_in`]) skip or double-decode values —
    /// exactly the corruption the byte-identity determinism suites would
    /// only catch downstream.  Executors run this after every node under
    /// `debug_assertions`; it is cheap (one linear walk over the
    /// directory, no data access).
    pub fn check_chunk_directory(&self) -> Result<(), String> {
        if self.chunks.is_empty() {
            if self.main_len != 0 {
                return Err(format!(
                    "main part holds {} elements but the chunk directory is empty",
                    self.main_len
                ));
            }
            return Ok(());
        }
        let first = &self.chunks[0];
        if first.byte_offset != 0 || first.logical_start != 0 {
            return Err(format!(
                "first chunk starts at byte {} / element {} instead of 0 / 0",
                first.byte_offset, first.logical_start
            ));
        }
        for (i, pair) in self.chunks.windows(2).enumerate() {
            if pair[1].byte_offset <= pair[0].byte_offset
                || pair[1].logical_start <= pair[0].logical_start
            {
                return Err(format!(
                    "chunk {} (byte {}, element {}) does not strictly follow \
                     chunk {} (byte {}, element {})",
                    i + 1,
                    pair[1].byte_offset,
                    pair[1].logical_start,
                    i,
                    pair[0].byte_offset,
                    pair[0].logical_start
                ));
            }
        }
        let last = &self.chunks[self.chunks.len() - 1];
        if last.byte_offset >= self.main_bytes || last.logical_start >= self.main_len {
            return Err(format!(
                "last chunk (byte {}, element {}) lies outside the main part \
                 ({} bytes, {} elements) — chunk spans cannot sum to the \
                 logical length",
                last.byte_offset, last.logical_start, self.main_bytes, self.main_len
            ));
        }
        Ok(())
    }

    /// Visit the values of the seekable chunks `chunks` as cache-resident
    /// uncompressed pieces, without decoding anything before the range.
    ///
    /// `consumer` receives, per piece, the global logical index of its first
    /// element and the decoded values — so a worker processing an interior
    /// chunk range can compute positions without knowing about the rest of
    /// the column.  The union of any contiguous partition of
    /// `0..chunk_count()` is exactly [`Column::decompress`], in order.
    pub fn for_each_chunk_in(
        &self,
        chunks: std::ops::Range<usize>,
        consumer: &mut dyn FnMut(u64, &[u64]),
    ) {
        assert!(
            chunks.end <= self.chunk_count(),
            "chunk range {chunks:?} exceeds {} chunks",
            self.chunk_count()
        );
        let main_entries = self.chunks.len();
        let main_end = chunks.end.min(main_entries);
        if chunks.start < main_end {
            let mut pos = self.chunks[chunks.start].logical_start as u64;
            for_each_decompressed_block_in(
                &self.format,
                self.main_part_bytes(),
                self.main_len,
                &self.chunks,
                chunks.start..main_end,
                &mut |piece| {
                    consumer(pos, piece);
                    pos += piece.len() as u64;
                },
            );
        }
        if chunks.end > main_entries && chunks.start <= main_entries && self.remainder_len() > 0 {
            let remainder = self.remainder_values();
            consumer(self.main_len as u64, &remainder);
        }
    }

    /// Partition `0..chunk_count()` into at most `parts` contiguous,
    /// non-empty chunk ranges of roughly equal *logical* span (chunks vary
    /// in logical size for RLE, so the split is balanced by element count,
    /// not chunk count).
    ///
    /// Fewer ranges are returned when the column has fewer chunks than
    /// requested parts; an empty column yields no ranges.
    pub fn partition_chunks(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.chunk_count();
        let parts = parts.max(1).min(n);
        if n == 0 {
            return Vec::new();
        }
        let mut bounds = vec![0usize];
        for i in 1..parts {
            let target = self.len * i / parts;
            let mut lo = *bounds.last().expect("non-empty");
            let mut hi = n;
            // First chunk whose logical start reaches the target split point.
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.chunk_logical_start(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            bounds.push(lo);
        }
        bounds.push(n);
        bounds
            .windows(2)
            .map(|w| w[0]..w[1])
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// Random read access to the value at logical position `idx`.
    ///
    /// Returns `None` if `idx` is out of bounds *or* the format does not
    /// support random access (Section 4.2: only uncompressed data and static
    /// BP do); the caller is expected to morph the column first in that case.
    pub fn get(&self, idx: usize) -> Option<u64> {
        if idx >= self.len {
            return None;
        }
        if idx >= self.main_len {
            let offset = self.main_bytes + (idx - self.main_len) * 8;
            return Some(u64::from_le_bytes(
                self.data[offset..offset + 8].try_into().expect("8 bytes"),
            ));
        }
        get_element(&self.format, self.main_part_bytes(), self.main_len, idx)
    }

    /// Whether [`Column::get`] is supported for every position of this column.
    pub fn supports_random_access(&self) -> bool {
        self.format.supports_random_access()
    }

    /// Re-encode the column in `target` format ("morphing" at column
    /// granularity).
    ///
    /// When the main part lengths of the source and target representation
    /// coincide, the direct morph of the compression crate is used; otherwise
    /// the column is streamed chunk-wise through a [`ColumnBuilder`], so the
    /// uncompressed data never exceeds a cache-resident chunk either way.
    pub fn to_format(&self, target: &Format) -> Column {
        if &self.format == target {
            return self.clone();
        }
        let target_main_len = self.len - self.len % target.block_size();
        if target_main_len == self.main_len {
            let main = morph(&self.format, target, self.main_part_bytes(), self.main_len);
            let mut data = main;
            let main_bytes = data.len();
            data.extend_from_slice(&self.data[self.main_bytes..]);
            return Column::from_parts(*target, self.len, self.main_len, main_bytes, data);
        }
        let mut builder = ColumnBuilder::new(*target);
        self.for_each_chunk(&mut |chunk| builder.push_slice(chunk));
        builder.finish()
    }

    /// Convenience: decompress and collect into a `Vec<u64>` only if needed,
    /// otherwise borrow nothing — used by tests and examples for assertions.
    pub fn to_vec(&self) -> Vec<u64> {
        self.decompress()
    }

    /// The column's data characteristics, computed once and memoised.
    ///
    /// Repeated cost-strategy and cache-digest calls on the same column
    /// (the format-selection search touches every edge several times) hit
    /// the memo instead of rescanning the data; the memo travels with
    /// clones of the column.
    pub fn stats(&self) -> &ColumnStats {
        self.stats
            .get_or_init(|| Arc::new(ColumnStats::from_values(&self.decompress())))
    }

    /// A 64-bit content fingerprint of the stored representation (format,
    /// logical length and data bytes), computed once and memoised.
    ///
    /// Equal columns (see [`PartialEq`]) have equal fingerprints.  The
    /// plan-level cache folds base-column fingerprints into its subplan
    /// keys, so two databases whose columns differ in content or format
    /// never share cache entries.
    pub fn fingerprint(&self) -> u64 {
        *self.content_hash.get_or_init(|| {
            const PRIME: u64 = 0x100000001B3;
            let mut state: u64 = 0xCBF29CE484222325;
            let mut mix = |word: u64| state = (state ^ word).wrapping_mul(PRIME);
            // The format's canonical spelling distinguishes e.g. the static
            // BP widths; the layout fields guard against framing aliases.
            for byte in self.format.to_string().bytes() {
                mix(byte as u64);
            }
            mix(self.len as u64);
            mix(self.main_len as u64);
            // Word-at-a-time over the data buffer: the buffer is the full
            // physical representation (main part + remainder).
            let mut words = self.data.chunks_exact(8);
            for word in &mut words {
                mix(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            }
            for &byte in words.remainder() {
                mix(byte as u64);
            }
            state
        })
    }

    /// Visit the values of the logical index range `range` as cache-resident
    /// uncompressed pieces, seeking through the chunk directory (no prefix
    /// replay) and trimming the first and last covering chunk.
    ///
    /// This is the pairwise companion of [`Column::for_each_chunk_in`]; the
    /// pull-based equivalent is [`Column::cursor_at`], which this method
    /// merely drives to completion.
    pub fn for_each_logical_range(
        &self,
        range: std::ops::Range<usize>,
        consumer: &mut dyn FnMut(&[u64]),
    ) {
        let mut cursor = self.cursor_at(range);
        while let Some(piece) = cursor.next_chunk() {
            consumer(piece);
        }
    }

    /// A pull-based cursor over the column's whole logical content — the
    /// [`ChunkCursor`] counterpart of [`Column::for_each_chunk`].
    ///
    /// Where the push-style visitors drive one decoder to completion, a
    /// cursor lets the *caller* control the pace, so two compressed columns
    /// can be paired position-wise on one thread with at most one
    /// chunk-sized carry buffer per input (the streaming pairwise reader of
    /// DESIGN.md).
    pub fn cursor(&self) -> ColumnCursor<'_> {
        self.cursor_at(0..self.len)
    }

    /// A pull-based cursor over the logical index range `range`, seeking
    /// through the chunk directory (no prefix replay) and trimming the
    /// first and last covering chunk.
    ///
    /// # Panics
    /// Panics if `range.end` exceeds the column's logical length.
    pub fn cursor_at(&self, range: std::ops::Range<usize>) -> ColumnCursor<'_> {
        assert!(
            range.end <= self.len,
            "logical range {range:?} exceeds {} elements",
            self.len
        );
        let start = range.start.min(range.end);
        let mut main = cursor_for(
            &self.format,
            self.main_part_bytes(),
            self.main_len,
            &self.chunks,
        );
        let mut main_pos = self.main_len;
        if start < self.main_len {
            // Last main chunk whose logical start is <= start.
            let first = self.chunks.partition_point(|e| e.logical_start <= start) - 1;
            main.seek(first);
            main_pos = self.chunks[first].logical_start;
        }
        let remainder = if range.end > self.main_len && self.remainder_len() > 0 {
            self.remainder_values()
        } else {
            Vec::new()
        };
        ColumnCursor {
            column: self,
            main,
            remainder,
            start,
            pos: start,
            end: range.end,
            main_pos,
            last: LastChunk::None,
        }
    }
}

/// A pull-based cursor over a [`Column`]'s logical content (or a sub-range
/// of it): the compressed main part is decoded chunk by chunk through the
/// format's [`ChunkCursor`], then the uncompressed remainder is served as
/// one final chunk.  Created by [`Column::cursor`] / [`Column::cursor_at`].
///
/// The cursor implements [`ChunkCursor`] itself, with *column* chunk
/// indices for [`seek`](ChunkCursor::seek) (`0..Column::chunk_count()`,
/// where the last index may be the remainder chunk).  Seeking clamps to the
/// cursor's construction range: the position never moves before
/// `range.start` or past `range.end`.
pub struct ColumnCursor<'a> {
    column: &'a Column,
    main: Box<dyn ChunkCursor + Send + 'a>,
    /// Decoded uncompressed remainder (at most one block of values); empty
    /// when the cursor's range ends inside the main part.
    remainder: Vec<u64>,
    /// Logical start of the cursor's range (seek clamps to it).
    start: usize,
    /// Logical index of the next element to emit.
    pos: usize,
    /// Logical end (exclusive) of the cursor's range.
    end: usize,
    /// Logical index of the next element the main-part cursor will decode
    /// (lags behind `pos` until the first covering chunk is trimmed).
    main_pos: usize,
    /// Provenance and trim window of the chunk `next_chunk` returned last,
    /// backing [`ChunkCursor::last_chunk`].
    last: LastChunk,
}

/// See [`ColumnCursor::last`].
#[derive(Debug, Clone, Copy)]
enum LastChunk {
    /// Nothing returned yet (or a seek invalidated it).
    None,
    /// A window of the main-part cursor's decode buffer.
    Main(usize, usize),
    /// A window of the decoded remainder.
    Remainder(usize, usize),
}

impl std::fmt::Debug for ColumnCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnCursor")
            .field("format", self.column.format())
            .field("start", &self.start)
            .field("pos", &self.pos)
            .field("end", &self.end)
            .finish()
    }
}

impl ChunkCursor for ColumnCursor<'_> {
    fn next_chunk(&mut self) -> Option<&[u64]> {
        while self.pos < self.end && self.pos < self.column.main_len {
            // Decode the next piece, releasing its borrow immediately (the
            // geometry is all the skip decision needs); the piece stays
            // resident in the format cursor's decode buffer and is
            // re-borrowed via `last_chunk` once it is known to overlap.
            // A drained format cursor here means the main part decoded
            // fewer values than its logical length — corrupt data, raised
            // as a structured payload rather than a stringly expect.
            let len = match self.main.next_chunk() {
                Some(piece) => piece.len(),
                None => std::panic::panic_any(morph_compression::DecodeError::Truncated {
                    format: "chunk-cursor",
                    offset: self.main_pos,
                    needed: self.end,
                    available: self.main_pos,
                }),
            };
            let chunk_start = self.main_pos;
            self.main_pos += len;
            // Trim to [pos, end): the first covering piece may begin before
            // the seek target, the last may extend past the end.
            let lo = self.pos.max(chunk_start);
            let hi = self.end.min(self.main_pos);
            if lo < hi {
                self.pos = hi;
                self.last = LastChunk::Main(lo - chunk_start, hi - chunk_start);
                return Some(&self.main.last_chunk()[lo - chunk_start..hi - chunk_start]);
            }
        }
        if self.pos >= self.end {
            return None;
        }
        let lo = self.pos - self.column.main_len;
        let hi = self.end - self.column.main_len;
        self.pos = self.end;
        self.last = LastChunk::Remainder(lo, hi);
        Some(&self.remainder[lo..hi])
    }

    fn last_chunk(&self) -> &[u64] {
        match self.last {
            LastChunk::None => &[],
            LastChunk::Main(lo, hi) => &self.main.last_chunk()[lo..hi],
            LastChunk::Remainder(lo, hi) => &self.remainder[lo..hi],
        }
    }

    fn seek(&mut self, chunk_idx: usize) {
        // Per the trait contract, an index at or past the chunk count
        // positions the cursor at the end of the stream.
        let target = self
            .column
            .chunk_logical_start(chunk_idx.min(self.column.chunk_count()));
        self.last = LastChunk::None;
        self.pos = target.clamp(self.start, self.end);
        if self.pos < self.column.main_len {
            let main_chunk = chunk_idx.min(self.column.chunks.len().saturating_sub(1));
            self.main.seek(main_chunk);
            self.main_pos = self.column.chunks[main_chunk].logical_start;
        } else {
            self.main_pos = self.column.main_len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 13) % 977).collect()
    }

    #[test]
    fn figure3_layout_main_part_and_remainder() {
        // 450 elements with a 512-element block format: everything lands in
        // the remainder (cf. Figure 3, format C requiring multiples of 100).
        let values = sample(450);
        let column = Column::compress(&values, &Format::DynBp);
        assert_eq!(column.logical_len(), 450);
        assert_eq!(column.main_part_len(), 0);
        assert_eq!(column.remainder_len(), 450);
        assert_eq!(column.size_used_bytes(), 450 * 8);
        // With static BP (block 64): 448 elements compressed, 2 uncompressed.
        let column = Column::compress(&values, &Format::StaticBp(10));
        assert_eq!(column.main_part_len(), 448);
        assert_eq!(column.remainder_len(), 2);
        assert_eq!(column.size_used_bytes(), 448 * 10 / 8 + 2 * 8);
        assert_eq!(column.decompress(), values);
    }

    #[test]
    fn roundtrip_all_formats() {
        let values = sample(3000);
        let max = *values.iter().max().unwrap();
        for format in Format::all_formats(max) {
            let column = Column::compress(&values, &format);
            assert_eq!(column.logical_len(), values.len());
            assert_eq!(column.decompress(), values, "format {format}");
        }
    }

    #[test]
    fn compressed_columns_are_smaller() {
        let values: Vec<u64> = (0..100_000u64).map(|i| i % 64).collect();
        let uncompressed = Column::from_slice(&values);
        let compressed = Column::compress(&values, &Format::StaticBp(6));
        assert_eq!(uncompressed.size_used_bytes(), 800_000);
        assert!(compressed.size_used_bytes() < uncompressed.size_used_bytes() / 10);
    }

    #[test]
    fn random_access() {
        let values = sample(1000);
        let column = Column::compress(&values, &Format::StaticBp(10));
        assert!(column.supports_random_access());
        for idx in [0, 1, 63, 64, 500, 960, 999] {
            assert_eq!(column.get(idx), Some(values[idx]));
        }
        assert_eq!(column.get(1000), None);
        let rle = Column::compress(&values, &Format::Rle);
        assert!(!rle.supports_random_access());
        assert_eq!(rle.get(3), None);
        // Positions in the remainder are accessible for every format.
        let dyn_bp = Column::compress(&values, &Format::DynBp);
        assert_eq!(dyn_bp.main_part_len(), 512);
        assert_eq!(dyn_bp.get(700), Some(values[700]));
    }

    #[test]
    fn to_format_preserves_content() {
        let values = sample(2500);
        let max = *values.iter().max().unwrap();
        let formats = Format::all_formats(max);
        for src in &formats {
            let column = Column::compress(&values, src);
            for dst in &formats {
                let morphed = column.to_format(dst);
                assert_eq!(morphed.format(), dst);
                assert_eq!(morphed.decompress(), values, "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn to_format_same_format_is_identity() {
        let values = sample(1024);
        let column = Column::compress(&values, &Format::DynBp);
        let same = column.to_format(&Format::DynBp);
        assert_eq!(same, column);
    }

    #[test]
    fn chunks_cover_all_values_in_order() {
        let values = sample(5000);
        let column = Column::compress(&values, &Format::DeltaDynBp);
        let mut collected = Vec::new();
        column.for_each_chunk(&mut |chunk| collected.extend_from_slice(chunk));
        assert_eq!(collected, values);
    }

    #[test]
    fn empty_column() {
        let column = Column::from_slice(&[]);
        assert!(column.is_empty());
        assert_eq!(column.size_used_bytes(), 0);
        assert_eq!(column.decompress(), Vec::<u64>::new());
        assert_eq!(column.get(0), None);
        assert_eq!(column.chunk_count(), 0);
        assert!(column.partition_chunks(4).is_empty());
        let morphed = column.to_format(&Format::Rle);
        assert!(morphed.is_empty());
    }

    #[test]
    fn chunk_ranges_concatenate_to_decompress_for_all_formats() {
        // 5003 elements: every 512-block format gets a remainder chunk.
        let values = sample(5003);
        let max = *values.iter().max().unwrap();
        for format in Format::all_formats(max) {
            let column = Column::compress(&values, &format);
            let n = column.chunk_count();
            assert_eq!(column.chunk_logical_start(0), 0, "format {format}");
            assert_eq!(column.chunk_logical_start(n), values.len());
            // Whole range == for_each_chunk == decompress, with correct
            // logical starts per piece.
            let mut collected = Vec::new();
            column.for_each_chunk_in(0..n, &mut |start, chunk| {
                assert_eq!(start as usize, collected.len(), "format {format}");
                collected.extend_from_slice(chunk);
            });
            assert_eq!(collected, values, "format {format}");
            // Every contiguous two-way split concatenates to the same.
            for split in [1, n / 2, n - 1] {
                let mut parts = Vec::new();
                column.for_each_chunk_in(0..split, &mut |_, c| parts.extend_from_slice(c));
                column.for_each_chunk_in(split..n, &mut |_, c| parts.extend_from_slice(c));
                assert_eq!(parts, values, "format {format}, split {split}");
            }
        }
    }

    #[test]
    fn interior_chunk_ranges_decode_without_the_prefix() {
        let values = sample(10_000);
        let column = Column::compress(&values, &Format::DeltaDynBp);
        let n = column.chunk_count();
        assert!(n > 4);
        let start = column.chunk_logical_start(2);
        let end = column.chunk_logical_start(4);
        let mut collected = Vec::new();
        column.for_each_chunk_in(2..4, &mut |pos, chunk| {
            assert!(pos as usize >= start);
            collected.extend_from_slice(chunk);
        });
        assert_eq!(collected, values[start..end], "interior range");
    }

    #[test]
    fn partition_chunks_covers_everything_in_order() {
        let values = sample(9000);
        for format in [Format::DynBp, Format::Rle, Format::Uncompressed] {
            let column = Column::compress(&values, &format);
            for parts in [1, 2, 3, 8, 100] {
                let ranges = column.partition_chunks(parts);
                assert!(ranges.len() <= parts, "format {format}");
                assert!(!ranges.is_empty());
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, column.chunk_count());
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                }
                let mut collected = Vec::new();
                for range in &ranges {
                    column.for_each_chunk_in(range.clone(), &mut |_, c| {
                        collected.extend_from_slice(c)
                    });
                }
                assert_eq!(collected, values, "format {format}, {parts} parts");
            }
        }
    }

    #[test]
    fn fingerprint_is_memoised_and_content_sensitive() {
        let values = sample(3000);
        let column = Column::compress(&values, &Format::DynBp);
        assert_eq!(column.fingerprint(), column.fingerprint());
        assert_eq!(column.clone().fingerprint(), column.fingerprint());
        // Same content, same format, fresh instance: equal fingerprints.
        let again = Column::compress(&values, &Format::DynBp);
        assert_eq!(again.fingerprint(), column.fingerprint());
        // Different format or different content: different fingerprints.
        let other_format = Column::compress(&values, &Format::DeltaDynBp);
        assert_ne!(other_format.fingerprint(), column.fingerprint());
        let mut changed = values.clone();
        changed[17] += 1;
        let other_content = Column::compress(&changed, &Format::DynBp);
        assert_ne!(other_content.fingerprint(), column.fingerprint());
    }

    #[test]
    fn logical_ranges_decode_exactly_for_all_formats() {
        let values = sample(5003);
        let max = *values.iter().max().unwrap();
        for format in Format::all_formats(max) {
            let column = Column::compress(&values, &format);
            for range in [0..0, 0..1, 0..5003, 17..17, 13..1400, 511..513, 4000..5003] {
                let mut collected = Vec::new();
                column.for_each_logical_range(range.clone(), &mut |piece| {
                    collected.extend_from_slice(piece)
                });
                assert_eq!(
                    collected,
                    values[range.clone()],
                    "format {format}, {range:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn logical_range_out_of_bounds_panics() {
        let column = Column::from_slice(&[1, 2, 3]);
        column.for_each_logical_range(0..4, &mut |_| {});
    }

    #[test]
    fn rle_directory_groups_runs_and_long_runs_stream_bounded() {
        // Long runs: the directory must still seek to run boundaries and the
        // decoded pieces stay cache-resident.
        let mut values = vec![7u64; 10_000];
        values.extend((0..5000u64).map(|i| i % 3));
        let column = Column::compress(&values, &Format::Rle);
        assert!(column.chunk_count() >= 2);
        let mut max_piece = 0usize;
        let mut collected = Vec::new();
        column.for_each_chunk_in(0..column.chunk_count(), &mut |_, chunk| {
            max_piece = max_piece.max(chunk.len());
            collected.extend_from_slice(chunk);
        });
        assert_eq!(collected, values);
        assert!(max_piece <= 2048);
    }
}
