//! The column data structure.

use morph_compression::{
    compress_main_part, for_each_decompressed_block, get_element, morph, uncompressed, Format,
};

use crate::builder::ColumnBuilder;

/// An immutable column of unsigned 64-bit integers, stored in one contiguous
/// byte buffer as a compressed main part followed by an uncompressed
/// remainder (Figure 3 of the paper).
///
/// For a column of `n` data elements and a format with block size `bs`, the
/// main part holds the first `n - n % bs` elements encoded in the column's
/// format and the remainder holds the last `n % bs` elements as plain 64-bit
/// integers.  The metadata (logical length, main-part length and byte sizes)
/// is kept alongside the buffer, mirroring the separate metadata structure of
/// the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    format: Format,
    /// Logical number of data elements.
    len: usize,
    /// Number of data elements in the compressed main part.
    main_len: usize,
    /// Byte length of the compressed main part within `data`.
    main_bytes: usize,
    /// Main part bytes followed by the uncompressed remainder.
    data: Vec<u8>,
}

// Columns are shared across the worker threads of the parallel plan executor
// (as `&Column` borrows of the source and as `Arc<Column>` in caches); the
// type must stay `Send + Sync`, i.e. hold only plain owned data.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Column>();
};

impl Column {
    /// Create an uncompressed column from a slice of values.
    pub fn from_slice(values: &[u64]) -> Column {
        Column::compress(values, &Format::Uncompressed)
    }

    /// Create an uncompressed column from a vector of values.
    pub fn from_vec(values: Vec<u64>) -> Column {
        Column::from_slice(&values)
    }

    /// Compress `values` into a column with the given `format`.
    pub fn compress(values: &[u64], format: &Format) -> Column {
        let (main, main_len) = compress_main_part(format, values);
        let mut data = main;
        let main_bytes = data.len();
        uncompressed::encode_into(&values[main_len..], &mut data);
        Column {
            format: *format,
            len: values.len(),
            main_len,
            main_bytes,
            data,
        }
    }

    /// Assemble a column from raw parts.  Used by [`ColumnBuilder`]; not part
    /// of the public construction API.
    pub(crate) fn from_parts(
        format: Format,
        len: usize,
        main_len: usize,
        main_bytes: usize,
        data: Vec<u8>,
    ) -> Column {
        debug_assert!(main_len <= len);
        debug_assert_eq!(data.len(), main_bytes + (len - main_len) * 8);
        Column {
            format,
            len,
            main_len,
            main_bytes,
            data,
        }
    }

    /// The column's compression format.
    pub fn format(&self) -> &Format {
        &self.format
    }

    /// Logical number of data elements.
    pub fn logical_len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no data elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of data elements stored in the compressed main part.
    pub fn main_part_len(&self) -> usize {
        self.main_len
    }

    /// Number of data elements stored in the uncompressed remainder.
    pub fn remainder_len(&self) -> usize {
        self.len - self.main_len
    }

    /// Bytes of the compressed main part.
    pub fn main_part_bytes(&self) -> &[u8] {
        &self.data[..self.main_bytes]
    }

    /// The uncompressed remainder, decoded.
    pub fn remainder_values(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.remainder_len());
        let bytes = &self.data[self.main_bytes..];
        for chunk in bytes.chunks_exact(8) {
            out.push(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        out
    }

    /// Total number of bytes used by the column's data (compressed main part
    /// plus uncompressed remainder).  This is the "memory footprint" metric
    /// used throughout the paper's evaluation.
    pub fn size_used_bytes(&self) -> usize {
        self.data.len()
    }

    /// Decompress the whole column into a vector.
    pub fn decompress(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each_chunk(&mut |chunk| out.extend_from_slice(chunk));
        out
    }

    /// Visit the column's values as a sequence of cache-resident uncompressed
    /// chunks: the main part is decompressed block by block, then the
    /// remainder is passed as one final chunk.
    ///
    /// This is the input-side buffer layer of Figure 4 — no operator ever
    /// needs the whole column in uncompressed form (DP3).
    pub fn for_each_chunk(&self, consumer: &mut dyn FnMut(&[u64])) {
        for_each_decompressed_block(
            &self.format,
            self.main_part_bytes(),
            self.main_len,
            consumer,
        );
        if self.remainder_len() > 0 {
            let remainder = self.remainder_values();
            consumer(&remainder);
        }
    }

    /// Random read access to the value at logical position `idx`.
    ///
    /// Returns `None` if `idx` is out of bounds *or* the format does not
    /// support random access (Section 4.2: only uncompressed data and static
    /// BP do); the caller is expected to morph the column first in that case.
    pub fn get(&self, idx: usize) -> Option<u64> {
        if idx >= self.len {
            return None;
        }
        if idx >= self.main_len {
            let offset = self.main_bytes + (idx - self.main_len) * 8;
            return Some(u64::from_le_bytes(
                self.data[offset..offset + 8].try_into().expect("8 bytes"),
            ));
        }
        get_element(&self.format, self.main_part_bytes(), self.main_len, idx)
    }

    /// Whether [`Column::get`] is supported for every position of this column.
    pub fn supports_random_access(&self) -> bool {
        self.format.supports_random_access()
    }

    /// Re-encode the column in `target` format ("morphing" at column
    /// granularity).
    ///
    /// When the main part lengths of the source and target representation
    /// coincide, the direct morph of the compression crate is used; otherwise
    /// the column is streamed chunk-wise through a [`ColumnBuilder`], so the
    /// uncompressed data never exceeds a cache-resident chunk either way.
    pub fn to_format(&self, target: &Format) -> Column {
        if &self.format == target {
            return self.clone();
        }
        let target_main_len = self.len - self.len % target.block_size();
        if target_main_len == self.main_len {
            let main = morph(&self.format, target, self.main_part_bytes(), self.main_len);
            let mut data = main;
            let main_bytes = data.len();
            data.extend_from_slice(&self.data[self.main_bytes..]);
            return Column {
                format: *target,
                len: self.len,
                main_len: self.main_len,
                main_bytes,
                data,
            };
        }
        let mut builder = ColumnBuilder::new(*target);
        self.for_each_chunk(&mut |chunk| builder.push_slice(chunk));
        builder.finish()
    }

    /// Convenience: decompress and collect into a `Vec<u64>` only if needed,
    /// otherwise borrow nothing — used by tests and examples for assertions.
    pub fn to_vec(&self) -> Vec<u64> {
        self.decompress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 13) % 977).collect()
    }

    #[test]
    fn figure3_layout_main_part_and_remainder() {
        // 450 elements with a 512-element block format: everything lands in
        // the remainder (cf. Figure 3, format C requiring multiples of 100).
        let values = sample(450);
        let column = Column::compress(&values, &Format::DynBp);
        assert_eq!(column.logical_len(), 450);
        assert_eq!(column.main_part_len(), 0);
        assert_eq!(column.remainder_len(), 450);
        assert_eq!(column.size_used_bytes(), 450 * 8);
        // With static BP (block 64): 448 elements compressed, 2 uncompressed.
        let column = Column::compress(&values, &Format::StaticBp(10));
        assert_eq!(column.main_part_len(), 448);
        assert_eq!(column.remainder_len(), 2);
        assert_eq!(column.size_used_bytes(), 448 * 10 / 8 + 2 * 8);
        assert_eq!(column.decompress(), values);
    }

    #[test]
    fn roundtrip_all_formats() {
        let values = sample(3000);
        let max = *values.iter().max().unwrap();
        for format in Format::all_formats(max) {
            let column = Column::compress(&values, &format);
            assert_eq!(column.logical_len(), values.len());
            assert_eq!(column.decompress(), values, "format {format}");
        }
    }

    #[test]
    fn compressed_columns_are_smaller() {
        let values: Vec<u64> = (0..100_000u64).map(|i| i % 64).collect();
        let uncompressed = Column::from_slice(&values);
        let compressed = Column::compress(&values, &Format::StaticBp(6));
        assert_eq!(uncompressed.size_used_bytes(), 800_000);
        assert!(compressed.size_used_bytes() < uncompressed.size_used_bytes() / 10);
    }

    #[test]
    fn random_access() {
        let values = sample(1000);
        let column = Column::compress(&values, &Format::StaticBp(10));
        assert!(column.supports_random_access());
        for idx in [0, 1, 63, 64, 500, 960, 999] {
            assert_eq!(column.get(idx), Some(values[idx]));
        }
        assert_eq!(column.get(1000), None);
        let rle = Column::compress(&values, &Format::Rle);
        assert!(!rle.supports_random_access());
        assert_eq!(rle.get(3), None);
        // Positions in the remainder are accessible for every format.
        let dyn_bp = Column::compress(&values, &Format::DynBp);
        assert_eq!(dyn_bp.main_part_len(), 512);
        assert_eq!(dyn_bp.get(700), Some(values[700]));
    }

    #[test]
    fn to_format_preserves_content() {
        let values = sample(2500);
        let max = *values.iter().max().unwrap();
        let formats = Format::all_formats(max);
        for src in &formats {
            let column = Column::compress(&values, src);
            for dst in &formats {
                let morphed = column.to_format(dst);
                assert_eq!(morphed.format(), dst);
                assert_eq!(morphed.decompress(), values, "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn to_format_same_format_is_identity() {
        let values = sample(1024);
        let column = Column::compress(&values, &Format::DynBp);
        let same = column.to_format(&Format::DynBp);
        assert_eq!(same, column);
    }

    #[test]
    fn chunks_cover_all_values_in_order() {
        let values = sample(5000);
        let column = Column::compress(&values, &Format::DeltaDynBp);
        let mut collected = Vec::new();
        column.for_each_chunk(&mut |chunk| collected.extend_from_slice(chunk));
        assert_eq!(collected, values);
    }

    #[test]
    fn empty_column() {
        let column = Column::from_slice(&[]);
        assert!(column.is_empty());
        assert_eq!(column.size_used_bytes(), 0);
        assert_eq!(column.decompress(), Vec::<u64>::new());
        assert_eq!(column.get(0), None);
        let morphed = column.to_format(&Format::Rle);
        assert!(morphed.is_empty());
    }
}
