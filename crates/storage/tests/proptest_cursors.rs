//! Property tests for the pull-based chunk cursors — the cursor analogue of
//! the chunk-directory proptest in `morph-compression`.
//!
//! The [`ChunkCursor`] contract the pairwise operators rely on:
//!
//! * streaming a cursor to completion yields exactly `decompress()`,
//! * [`Column::cursor_at`] yields exactly the requested logical slice, for
//!   ranges straddling chunk boundaries in every format,
//! * a seek repositions at a chunk start without prefix replay, and the
//!   remaining stream is exactly the suffix,
//! * two cursors over *any* format pair can be interleaved into the
//!   position-wise pairing, with every decoded piece cache-resident.

use morph_compression::{Format, CACHE_BUFFER_ELEMENTS};
use morph_storage::{ChunkCursor, Column};
use proptest::prelude::*;

/// Value vectors with diverse characteristics: small values, huge values,
/// runs, sorted ranges (mirrors the compression-crate proptest).
fn value_vectors() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        prop::collection::vec(0u64..1000, 0..3000),
        prop::collection::vec(any::<u64>(), 0..1500),
        prop::collection::vec((0u64..5, 1usize..200), 0..40).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(v, n)| std::iter::repeat_n(v, n))
                .collect()
        }),
        (0u64..1_000_000, prop::collection::vec(0u64..50, 0..2500)).prop_map(|(start, deltas)| {
            deltas
                .into_iter()
                .scan(start, |acc, d| {
                    *acc += d;
                    Some(*acc)
                })
                .collect()
        }),
    ]
}

fn all_formats(values: &[u64]) -> Vec<Format> {
    let max = values.iter().copied().max().unwrap_or(0);
    Format::all_formats(max)
}

/// Collect a cursor's remaining stream, asserting cache residency.
fn drain(cursor: &mut morph_storage::ColumnCursor<'_>) -> Vec<u64> {
    let mut collected = Vec::new();
    while let Some(piece) = cursor.next_chunk() {
        assert!(
            piece.len() <= CACHE_BUFFER_ELEMENTS,
            "piece not cache-resident"
        );
        collected.extend_from_slice(piece);
    }
    collected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cursor_stream_equals_decompress(values in value_vectors()) {
        for format in all_formats(&values) {
            let column = Column::compress(&values, &format);
            let mut cursor = column.cursor();
            prop_assert_eq!(&drain(&mut cursor), &values, "format {}", format);
            // Exhausted cursors stay exhausted.
            prop_assert!(cursor.next_chunk().is_none());
        }
    }

    #[test]
    fn cursor_ranges_equal_decompress_slices(
        values in value_vectors(),
        cuts in prop::collection::vec((any::<u32>(), any::<u32>()), 1..5),
    ) {
        for format in all_formats(&values) {
            let column = Column::compress(&values, &format);
            let n = values.len();
            for &(a, b) in &cuts {
                let (mut lo, mut hi) = ((a as usize) % (n + 1), (b as usize) % (n + 1));
                if lo > hi {
                    std::mem::swap(&mut lo, &mut hi);
                }
                let mut cursor = column.cursor_at(lo..hi);
                prop_assert_eq!(
                    &drain(&mut cursor),
                    &values[lo..hi],
                    "format {}, range {}..{}",
                    format, lo, hi
                );
            }
        }
    }

    #[test]
    fn cursor_seek_streams_the_suffix(
        values in value_vectors(),
        seeks in prop::collection::vec(any::<u32>(), 1..5),
    ) {
        for format in all_formats(&values) {
            let column = Column::compress(&values, &format);
            let chunks = column.chunk_count();
            let mut cursor = column.cursor();
            // Per the trait contract, an index at or past the chunk count
            // positions at end-of-stream rather than panicking.
            cursor.seek(chunks + 1 + (seeks[0] as usize % 7));
            prop_assert!(cursor.next_chunk().is_none(), "format {}", format);
            for &raw in &seeks {
                let chunk = (raw as usize) % (chunks + 1);
                let start = column.chunk_logical_start(chunk);
                cursor.seek(chunk);
                prop_assert_eq!(
                    &drain(&mut cursor),
                    &values[start..],
                    "format {}, seek to chunk {}",
                    format, chunk
                );
            }
        }
    }

    #[test]
    fn paired_cursors_zip_every_format_pair(
        values in value_vectors(),
        mixer in any::<u64>(),
        cut in (any::<u32>(), any::<u32>()),
    ) {
        // A second column of the same length with different (and
        // differently compressible) content, so the two sides land on
        // different chunk grids.
        let other: Vec<u64> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| v.wrapping_mul(31).wrapping_add(mixer ^ i as u64) % 911)
            .collect();
        let n = values.len();
        let (mut lo, mut hi) = ((cut.0 as usize) % (n + 1), (cut.1 as usize) % (n + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        for a_format in all_formats(&values) {
            for b_format in all_formats(&other) {
                let a = Column::compress(&values, &a_format);
                let b = Column::compress(&other, &b_format);
                // Interleave the two cursors exactly like the pairwise
                // operators: pull from both, pair the overlap, carry the
                // longer side's surplus.
                let mut ca = a.cursor_at(lo..hi);
                let mut cb = b.cursor_at(lo..hi);
                let (mut carry_a, mut carry_b): (Vec<u64>, Vec<u64>) = (Vec::new(), Vec::new());
                let (mut off_a, mut off_b) = (0usize, 0usize);
                let mut pairs: Vec<(u64, u64)> = Vec::new();
                loop {
                    if off_a == carry_a.len() {
                        carry_a.clear();
                        off_a = 0;
                        match ca.next_chunk() {
                            Some(piece) => carry_a.extend_from_slice(piece),
                            None => break,
                        }
                    }
                    if off_b == carry_b.len() {
                        carry_b.clear();
                        off_b = 0;
                        match cb.next_chunk() {
                            Some(piece) => carry_b.extend_from_slice(piece),
                            None => break,
                        }
                    }
                    prop_assert!(carry_a.capacity() <= CACHE_BUFFER_ELEMENTS);
                    prop_assert!(carry_b.capacity() <= CACHE_BUFFER_ELEMENTS);
                    let take = (carry_a.len() - off_a).min(carry_b.len() - off_b);
                    for i in 0..take {
                        pairs.push((carry_a[off_a + i], carry_b[off_b + i]));
                    }
                    off_a += take;
                    off_b += take;
                }
                let expected: Vec<(u64, u64)> = values[lo..hi]
                    .iter()
                    .zip(other[lo..hi].iter())
                    .map(|(&x, &y)| (x, y))
                    .collect();
                prop_assert_eq!(
                    &pairs, &expected,
                    "pairing {} with {}, range {}..{}",
                    a_format, b_format, lo, hi
                );
            }
        }
    }
}
