//! Offline stand-in for the `criterion` crate.
//!
//! Covers the subset this workspace's benches use: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`] with sample size,
//! warm-up / measurement time and [`Throughput`] annotations,
//! `bench_function` / `bench_with_input` with [`BenchmarkId`]s, and
//! [`Bencher::iter`].  Results (mean ns/iteration and derived throughput)
//! are printed to stdout.  Set `MORPH_BENCH_FAST=1` to clamp warm-up and
//! measurement times for smoke runs.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Work-per-iteration annotation used to derive a throughput rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many data elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter label.
    pub fn new(function: impl ToString, parameter: impl ToString) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.to_string(), parameter.to_string()),
        }
    }

    /// Identifier from a parameter label alone.
    pub fn from_parameter(parameter: impl ToString) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Runs one benchmark body repeatedly and records the mean time.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`: warm up, then time batches until the measurement budget
    /// is spent; the mean ns/iteration is recorded for reporting.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_up_until = Instant::now() + self.warm_up;
        let mut batch = 1u64;
        while Instant::now() < warm_up_until {
            black_box(f());
            batch += 1;
        }
        // One sample = one timed batch; size the batch so all samples fit
        // into the measurement budget.
        let probe = Instant::now();
        black_box(f());
        let per_iter = probe.elapsed().max(Duration::from_nanos(1));
        let total_iters = (self.measurement.as_nanos() / per_iter.as_nanos()).max(1) as u64;
        let per_sample = (total_iters / self.sample_size as u64).max(1);
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            spent += start.elapsed();
            iters += per_sample;
            if spent > self.measurement * 2 {
                break;
            }
        }
        let _ = batch;
        self.mean_ns = spent.as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up = t;
        self
    }

    /// Total sampling budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Annotate the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let fast = std::env::var_os("MORPH_BENCH_FAST").is_some();
        let mut bencher = Bencher {
            warm_up: if fast {
                Duration::from_millis(1)
            } else {
                self.warm_up
            },
            measurement: if fast {
                Duration::from_millis(10)
            } else {
                self.measurement
            },
            sample_size: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>10.1} Melem/s", n as f64 / bencher.mean_ns * 1e9 / 1e6)
            }
            Throughput::Bytes(n) => format!(
                "  {:>10.1} MiB/s",
                n as f64 / bencher.mean_ns * 1e9 / (1024.0 * 1024.0)
            ),
        });
        println!(
            "{}/{:<60} {:>14.1} ns/iter{}",
            self.name,
            id,
            bencher.mean_ns,
            rate.unwrap_or_default()
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        self.run(id.into().id, f);
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.run(id.into().id, |b| f(b, input));
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Bundle benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            eprintln!("ran {} benchmarks", criterion.benchmarks_run());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        std::env::set_var("MORPH_BENCH_FAST", "1");
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7u64), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs > 0);
        assert_eq!(criterion.benchmarks_run(), 2);
    }
}
