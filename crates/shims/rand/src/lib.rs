//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` (over integer and float ranges) and
//! `gen_bool`.  The generator is a SplitMix64 stream — statistically solid
//! for data generation, deliberately not cryptographic, and *not*
//! stream-compatible with the real `rand` crate (the workspace only relies
//! on per-seed determinism).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value out of a range, implemented per range type.
pub trait SampleRange<T> {
    /// Draw one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range` (`low..high` or
    /// `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        sample_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniformly random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject the tail of the modulus bias zone; the loop terminates almost
    // immediately for every realistic bound.
    let zone = u64::MAX - u64::MAX % bound;
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + sample_below(rng, span + 1) as $t
            }
        }
    )+};
}

impl_int_ranges!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let take = |rng: &mut StdRng| {
            (0..32)
                .map(|_| rng.gen_range(0..1000u64))
                .collect::<Vec<_>>()
        };
        assert_eq!(take(&mut a), take(&mut b));
        assert_ne!(take(&mut a), take(&mut c));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=5u64);
            assert_eq!(w, 5);
            let x = rng.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((15_000..25_000).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn full_u64_range_is_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = rng.gen_range(0..=u64::MAX);
        let _ = v;
    }
}
