//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range / tuple / collection
//! strategies, [`Strategy::prop_map`], [`prop_oneof!`], [`any`], and the
//! `prop_assert*` macros.  Inputs are generated from a per-test
//! deterministic stream (the test name and the case index), so failures are
//! reproducible run-to-run; there is no shrinking — the failing case index
//! is part of the panic message instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case input stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index, so each
        // test and each case draw from an independent stream.
        let mut hash: u64 = 0xCBF29CE484222325;
        for byte in name.bytes() {
            hash = (hash ^ byte as u64).wrapping_mul(0x100000001B3);
        }
        TestRng {
            state: hash ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }
}

/// Number of cases each `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated inputs the test body is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from the stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every produced value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always produces a clone of one fixed value, mirroring
/// `proptest::strategy::Just` — the natural arm for edge-value pools in
/// `prop_oneof!`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of one value type (the
/// expansion of [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )+};
}

impl_int_range_strategies!(u64, u32, u8, usize);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<E>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The commonly imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(arms)
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` body
/// runs for every generated case; the panic message of a failing case
/// includes the case index for reproduction.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed (deterministic; rerun reproduces it)",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn streams_are_deterministic_and_independent() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        let mut c = TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_cover_the_requested_shapes() {
        let mut rng = TestRng::for_case("shapes", 0);
        let v = prop::collection::vec(0u64..10, 5..6).generate(&mut rng);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&x| x < 10));
        let (a, b) = (0u64..3, 10usize..12).generate(&mut rng);
        assert!(a < 3 && (10..12).contains(&b));
        let mapped = (0u64..4).prop_map(|x| x * 100).generate(&mut rng);
        assert!(mapped % 100 == 0 && mapped < 400);
        let one = prop_oneof![0u64..1, 5u64..6].generate(&mut rng);
        assert!(one == 0 || one == 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs_cases(x in 0u64..100, v in prop::collection::vec(any::<u64>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(x in 0u32..7) {
            prop_assert!(x < 7);
        }
    }
}
