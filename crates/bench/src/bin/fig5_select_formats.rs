//! Figure 5: runtime of the select operator for all 25 input×output format
//! combinations on the synthetic columns C1–C4 (point predicate, 90 %
//! selectivity).
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin fig5_select_formats [--elements N] [--runs R]`

use std::time::{Duration, Instant};

use morph_bench::{fmt_ms, print_header, print_row, HarnessArgs};
use morph_compression::Format;
use morph_storage::datagen::SyntheticColumn;
use morph_storage::Column;
use morphstore_engine::{select, CmpOp, ExecSettings, IntegrationDegree, ProcessingStyle};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "# Figure 5: select-operator runtime, all format combinations ({} elements, {} runs)",
        args.elements, args.runs
    );
    print_header(&[
        "column",
        "input_format",
        "output_format",
        "runtime_ms",
        "selected",
    ]);
    for column in SyntheticColumn::all() {
        let (values, constant) = column.generate_select_input(args.elements, args.seed);
        let max = values.iter().copied().max().unwrap_or(0);
        let formats = Format::paper_formats(max);
        let uncompressed = Column::from_slice(&values);
        let mut fastest: Option<(Duration, String)> = None;
        let mut baseline = Duration::ZERO;
        for input_format in &formats {
            let input = uncompressed.to_format(input_format);
            for output_format in &formats {
                let settings = ExecSettings {
                    style: ProcessingStyle::Vectorized,
                    degree: if input_format.is_compressed() || output_format.is_compressed() {
                        IntegrationDegree::OnTheFlyDeRecompression
                    } else {
                        IntegrationDegree::PurelyUncompressed
                    },
                    ..ExecSettings::default()
                };
                let mut total = Duration::ZERO;
                let mut selected = 0usize;
                for _ in 0..args.runs.max(1) {
                    let start = Instant::now();
                    let out = select(CmpOp::Eq, &input, constant, output_format, &settings);
                    total += start.elapsed();
                    selected = out.logical_len();
                }
                let mean = total / args.runs.max(1) as u32;
                if !input_format.is_compressed() && !output_format.is_compressed() {
                    baseline = mean;
                }
                let label = format!("{input_format} -> {output_format}");
                if fastest.as_ref().map(|(d, _)| mean < *d).unwrap_or(true) {
                    fastest = Some((mean, label));
                }
                print_row(&[
                    column.label().to_string(),
                    input_format.to_string(),
                    output_format.to_string(),
                    fmt_ms(mean),
                    selected.to_string(),
                ]);
            }
        }
        let (best_time, best_label) = fastest.expect("at least one combination");
        println!(
            "summary,{},best = {} at {} ms,uncompressed baseline = {} ms,saving = {:.0}%",
            column.label(),
            best_label,
            fmt_ms(best_time),
            fmt_ms(baseline),
            (1.0 - best_time.as_secs_f64() / baseline.as_secs_f64().max(1e-12)) * 100.0
        );
    }
}
