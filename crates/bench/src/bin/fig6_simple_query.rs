//! Figure 6: memory footprint (a) and runtime (b) of the simple query
//! `SELECT SUM(Y) FROM R WHERE X = c` for three base-column cases and several
//! format configurations.
//!
//! The cases follow Section 5.1: case 1 = (X=C1, Y=C1), case 2 = (X=C1,
//! Y=C4), case 3 = (X=C2, Y=C3); the selection constant is the most frequent
//! value (90 % selectivity).
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin fig6_simple_query [--elements N] [--runs R]`

use std::time::{Duration, Instant};

use morph_bench::{fmt_mib, fmt_ms, print_header, print_row, HarnessArgs};
use morph_compression::Format;
use morph_storage::datagen::SyntheticColumn;
use morph_storage::Column;
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{
    agg_sum, project, select, CmpOp, ExecSettings, ExecutionContext, IntegrationDegree,
};

/// One format configuration of the simple query: formats for the base
/// columns X and Y and the intermediates X' (positions) and Y' (projected
/// values).
struct Config {
    label: &'static str,
    base: Format,
    positions: Format,
    projected: Format,
    degree: IntegrationDegree,
}

fn run_simple_query(
    x: &Column,
    y: &Column,
    constant: u64,
    config: &Config,
) -> (u64, ExecutionContext, Duration) {
    let settings = ExecSettings {
        degree: config.degree,
        ..ExecSettings::default()
    };
    let mut ctx = ExecutionContext::new(settings.clone(), FormatConfig::uncompressed());
    let start = Instant::now();
    let x_base = x.to_format(&config.base);
    let y_base = y.to_format(&config.base);
    ctx.record_base("X", &x_base);
    ctx.record_base("Y", &y_base);
    let positions = ctx.time("select", || {
        select(CmpOp::Eq, &x_base, constant, &config.positions, &settings)
    });
    ctx.record_intermediate("X'", &positions);
    let projected = ctx.time("project", || {
        project(&y_base, &positions, &config.projected, &settings)
    });
    ctx.record_intermediate("Y'", &projected);
    let sum = ctx.time("sum", || agg_sum(&projected, &settings));
    let elapsed = start.elapsed();
    (sum, ctx, elapsed)
}

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "# Figure 6: simple query SELECT SUM(Y) FROM R WHERE X = c ({} elements, {} runs)",
        args.elements, args.runs
    );
    let cases = [
        ("case1", SyntheticColumn::C1, SyntheticColumn::C1),
        ("case2", SyntheticColumn::C1, SyntheticColumn::C4),
        ("case3", SyntheticColumn::C2, SyntheticColumn::C3),
    ];
    let configs = [
        Config {
            label: "uncompressed",
            base: Format::Uncompressed,
            positions: Format::Uncompressed,
            projected: Format::Uncompressed,
            degree: IntegrationDegree::PurelyUncompressed,
        },
        Config {
            label: "static BP (base only)",
            base: Format::StaticBp(63),
            positions: Format::Uncompressed,
            projected: Format::Uncompressed,
            degree: IntegrationDegree::OnTheFlyDeRecompression,
        },
        Config {
            label: "static BP (base + intermediates)",
            base: Format::StaticBp(63),
            positions: Format::StaticBp(63),
            projected: Format::StaticBp(63),
            degree: IntegrationDegree::OnTheFlyDeRecompression,
        },
        Config {
            label: "DELTA+SIMD-BP X' / static BP rest",
            base: Format::StaticBp(63),
            positions: Format::DeltaDynBp,
            projected: Format::StaticBp(63),
            degree: IntegrationDegree::OnTheFlyDeRecompression,
        },
        Config {
            label: "DELTA+SIMD-BP X' / FOR+SIMD-BP Y'",
            base: Format::StaticBp(63),
            positions: Format::DeltaDynBp,
            projected: Format::ForDynBp,
            degree: IntegrationDegree::OnTheFlyDeRecompression,
        },
    ];
    print_header(&[
        "case",
        "config",
        "X_mib",
        "Y_mib",
        "Xprime_mib",
        "Yprime_mib",
        "total_mib",
        "runtime_ms",
        "sum",
    ]);
    for (case, x_col, y_col) in cases {
        let (x_values, constant) = x_col.generate_select_input(args.elements, args.seed);
        let y_values = y_col.generate(args.elements, args.seed + 1);
        let x = Column::from_slice(&x_values);
        let y = Column::from_slice(&y_values);
        let mut reference_sum = None;
        for config in &configs {
            // For the three cases the static width should fit the data, not
            // hard-code 63: derive per case.
            let max = x_values
                .iter()
                .chain(y_values.iter())
                .copied()
                .max()
                .unwrap_or(0);
            let fitted = Config {
                label: config.label,
                base: match config.base {
                    Format::StaticBp(_) => Format::static_bp_for_max(max),
                    other => other,
                },
                positions: match config.positions {
                    Format::StaticBp(_) => Format::static_bp_for_max(args.elements as u64),
                    other => other,
                },
                projected: match config.projected {
                    Format::StaticBp(_) => Format::static_bp_for_max(max),
                    other => other,
                },
                degree: config.degree,
            };
            let mut total_runtime = Duration::ZERO;
            let mut outcome = None;
            for _ in 0..args.runs.max(1) {
                let (sum, ctx, elapsed) = run_simple_query(&x, &y, constant, &fitted);
                total_runtime += elapsed;
                outcome = Some((sum, ctx));
            }
            let (sum, ctx) = outcome.expect("at least one run");
            match reference_sum {
                None => reference_sum = Some(sum),
                Some(reference) => assert_eq!(sum, reference, "result changed with the format"),
            }
            let size_of = |name: &str| {
                ctx.records()
                    .iter()
                    .find(|r| r.name == name)
                    .map(|r| r.bytes)
                    .unwrap_or(0)
            };
            print_row(&[
                case.to_string(),
                fitted.label.to_string(),
                fmt_mib(size_of("X")),
                fmt_mib(size_of("Y")),
                fmt_mib(size_of("X'")),
                fmt_mib(size_of("Y'")),
                fmt_mib(ctx.total_footprint_bytes()),
                fmt_ms(total_runtime / args.runs.max(1) as u32),
                sum.to_string(),
            ]);
        }
        println!();
    }
    println!(
        "summary: compressing base columns AND intermediates shrinks both footprint and runtime;"
    );
    println!(
        "         the best intermediate format depends on the case (cf. Figure 6 of the paper)."
    );
}
