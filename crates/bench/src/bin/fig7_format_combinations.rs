//! Figure 7: impact of the format combination on the total memory footprint
//! (a) and the total runtime (b) of every SSB query.
//!
//! Four combinations are compared, as in the paper: the worst combination,
//! purely uncompressed, static BP for all columns, and the best combination.
//! Best/worst footprint combinations come from the exhaustive per-column
//! search; for the runtime the same combinations are reported by default, and
//! `--greedy` enables the paper's greedy measured runtime search (expensive).
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin fig7_format_combinations [--scale-factor F] [--runs R] [--greedy]`

use std::collections::HashMap;

use morph_bench::{
    apply_to_base, assignable_columns, fmt_mib, fmt_ms, measure_query, print_header, print_row,
    strategy_config, HarnessArgs,
};
use morph_cost::{greedy_runtime_search, FormatSelectionStrategy};
use morph_ssb::{dbgen, SsbQuery};
use morph_storage::ColumnStats;
use morphstore_engine::ExecSettings;

fn main() {
    let args = HarnessArgs::parse();
    let data = dbgen::generate(args.scale_factor, args.seed);
    println!(
        "# Figure 7: impact of format combinations on SSB (scale factor {}, {} runs)",
        args.scale_factor, args.runs
    );
    print_header(&["query", "combination", "footprint_mib", "runtime_ms"]);
    let strategies = [
        (
            "worst combination",
            FormatSelectionStrategy::ExhaustiveWorstFootprint,
        ),
        ("uncompressed", FormatSelectionStrategy::AllUncompressed),
        ("static BP", FormatSelectionStrategy::AllStaticBp),
        (
            "best combination",
            FormatSelectionStrategy::ExhaustiveBestFootprint,
        ),
    ];
    let mut totals: HashMap<&str, (f64, f64)> = HashMap::new();
    for query in SsbQuery::all() {
        let mut reference_rows = None;
        for (label, strategy) in strategies {
            let config = if args.greedy && label.ends_with("combination") {
                // The paper's greedy measured-runtime search; minimise for
                // "best", maximise for "worst".
                let columns: Vec<(String, u64)> = assignable_columns(query, &data)
                    .into_iter()
                    .map(|(name, column)| (name, ColumnStats::from_column(&column).max))
                    .collect();
                greedy_runtime_search(
                    &columns,
                    |candidate| {
                        let base = apply_to_base(&data, candidate);
                        measure_query(
                            query,
                            &base,
                            ExecSettings::vectorized_compressed(),
                            candidate,
                            1,
                        )
                        .runtime
                    },
                    label == "best combination",
                )
            } else {
                strategy_config(query, &data, strategy)
            };
            let base = apply_to_base(&data, &config);
            let measurement = measure_query(
                query,
                &base,
                ExecSettings::vectorized_compressed(),
                &config,
                args.runs,
            );
            match &reference_rows {
                None => reference_rows = Some(measurement.result.sorted_rows()),
                Some(reference) => assert_eq!(
                    &measurement.result.sorted_rows(),
                    reference,
                    "{query}: result changed under {label}"
                ),
            }
            let entry = totals.entry(label).or_insert((0.0, 0.0));
            entry.0 += measurement.footprint_bytes as f64;
            entry.1 += measurement.runtime.as_secs_f64();
            print_row(&[
                query.label().to_string(),
                label.to_string(),
                fmt_mib(measurement.footprint_bytes),
                fmt_ms(measurement.runtime),
            ]);
        }
    }
    println!();
    println!("# Averages over the 13 queries");
    print_header(&["combination", "avg_footprint_mib", "avg_runtime_ms"]);
    for (label, _) in strategies {
        let (bytes, secs) = totals[label];
        print_row(&[
            label.to_string(),
            format!("{:.3}", bytes / 13.0 / (1024.0 * 1024.0)),
            format!("{:.3}", secs / 13.0 * 1e3),
        ]);
    }
}
