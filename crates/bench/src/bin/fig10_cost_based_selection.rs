//! Figure 10: fitness of the cost-based format selection — total memory
//! footprint per SSB query for static BP everywhere, the cost-based
//! selection, and the exhaustive best combination.
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin fig10_cost_based_selection [--scale-factor F]`

use std::collections::HashMap;

use morph_bench::{
    apply_to_base, fmt_mib, measure_query, print_header, print_row, strategy_config, HarnessArgs,
};
use morph_cost::FormatSelectionStrategy;
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::ExecSettings;

fn main() {
    let args = HarnessArgs::parse();
    let data = dbgen::generate(args.scale_factor, args.seed);
    println!(
        "# Figure 10: cost-based format selection vs. static BP vs. exhaustive best (scale factor {})",
        args.scale_factor
    );
    print_header(&["query", "strategy", "footprint_mib"]);
    let strategies = [
        FormatSelectionStrategy::AllStaticBp,
        FormatSelectionStrategy::CostBased,
        FormatSelectionStrategy::ExhaustiveBestFootprint,
    ];
    let mut totals: HashMap<&str, f64> = HashMap::new();
    for query in SsbQuery::all() {
        for strategy in strategies {
            let config = strategy_config(query, &data, strategy);
            let base = apply_to_base(&data, &config);
            let measurement = measure_query(
                query,
                &base,
                ExecSettings::vectorized_compressed(),
                &config,
                1,
            );
            *totals.entry(strategy.label()).or_default() += measurement.footprint_bytes as f64;
            print_row(&[
                query.label().to_string(),
                strategy.label().to_string(),
                fmt_mib(measurement.footprint_bytes),
            ]);
        }
    }
    println!();
    println!("# Averages over the 13 queries");
    print_header(&["strategy", "avg_footprint_mib", "relative_to_best"]);
    let best = totals[FormatSelectionStrategy::ExhaustiveBestFootprint.label()];
    for strategy in strategies {
        let total = totals[strategy.label()];
        print_row(&[
            strategy.label().to_string(),
            format!("{:.3}", total / 13.0 / (1024.0 * 1024.0)),
            format!("{:.3}", total / best),
        ]);
    }
    println!();
    println!("summary: the cost-based selection should land within a few percent of the exhaustive best,");
    println!("         reproducing the claim of Figure 10.");
}
