//! Table 1: properties of the synthetic columns C1–C4, plus (as additional
//! context) the exact compressed size each format achieves on them.
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin table1_columns [--elements N]`

use morph_bench::{fmt_mib, print_header, print_row, HarnessArgs};
use morph_compression::{compressed_size_bytes, Format};
use morph_storage::datagen::SyntheticColumn;
use morph_storage::ColumnStats;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "# Table 1: synthetic column properties ({} elements)",
        args.elements
    );
    print_header(&[
        "column",
        "distribution",
        "sorted",
        "max_bit_width",
        "distinct",
        "runs",
    ]);
    let descriptions = [
        "uniform in [0,63]",
        "99.99% uniform in [0,63]; 0.01% 2^63-1",
        "uniform in [2^62, 2^62+63]",
        "uniform in [2^47, 2^47+100K]",
    ];
    let mut generated = Vec::new();
    for (column, description) in SyntheticColumn::all().into_iter().zip(descriptions) {
        let values = column.generate(args.elements, args.seed);
        let stats = ColumnStats::from_values(&values);
        print_row(&[
            column.label().to_string(),
            description.to_string(),
            if stats.sorted { "yes" } else { "no" }.to_string(),
            stats.max_bit_width().to_string(),
            stats.distinct.to_string(),
            stats.runs.to_string(),
        ]);
        generated.push((column, values, stats));
    }

    println!();
    println!(
        "# Compressed sizes per format [MiB] (uncompressed = {} MiB)",
        fmt_mib(args.elements * 8)
    );
    print_header(&["column", "format", "size_mib", "fraction_of_uncompressed"]);
    for (column, values, stats) in &generated {
        for format in Format::all_formats(stats.max) {
            let size = compressed_size_bytes(&format, values);
            print_row(&[
                column.label().to_string(),
                format.to_string(),
                fmt_mib(size),
                format!("{:.3}", size as f64 / (values.len() * 8) as f64),
            ]);
        }
    }
    println!();
    println!(
        "summary: C1/C2/C3/C4 reproduce the max bit widths 6/63/63/48 and the sortedness of Table 1"
    );
}
