//! Figure 8: contribution of compressing intermediates on top of base data.
//!
//! Three configurations per query, as in the paper: no compression at all,
//! compression allowed for base columns only, and compression for base
//! columns and intermediates (per-column best footprint formats).
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin fig8_base_vs_intermediates [--scale-factor F] [--runs R]`

use std::collections::HashMap;

use morph_bench::{
    apply_to_base, base_only_config, fmt_mib, fmt_ms, measure_query, print_header, print_row,
    strategy_config, HarnessArgs,
};
use morph_cost::FormatSelectionStrategy;
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::ExecSettings;

fn main() {
    let args = HarnessArgs::parse();
    let data = dbgen::generate(args.scale_factor, args.seed);
    println!(
        "# Figure 8: compression of base data vs. intermediates (scale factor {}, {} runs)",
        args.scale_factor, args.runs
    );
    print_header(&["query", "configuration", "footprint_mib", "runtime_ms"]);
    let mut totals: HashMap<&str, (f64, f64)> = HashMap::new();
    for query in SsbQuery::all() {
        let best = strategy_config(
            query,
            &data,
            FormatSelectionStrategy::ExhaustiveBestFootprint,
        );
        let configs = [
            ("uncompressed", FormatConfig::uncompressed()),
            ("compressed base columns", base_only_config(query, &best)),
            ("compressed base + intermediates", best.clone()),
        ];
        let mut reference_rows = None;
        for (label, config) in configs {
            let base = apply_to_base(&data, &config);
            let measurement = measure_query(
                query,
                &base,
                ExecSettings::vectorized_compressed(),
                &config,
                args.runs,
            );
            match &reference_rows {
                None => reference_rows = Some(measurement.result.sorted_rows()),
                Some(reference) => assert_eq!(&measurement.result.sorted_rows(), reference),
            }
            let entry = totals.entry(label).or_insert((0.0, 0.0));
            entry.0 += measurement.footprint_bytes as f64;
            entry.1 += measurement.runtime.as_secs_f64();
            print_row(&[
                query.label().to_string(),
                label.to_string(),
                fmt_mib(measurement.footprint_bytes),
                fmt_ms(measurement.runtime),
            ]);
        }
    }
    println!();
    println!("# Averages over the 13 queries");
    print_header(&["configuration", "avg_footprint_mib", "avg_runtime_ms"]);
    for label in [
        "uncompressed",
        "compressed base columns",
        "compressed base + intermediates",
    ] {
        let (bytes, secs) = totals[label];
        print_row(&[
            label.to_string(),
            format!("{:.3}", bytes / 13.0 / (1024.0 * 1024.0)),
            format!("{:.3}", secs / 13.0 * 1e3),
        ]);
    }
}
