//! Figure 1: average runtime of all 13 SSB queries for the four headline
//! configurations (MonetDB-like scalar baseline, MorphStore scalar 64-bit,
//! MorphStore vectorized 64-bit, MorphStore vectorized compressed).
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin fig1_headline [--scale-factor F] [--runs R]`

use std::time::Duration;

use morph_bench::{
    apply_to_base, fmt_ms, measure_query, print_header, print_row, runtime_cost_based_config,
    HarnessArgs,
};
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::ExecSettings;

fn main() {
    let args = HarnessArgs::parse();
    let data = dbgen::generate(args.scale_factor, args.seed);
    println!(
        "# Figure 1: average SSB query runtime, four configurations (scale factor {}, {} runs)",
        args.scale_factor, args.runs
    );
    let mut totals = [Duration::ZERO; 4];
    for query in SsbQuery::all() {
        let best = runtime_cost_based_config(query, &data);
        let compressed_base = apply_to_base(&data, &best);
        let configurations = [
            (
                &data,
                ExecSettings::scalar_uncompressed(),
                FormatConfig::uncompressed(),
            ),
            (
                &data,
                ExecSettings::scalar_uncompressed(),
                FormatConfig::uncompressed(),
            ),
            (
                &data,
                ExecSettings::vectorized_uncompressed(),
                FormatConfig::uncompressed(),
            ),
            (
                &compressed_base,
                ExecSettings::vectorized_compressed(),
                best.clone(),
            ),
        ];
        for (i, (base, settings, config)) in configurations.into_iter().enumerate() {
            totals[i] += measure_query(query, base, settings, &config, args.runs).runtime;
        }
    }
    let labels = [
        "MonetDB-like scalar, 64-bit",
        "MorphStore scalar, 64-bit",
        "MorphStore vectorized, 64-bit",
        "MorphStore vectorized, compressed",
    ];
    print_header(&["configuration", "avg_runtime_ms", "relative_to_scalar"]);
    let scalar = totals[1].as_secs_f64();
    for (label, total) in labels.iter().zip(totals.iter()) {
        print_row(&[
            label.to_string(),
            fmt_ms(*total / 13),
            format!("{:.3}", total.as_secs_f64() / scalar),
        ]);
    }
    println!();
    println!("summary: vectorization reduces the average runtime vs. scalar, and continuous");
    println!(
        "         compression reduces it further (cf. the ~19% and ~54% reductions of the paper)."
    );
}
