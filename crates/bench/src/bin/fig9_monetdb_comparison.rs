//! Figure 9: runtime comparison of the baseline system and the MorphStore
//! configurations, per SSB query.
//!
//! Five series, as in the paper:
//!
//! 1. "MonetDB scalar uncompr." — simulated by the engine's purely
//!    uncompressed scalar operator-at-a-time execution (the paper shows the
//!    two systems to be equally fast on average in exactly this setting; see
//!    DESIGN.md, Substitutions),
//! 2. MorphStore scalar uncompressed,
//! 3. MorphStore vectorized uncompressed,
//! 4. MorphStore vectorized with continuous compression (per-column best
//!    footprint formats),
//! 5. "MonetDB scalar narrow types" — simulated by byte-aligned static BP on
//!    the base columns with uncompressed intermediates and scalar processing.
//!
//! Regenerate with:
//! `cargo run -p morph-bench --release --bin fig9_monetdb_comparison [--scale-factor F] [--runs R]`

use std::collections::HashMap;
use std::time::Duration;

use morph_bench::{
    apply_to_base, base_only_config, fmt_ms, measure_query, print_header, print_row,
    runtime_cost_based_config, HarnessArgs,
};
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::ExecSettings;

fn main() {
    let args = HarnessArgs::parse();
    let data = dbgen::generate(args.scale_factor, args.seed);
    println!(
        "# Figure 9 / Figure 1: MonetDB-baseline vs. MorphStore configurations (scale factor {}, {} runs)",
        args.scale_factor, args.runs
    );
    print_header(&["query", "configuration", "runtime_ms"]);
    let series: [(&str, ExecSettings); 5] = [
        (
            "monetdb-like scalar uncompressed",
            ExecSettings::scalar_uncompressed(),
        ),
        (
            "morphstore scalar uncompressed",
            ExecSettings::scalar_uncompressed(),
        ),
        (
            "morphstore vectorized uncompressed",
            ExecSettings::vectorized_uncompressed(),
        ),
        (
            "morphstore vectorized compressed",
            ExecSettings::vectorized_compressed(),
        ),
        (
            "monetdb-like scalar narrow types",
            ExecSettings::scalar_uncompressed(),
        ),
    ];
    let mut totals: HashMap<&str, Duration> = HashMap::new();
    let narrow_base = data.with_narrow_static_bp(true);
    for query in SsbQuery::all() {
        let best = runtime_cost_based_config(query, &data);
        let mut reference_rows = None;
        for (label, settings) in series.clone() {
            let (base, config) = match label {
                "morphstore vectorized compressed" => (apply_to_base(&data, &best), best.clone()),
                "monetdb-like scalar narrow types" => (
                    narrow_base.clone(),
                    base_only_config(query, &FormatConfig::uncompressed()),
                ),
                _ => (data.clone(), FormatConfig::uncompressed()),
            };
            let measurement = measure_query(query, &base, settings, &config, args.runs);
            match &reference_rows {
                None => reference_rows = Some(measurement.result.sorted_rows()),
                Some(reference) => assert_eq!(&measurement.result.sorted_rows(), reference),
            }
            *totals.entry(label).or_default() += measurement.runtime;
            print_row(&[
                query.label().to_string(),
                label.to_string(),
                fmt_ms(measurement.runtime),
            ]);
        }
    }
    println!();
    println!("# Figure 1: average runtime over the 13 SSB queries");
    print_header(&[
        "configuration",
        "avg_runtime_ms",
        "relative_to_scalar_uncompressed",
    ]);
    let scalar = totals["morphstore scalar uncompressed"].as_secs_f64();
    for (label, _) in series {
        let total = totals[label].as_secs_f64();
        print_row(&[
            label.to_string(),
            format!("{:.3}", total / 13.0 * 1e3),
            format!("{:.3}", total / scalar),
        ]);
    }
}
