//! Shared harness code for the benchmark binaries that regenerate the tables
//! and figures of the MorphStore paper.
//!
//! Every binary accepts the same command-line arguments:
//!
//! * `--scale-factor <f>` — SSB scale factor (default 0.05; the paper uses 10),
//! * `--elements <n>` — element count for the micro-benchmarks (default 2 Mi;
//!   the paper uses 128 Mi),
//! * `--runs <n>` — repetitions per measurement, the mean is reported
//!   (default 3; the paper uses 10),
//! * `--seed <n>` — RNG seed (default 42),
//! * `--greedy` — enable the greedy measured runtime search where applicable
//!   (expensive; off by default).
//!
//! Output is CSV-like (comma-separated rows with a header) followed by a
//! short human-readable summary, so results can be recorded in
//! EXPERIMENTS.md or piped into a plotting tool.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use morph_compression::Format;
use morph_cost::FormatSelectionStrategy;
use morph_ssb::{QueryResult, SsbData, SsbQuery};
use morph_storage::Column;
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{ExecSettings, ExecutionContext};

/// Command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// SSB scale factor.
    pub scale_factor: f64,
    /// Number of data elements for micro-benchmarks.
    pub elements: usize,
    /// Number of repetitions per measurement.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether to run the greedy measured runtime search (Figure 7).
    pub greedy: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale_factor: 0.05,
            elements: 2 * 1024 * 1024,
            runs: 3,
            seed: 42,
            greedy: false,
        }
    }
}

impl HarnessArgs {
    /// Parse the arguments of the current process (unknown arguments are
    /// ignored so the binaries can also run under `cargo bench`-style
    /// wrappers).
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale-factor" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.scale_factor = v;
                    }
                }
                "--elements" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.elements = v;
                    }
                }
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.seed = v;
                    }
                }
                "--greedy" => args.greedy = true,
                _ => {}
            }
        }
        args
    }
}

/// One measurement of an SSB query under a particular configuration.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Mean wall-clock runtime over the requested runs.
    pub runtime: Duration,
    /// Total footprint of base columns and intermediates (bytes).
    pub footprint_bytes: usize,
    /// Footprint of the base columns only (bytes).
    pub base_bytes: usize,
    /// Footprint of the intermediates only (bytes).
    pub intermediate_bytes: usize,
    /// The query result (for sanity checks between configurations).
    pub result: QueryResult,
}

/// Execute `query` once and return the result together with the execution
/// context (footprints, timings, optionally captured intermediates).
pub fn run_query_once(
    query: SsbQuery,
    data: &SsbData,
    settings: ExecSettings,
    formats: &FormatConfig,
    capture: bool,
) -> (QueryResult, ExecutionContext) {
    let mut ctx = ExecutionContext::new(settings, formats.clone());
    if capture {
        ctx.enable_capture();
    }
    let result = query.execute(data, &mut ctx);
    (result, ctx)
}

/// Measure `query` under the given configuration: `runs` repetitions, mean
/// runtime, footprints from the last repetition.
pub fn measure_query(
    query: SsbQuery,
    data: &SsbData,
    settings: ExecSettings,
    formats: &FormatConfig,
    runs: usize,
) -> QueryMeasurement {
    let mut total = Duration::ZERO;
    let mut last: Option<(QueryResult, ExecutionContext)> = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let outcome = run_query_once(query, data, settings.clone(), formats, false);
        total += start.elapsed();
        last = Some(outcome);
    }
    let (result, ctx) = last.expect("at least one run");
    QueryMeasurement {
        runtime: total / runs.max(1) as u32,
        footprint_bytes: ctx.total_footprint_bytes(),
        base_bytes: ctx.base_footprint_bytes(),
        intermediate_bytes: ctx.intermediate_footprint_bytes(),
        result,
    }
}

/// Gather all columns a strategy may assign a format to, enumerated from the
/// query plan's edges: the base columns the plan scans (data from the
/// database) plus every intermediate edge (data from one captured reference
/// execution, run uncompressed, which is format-neutral).
pub fn assignable_columns(query: SsbQuery, data: &SsbData) -> HashMap<String, Column> {
    let (_, ctx) = run_query_once(
        query,
        data,
        ExecSettings::vectorized_uncompressed(),
        &FormatConfig::uncompressed(),
        true,
    );
    let mut columns = HashMap::new();
    for edge in query.plan().edges() {
        let column = if edge.is_base {
            Some(data.column(&edge.name))
        } else {
            ctx.captured_columns().get(&edge.name)
        };
        if let Some(column) = column {
            columns.insert(edge.name, column.clone());
        }
    }
    columns
}

/// Build the format configuration a selection strategy chooses for `query`,
/// scoped to the edges of the query's plan.
pub fn strategy_config(
    query: SsbQuery,
    data: &SsbData,
    strategy: FormatSelectionStrategy,
) -> FormatConfig {
    strategy.build_config_for_plan(&query.plan(), &assignable_columns(query, data))
}

/// Joint fusion- and morsel-aware decision for `query` (see
/// [`morph_cost::PlanTuning`]): the strategy's format choice with every
/// fused-interior edge re-priced for decode-stream speed (interiors are
/// never retained, so footprint is the wrong objective there), plus a
/// host-aware morsel threshold for the plan's fan-out-eligible regions.
pub fn strategy_tuning(
    query: SsbQuery,
    data: &SsbData,
    strategy: FormatSelectionStrategy,
) -> morph_cost::PlanTuning {
    strategy.build_tuning_for_plan(&query.plan(), &assignable_columns(query, data))
}

/// Memoised variant of [`strategy_config`]: the decision is replayed from
/// the plan-level `cache` when the same plan shape with the same column
/// statistics was decided before (see `morph_cost::cached_config_for_plan`).
pub fn strategy_config_cached(
    query: SsbQuery,
    data: &SsbData,
    strategy: FormatSelectionStrategy,
    cache: &morph_cache::QueryCache,
) -> FormatConfig {
    morph_cost::cached_config_for_plan(
        cache,
        strategy,
        &query.plan(),
        &assignable_columns(query, data),
    )
}

/// Cost-based per-column format selection with the *runtime* objective —
/// the configuration used for the "continuous compression" series of the
/// headline comparison (Figures 1 and 9), where the paper optimises for
/// query runtime rather than for the smallest footprint.
pub fn runtime_cost_based_config(query: SsbQuery, data: &SsbData) -> FormatConfig {
    let stats = assignable_columns(query, data)
        .into_iter()
        .map(|(name, column)| (name, morph_storage::ColumnStats::from_column(&column)))
        .collect();
    morph_cost::cost_based_config(&stats, morph_cost::SelectionObjective::Runtime)
}

/// Apply a configuration to the base columns of the database (the
/// intermediates are controlled by passing the same configuration to the
/// execution context).
pub fn apply_to_base(data: &SsbData, config: &FormatConfig) -> SsbData {
    data.with_formats(config)
}

/// Restrict a configuration to base columns only (intermediates fall back to
/// uncompressed) — used by the Figure 8 experiment.  The base columns come
/// from the query plan's scan edges.
pub fn base_only_config(query: SsbQuery, config: &FormatConfig) -> FormatConfig {
    let mut restricted = FormatConfig::with_default(Format::Uncompressed);
    for name in query.base_columns() {
        restricted.insert(&name, config.format_for(&name, Format::Uncompressed));
    }
    restricted
}

/// Pretty-print a duration in milliseconds with three decimals.
pub fn fmt_ms(duration: Duration) -> String {
    format!("{:.3}", duration.as_secs_f64() * 1e3)
}

/// Pretty-print a byte count in MiB with three decimals.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.3}", bytes as f64 / (1024.0 * 1024.0))
}

/// One intra-operator (morsel) sweep point of a query: the parallel wall
/// clocks measured with `morsel_threshold = Some(threshold)`, aligned with
/// the swept thread counts.
#[derive(Debug, Clone)]
pub struct MorselSweep {
    /// The `ExecSettings::morsel_threshold` value of this sweep point.
    pub threshold: usize,
    /// Parallel wall clock per swept thread count.
    pub parallel: Vec<Duration>,
}

/// One SSB query's cold-vs-warm plan-cache measurement: the first
/// (populating) run against a shared `QueryCache`, the best warm repeat,
/// and the warm phase's observed hit rate.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Query label ("1.1" … "4.3").
    pub query: String,
    /// Wall clock of the first cached run (inserts subplan results).
    pub cold: Duration,
    /// Best wall clock of the warm repeats (served from the cache).
    pub warm: Duration,
    /// Cache hit rate over the warm repeats' lookups (0.0–1.0).
    pub hit_rate: f64,
}

impl CacheRow {
    /// Cold runtime over warm runtime (the repeated-traffic speedup).
    pub fn warm_speedup(&self) -> f64 {
        let warm = self.warm.as_secs_f64();
        if warm > 0.0 {
            self.cold.as_secs_f64() / warm
        } else {
            0.0
        }
    }
}

/// One SSB query's wall-clock measurements for the machine-readable bench
/// report: serial runtime, one parallel runtime per swept thread count
/// (morsels off), and one sweep row per morsel threshold.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Query label ("1.1" … "4.3").
    pub query: String,
    /// Serial (`SsbQuery::execute`) wall clock.
    pub serial: Duration,
    /// Parallel (`SsbQuery::execute_parallel`) wall clock with morsels off,
    /// aligned with the swept thread counts.
    pub parallel: Vec<Duration>,
    /// Intra-operator sweep points (may be empty when only inter-operator
    /// parallelism was measured).
    pub morsel: Vec<MorselSweep>,
}

fn ns_list(durations: &[Duration]) -> String {
    durations
        .iter()
        .map(|d| d.as_nanos().to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// The transient-buffer measurement of one `parallel_speedup` run: the
/// high-water mark of the pairwise carry buffers over the whole workload
/// (serial + parallel + morsel + cache sweeps of all 13 queries) and the
/// bound it must stay under.
///
/// Before the streaming pairwise reader, the pairwise operators
/// decompressed one input per pairing — O(column) transient bytes; the
/// carry buffers are O(chunk), and this record is the committed evidence.
#[derive(Debug, Clone, Copy)]
pub struct PairwisePeak {
    /// Peak carry-buffer bytes observed (`morphstore_engine::transient`).
    pub peak_bytes: usize,
    /// The one-chunk bound the peak must not exceed.
    pub bound_bytes: usize,
}

impl PairwisePeak {
    /// Capture the current peak from the engine's counter.
    pub fn capture() -> PairwisePeak {
        PairwisePeak {
            peak_bytes: morphstore_engine::transient::peak_bytes(),
            bound_bytes: morphstore_engine::transient::CARRY_BOUND_BYTES,
        }
    }

    /// Whether the recorded peak honours the O(chunk) bound.
    pub fn holds(&self) -> bool {
        self.peak_bytes <= self.bound_bytes
    }
}

/// Serialise per-query serial/parallel wall-clock measurements as the
/// `BENCH_ssb.json` document (hand-rolled: the environment has no serde).
///
/// Schema: `{benchmark, scale_factor, seed, runs, host_cores,
/// threads: [..], morsel_thresholds: [..], pairwise_peak_transient_bytes,
/// pairwise_transient_bound_bytes, queries: [{query, serial_ns,
/// parallel_ns: [..], morsel_parallel_ns: [[..], ..], best_speedup}],
/// cache: [{query, cold_ns, warm_ns, warm_speedup, hit_rate}]}` with
/// durations in integer nanoseconds, so CI tooling can diff runs without
/// parsing the human-readable CSV.  `host_cores` records the measuring
/// host's `available_parallelism` (speedups ≈ 1.0 on a single-core runner
/// are expected, not regressions).  `morsel_parallel_ns` holds one inner
/// list per entry of `morsel_thresholds`, each aligned with `threads`;
/// `best_speedup` is the serial runtime over the fastest parallel run of
/// any configuration; `cache` holds the cold-vs-warm repeated-run workload
/// against a shared plan cache (empty when the workload was not measured);
/// the `pairwise_*` pair records the peak transient carry bytes of the
/// position-wise binary operators against their one-chunk bound.
pub fn ssb_speedup_json(
    args: &HarnessArgs,
    threads: &[usize],
    rows: &[SpeedupRow],
    cache_rows: &[CacheRow],
    pairwise: PairwisePeak,
) -> String {
    let threads_json: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
    let thresholds: Vec<usize> = rows
        .first()
        .map(|row| row.morsel.iter().map(|m| m.threshold).collect())
        .unwrap_or_default();
    let thresholds_json: Vec<String> = thresholds.iter().map(|t| t.to_string()).collect();
    let queries: Vec<String> = rows
        .iter()
        .map(|row| {
            let morsel_ns: Vec<String> = row
                .morsel
                .iter()
                .map(|sweep| format!("[{}]", ns_list(&sweep.parallel)))
                .collect();
            let best = row
                .parallel
                .iter()
                .chain(row.morsel.iter().flat_map(|sweep| sweep.parallel.iter()))
                .map(|d| d.as_secs_f64())
                .fold(f64::INFINITY, f64::min);
            let best_speedup = if best > 0.0 && best.is_finite() {
                row.serial.as_secs_f64() / best
            } else {
                0.0
            };
            format!(
                "    {{\"query\": \"{}\", \"serial_ns\": {}, \"parallel_ns\": [{}], \
                 \"morsel_parallel_ns\": [{}], \"best_speedup\": {:.4}}}",
                row.query,
                row.serial.as_nanos(),
                ns_list(&row.parallel),
                morsel_ns.join(", "),
                best_speedup
            )
        })
        .collect();
    let cache: Vec<String> = cache_rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"query\": \"{}\", \"cold_ns\": {}, \"warm_ns\": {}, \
                 \"warm_speedup\": {:.4}, \"hit_rate\": {:.4}}}",
                row.query,
                row.cold.as_nanos(),
                row.warm.as_nanos(),
                row.warm_speedup(),
                row.hit_rate
            )
        })
        .collect();
    format!(
        "{{\n  \"benchmark\": \"ssb_parallel_speedup\",\n  \"scale_factor\": {},\n  \
         \"seed\": {},\n  \"runs\": {},\n  \"host_cores\": {},\n  \"threads\": [{}],\n  \
         \"morsel_thresholds\": [{}],\n  \
         \"pairwise_peak_transient_bytes\": {},\n  \
         \"pairwise_transient_bound_bytes\": {},\n  \"queries\": [\n{}\n  ],\n  \
         \"cache\": [\n{}\n  ]\n}}\n",
        args.scale_factor,
        args.seed,
        args.runs,
        host_cores(),
        threads_json.join(", "),
        thresholds_json.join(", "),
        pairwise.peak_bytes,
        pairwise.bound_bytes,
        queries.join(",\n"),
        cache.join(",\n")
    )
}

/// The measuring host's core count (`available_parallelism`), recorded as
/// top-level `BENCH_ssb.json` metadata so ~1.0x parallel speedups on a
/// single-core CI runner can be told apart from real regressions.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One SSB query's fused-vs-unfused measurement: the serial wall clock with
/// fusion off and on, the number of fused regions the plan executed, and
/// the interior bytes the fused pass never retained.
#[derive(Debug, Clone)]
pub struct FusionRow {
    /// Query label ("1.1" … "4.3").
    pub query: String,
    /// Serial wall clock with fusion off.
    pub unfused: Duration,
    /// Serial wall clock with fusion on.
    pub fused: Duration,
    /// Fused regions executed (0 when nothing in the plan fuses).
    pub fused_regions: usize,
    /// Interior bytes the fused pass recorded but never retained.
    pub intermediate_bytes_avoided: u64,
}

impl FusionRow {
    /// Unfused runtime over fused runtime (> 1.0 means fusion won).
    pub fn speedup(&self) -> f64 {
        let fused = self.fused.as_secs_f64();
        if fused > 0.0 {
            self.unfused.as_secs_f64() / fused
        } else {
            0.0
        }
    }
}

/// Serialise the fused-vs-unfused rows as the value of the top-level
/// `"fusion"` key of `BENCH_ssb.json` (indented to sit at nesting depth 1).
pub fn fusion_section_json(rows: &[FusionRow]) -> String {
    let row_json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "      {{\"query\": \"{}\", \"unfused_serial_ns\": {}, \
                 \"fused_serial_ns\": {}, \"fused_regions\": {}, \
                 \"intermediate_bytes_avoided\": {}, \"fused_speedup\": {:.4}}}",
                row.query,
                row.unfused.as_nanos(),
                row.fused.as_nanos(),
                row.fused_regions,
                row.intermediate_bytes_avoided,
                row.speedup()
            )
        })
        .collect();
    let total_avoided: u64 = rows.iter().map(|r| r.intermediate_bytes_avoided).sum();
    format!(
        "{{\n    \"total_intermediate_bytes_avoided\": {},\n    \"rows\": [\n{}\n    ]\n  }}",
        total_avoided,
        row_json.join(",\n")
    )
}

/// One measured point of the server-throughput workload: `clients`
/// concurrent sessions (one tenant each) pushing the full SSB query set
/// through a shared `morph-server` worker pool.
#[derive(Debug, Clone)]
pub struct ServerRow {
    /// Number of concurrent client threads (= tenants).
    pub clients: usize,
    /// Total queries served across all clients.
    pub queries: u64,
    /// Wall clock of the whole workload.
    pub wall: Duration,
    /// Median end-to-end (enqueue → reply) latency in nanoseconds.
    pub p50_latency_ns: u64,
    /// 95th-percentile end-to-end latency in nanoseconds.
    pub p95_latency_ns: u64,
    /// Per-tenant cache-shard hit rate, in tenant-registration order.
    pub tenant_hit_rates: Vec<(String, f64)>,
}

impl ServerRow {
    /// Queries per second over the whole workload.
    pub fn qps(&self) -> f64 {
        let seconds = self.wall.as_secs_f64();
        if seconds > 0.0 {
            self.queries as f64 / seconds
        } else {
            0.0
        }
    }
}

/// Serialise the server-throughput rows as the value of the top-level
/// `"server"` key of `BENCH_ssb.json` (indented to sit at nesting depth 1).
pub fn server_section_json(workers: usize, rows: &[ServerRow]) -> String {
    let row_json: Vec<String> = rows
        .iter()
        .map(|row| {
            let tenants: Vec<String> = row
                .tenant_hit_rates
                .iter()
                .map(|(tenant, rate)| {
                    format!("{{\"tenant\": \"{tenant}\", \"cache_hit_rate\": {rate:.4}}}")
                })
                .collect();
            format!(
                "      {{\"clients\": {}, \"queries\": {}, \"wall_ns\": {}, \
                 \"qps\": {:.1}, \"p50_latency_ns\": {}, \"p95_latency_ns\": {}, \
                 \"tenants\": [{}]}}",
                row.clients,
                row.queries,
                row.wall.as_nanos(),
                row.qps(),
                row.p50_latency_ns,
                row.p95_latency_ns,
                tenants.join(", ")
            )
        })
        .collect();
    let clients: Vec<String> = rows.iter().map(|row| row.clients.to_string()).collect();
    format!(
        "{{\n    \"workers\": {},\n    \"clients\": [{}],\n    \"rows\": [\n{}\n    ]\n  }}",
        workers,
        clients.join(", "),
        row_json.join(",\n")
    )
}

/// One measured point of the governance-overhead comparison: the same
/// server workload run twice, once with unlimited governors (baseline) and
/// once with live per-query deadline + memory limits (governed).
#[derive(Debug, Clone)]
pub struct GovernanceRow {
    /// Number of concurrent client threads (= tenants).
    pub clients: usize,
    /// Queries served per run.
    pub queries: u64,
    /// Throughput with unlimited governors (checkpoints active, no limit
    /// comparisons).
    pub baseline_qps: f64,
    /// Throughput with a deadline and memory budget on every query.
    pub governed_qps: f64,
}

impl GovernanceRow {
    /// Throughput lost to live limit checking, as a percentage of the
    /// baseline (negative when the governed run was faster — noise).
    pub fn overhead_percent(&self) -> f64 {
        if self.baseline_qps > 0.0 {
            (1.0 - self.governed_qps / self.baseline_qps) * 100.0
        } else {
            0.0
        }
    }
}

/// Serialise the governance-overhead rows as the value of the top-level
/// `"governance"` key of `BENCH_ssb.json` (indented to sit at depth 1).
pub fn governance_section_json(
    workers: usize,
    target_percent: f64,
    rows: &[GovernanceRow],
) -> String {
    let row_json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "      {{\"clients\": {}, \"queries\": {}, \"baseline_qps\": {:.1}, \
                 \"governed_qps\": {:.1}, \"overhead_percent\": {:.2}}}",
                row.clients,
                row.queries,
                row.baseline_qps,
                row.governed_qps,
                row.overhead_percent()
            )
        })
        .collect();
    format!(
        "{{\n    \"workers\": {},\n    \"overhead_target_percent\": {:.1},\n    \"rows\": [\n{}\n    ]\n  }}",
        workers,
        target_percent,
        row_json.join(",\n")
    )
}

/// One SSB query's traced-vs-untraced overhead measurement: the same
/// serial execution with no tracer attached versus with a live
/// `QueryTracer` recording a span for every plan node.  Results, records
/// and timing labels are byte-identical either way (the determinism suite
/// proves that); this row documents that the *wall clock* stays within
/// noise too.
#[derive(Debug, Clone)]
pub struct ObservabilityRow {
    /// Query label ("1.1" … "4.3").
    pub query: String,
    /// Serial wall clock without a tracer.
    pub untraced: Duration,
    /// Serial wall clock with a tracer recording every span.
    pub traced: Duration,
}

impl ObservabilityRow {
    /// Wall clock added by tracing, as a percentage of the untraced run
    /// (negative when the traced run was faster — noise).
    pub fn overhead_percent(&self) -> f64 {
        let untraced = self.untraced.as_secs_f64();
        if untraced > 0.0 {
            (self.traced.as_secs_f64() / untraced - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// Serialise the traced-vs-untraced rows as the value of the top-level
/// `"observability"` key of `BENCH_ssb.json` (indented to sit at depth 1).
pub fn observability_section_json(target_percent: f64, rows: &[ObservabilityRow]) -> String {
    let row_json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "      {{\"query\": \"{}\", \"untraced_serial_ns\": {}, \
                 \"traced_serial_ns\": {}, \"overhead_percent\": {:.2}}}",
                row.query,
                row.untraced.as_nanos(),
                row.traced.as_nanos(),
                row.overhead_percent()
            )
        })
        .collect();
    let mean = if rows.is_empty() {
        0.0
    } else {
        rows.iter()
            .map(ObservabilityRow::overhead_percent)
            .sum::<f64>()
            / rows.len() as f64
    };
    format!(
        "{{\n    \"overhead_target_percent\": {:.1},\n    \
         \"mean_overhead_percent\": {:.2},\n    \"rows\": [\n{}\n    ]\n  }}",
        target_percent,
        mean,
        row_json.join(",\n")
    )
}

/// Merge `section` as the top-level key `key` at the tail of an existing
/// `BENCH_ssb.json` document, replacing any previous section under that
/// key (and anything after it — callers re-merge later sections in
/// order).  The tail sections are always the last top-level keys, so
/// replacement is a truncate-and-append on the canonical layout.
pub fn merge_tail_section(document: &str, key: &str, section: &str) -> String {
    let trimmed = document.trim_end();
    let trimmed = trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end();
    let marker = format!(",\n  \"{key}\":");
    let base = match trimmed.find(&marker) {
        Some(position) => &trimmed[..position],
        None => trimmed,
    };
    let base = base.trim_end().trim_end_matches(',');
    format!("{base},\n  \"{key}\": {section}\n}}\n")
}

/// Merge a `"server"` section (produced by [`server_section_json`]) into an
/// existing `BENCH_ssb.json` document, replacing any previous server
/// section (see [`merge_tail_section`]).
pub fn merge_server_section(document: &str, section: &str) -> String {
    merge_tail_section(document, "server", section)
}

/// Print a CSV header row.
pub fn print_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Print a CSV data row.
pub fn print_row(values: &[String]) {
    println!("{}", values.join(","));
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_ssb::dbgen;

    #[test]
    fn default_args_are_sensible() {
        let args = HarnessArgs::default();
        assert!(args.scale_factor > 0.0);
        assert!(args.runs >= 1);
        assert!(!args.greedy);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Duration::from_millis(1500)), "1500.000");
        assert_eq!(fmt_mib(1024 * 1024), "1.000");
    }

    #[test]
    fn speedup_json_has_expected_shape() {
        let args = HarnessArgs::default();
        let rows = vec![SpeedupRow {
            query: "4.1".to_string(),
            serial: Duration::from_micros(100),
            parallel: vec![Duration::from_micros(101), Duration::from_micros(50)],
            morsel: vec![
                MorselSweep {
                    threshold: 65536,
                    parallel: vec![Duration::from_micros(99), Duration::from_micros(40)],
                },
                MorselSweep {
                    threshold: 262144,
                    parallel: vec![Duration::from_micros(100), Duration::from_micros(45)],
                },
            ],
        }];
        let cache_rows = vec![CacheRow {
            query: "4.1".to_string(),
            cold: Duration::from_micros(100),
            warm: Duration::from_micros(10),
            hit_rate: 0.975,
        }];
        let pairwise = PairwisePeak {
            peak_bytes: 16384,
            bound_bytes: 16384,
        };
        assert!(pairwise.holds());
        let json = ssb_speedup_json(&args, &[1, 2], &rows, &cache_rows, pairwise);
        assert!(json.contains("\"benchmark\": \"ssb_parallel_speedup\""));
        // The measuring host's core count is part of the metadata.
        assert!(json.contains(&format!("\"host_cores\": {}", host_cores())));
        assert!(json.contains("\"threads\": [1, 2]"));
        assert!(json.contains("\"morsel_thresholds\": [65536, 262144]"));
        // The pairwise carry high-water mark and its one-chunk bound.
        assert!(json.contains("\"pairwise_peak_transient_bytes\": 16384"));
        assert!(json.contains("\"pairwise_transient_bound_bytes\": 16384"));
        assert!(json.contains("\"query\": \"4.1\""));
        assert!(json.contains("\"serial_ns\": 100000"));
        assert!(json.contains("\"parallel_ns\": [101000, 50000]"));
        assert!(json.contains("\"morsel_parallel_ns\": [[99000, 40000], [100000, 45000]]"));
        // Best over every configuration: 100µs / 40µs.
        assert!(json.contains("\"best_speedup\": 2.5000"));
        // The cold-vs-warm cache workload: 100µs / 10µs.
        assert!(json.contains("\"cold_ns\": 100000"));
        assert!(json.contains("\"warm_ns\": 10000"));
        assert!(json.contains("\"warm_speedup\": 10.0000"));
        assert!(json.contains("\"hit_rate\": 0.9750"));
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency-free environment.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "{open}{close}"
            );
        }
    }

    #[test]
    fn server_section_merges_idempotently() {
        let rows = vec![
            ServerRow {
                clients: 1,
                queries: 26,
                wall: Duration::from_millis(130),
                p50_latency_ns: 4_000_000,
                p95_latency_ns: 9_000_000,
                tenant_hit_rates: vec![("tenant-0".to_string(), 0.5)],
            },
            ServerRow {
                clients: 2,
                queries: 52,
                wall: Duration::from_millis(150),
                p50_latency_ns: 5_000_000,
                p95_latency_ns: 11_000_000,
                tenant_hit_rates: vec![
                    ("tenant-0".to_string(), 0.5),
                    ("tenant-1".to_string(), 0.5),
                ],
            },
        ];
        let section = server_section_json(4, &rows);
        assert!(section.contains("\"workers\": 4"));
        assert!(section.contains("\"clients\": [1, 2]"));
        // 26 queries in 130 ms = 200 qps.
        assert!(section.contains("\"qps\": 200.0"));
        assert!(section.contains("\"cache_hit_rate\": 0.5000"));

        let base = "{\n  \"benchmark\": \"ssb_parallel_speedup\",\n  \
                    \"cache\": [\n    {\"query\": \"1.1\"}\n  ]\n}\n";
        let merged = merge_server_section(base, &section);
        assert!(merged.contains("\"benchmark\": \"ssb_parallel_speedup\""));
        assert!(merged.contains("\"server\": {"));
        // Re-merging replaces instead of duplicating.
        let remerged = merge_server_section(&merged, &section);
        assert_eq!(remerged.matches("\"server\":").count(), 1);
        assert_eq!(remerged, merged);
        // Balanced braces/brackets after the splice.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                merged.matches(open).count(),
                merged.matches(close).count(),
                "{open}{close}"
            );
        }
    }

    #[test]
    fn governance_section_reports_overhead_and_merges_after_server() {
        let rows = vec![GovernanceRow {
            clients: 4,
            queries: 104,
            baseline_qps: 200.0,
            governed_qps: 198.0,
        }];
        assert!((rows[0].overhead_percent() - 1.0).abs() < 1e-9);
        let section = governance_section_json(4, 2.0, &rows);
        assert!(section.contains("\"overhead_target_percent\": 2.0"));
        assert!(section.contains("\"overhead_percent\": 1.00"));

        // The bench merges server first, then governance; both survive,
        // and re-merging replaces instead of duplicating.
        let base = "{\n  \"benchmark\": \"ssb_parallel_speedup\",\n  \
                    \"cache\": [\n    {\"query\": \"1.1\"}\n  ]\n}\n";
        let with_server = merge_server_section(base, "{\"workers\": 4}");
        let merged = merge_tail_section(&with_server, "governance", &section);
        assert!(merged.contains("\"server\": {"));
        assert!(merged.contains("\"governance\": {"));
        let remerged = merge_tail_section(&merged, "governance", &section);
        assert_eq!(remerged.matches("\"governance\":").count(), 1);
        assert_eq!(remerged, merged);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                merged.matches(open).count(),
                merged.matches(close).count(),
                "{open}{close}"
            );
        }
    }

    #[test]
    fn fusion_section_reports_avoided_bytes_and_merges_after_governance() {
        let rows = vec![
            FusionRow {
                query: "1.1".to_string(),
                unfused: Duration::from_micros(100),
                fused: Duration::from_micros(80),
                fused_regions: 2,
                intermediate_bytes_avoided: 4096,
            },
            FusionRow {
                query: "3.4".to_string(),
                unfused: Duration::from_micros(50),
                fused: Duration::from_micros(50),
                fused_regions: 0,
                intermediate_bytes_avoided: 0,
            },
        ];
        assert!((rows[0].speedup() - 1.25).abs() < 1e-9);
        let section = fusion_section_json(&rows);
        assert!(section.contains("\"total_intermediate_bytes_avoided\": 4096"));
        assert!(section.contains("\"unfused_serial_ns\": 100000"));
        assert!(section.contains("\"fused_serial_ns\": 80000"));
        assert!(section.contains("\"fused_speedup\": 1.2500"));
        assert!(section.contains("\"fused_regions\": 0"));

        // The canonical tail order is fusion → server → governance; the
        // section merges idempotently wherever it sits.
        let base = "{\n  \"benchmark\": \"ssb_parallel_speedup\",\n  \
                    \"cache\": [\n    {\"query\": \"1.1\"}\n  ]\n}\n";
        let merged = merge_tail_section(base, "fusion", &section);
        assert!(merged.contains("\"fusion\": {"));
        let with_server = merge_server_section(&merged, "{\"workers\": 4}");
        let remerged = merge_tail_section(&with_server, "fusion", &section);
        assert_eq!(remerged.matches("\"fusion\":").count(), 1);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                with_server.matches(open).count(),
                with_server.matches(close).count(),
                "{open}{close}"
            );
        }
    }

    #[test]
    fn observability_section_reports_overhead_and_merges_after_governance() {
        let rows = vec![
            ObservabilityRow {
                query: "1.1".to_string(),
                untraced: Duration::from_micros(100),
                traced: Duration::from_micros(101),
            },
            ObservabilityRow {
                query: "4.3".to_string(),
                untraced: Duration::from_micros(200),
                traced: Duration::from_micros(198),
            },
        ];
        assert!((rows[0].overhead_percent() - 1.0).abs() < 1e-9);
        assert!((rows[1].overhead_percent() + 1.0).abs() < 1e-9);
        let section = observability_section_json(2.0, &rows);
        assert!(section.contains("\"overhead_target_percent\": 2.0"));
        // +1.00% and -1.00% cancel; floating point may leave a signed zero.
        assert!(
            section.contains("\"mean_overhead_percent\": 0.00")
                || section.contains("\"mean_overhead_percent\": -0.00"),
            "{section}"
        );
        assert!(section.contains("\"untraced_serial_ns\": 100000"));
        assert!(section.contains("\"traced_serial_ns\": 101000"));
        assert!(section.contains("\"overhead_percent\": 1.00"));

        // The canonical tail order ends … → governance → observability;
        // the section merges idempotently at the tail.
        let base = "{\n  \"benchmark\": \"ssb_parallel_speedup\",\n  \
                    \"cache\": [\n    {\"query\": \"1.1\"}\n  ]\n}\n";
        let with_governance = merge_tail_section(base, "governance", "{\"workers\": 4}");
        let merged = merge_tail_section(&with_governance, "observability", &section);
        assert!(merged.contains("\"governance\": {"));
        assert!(merged.contains("\"observability\": {"));
        let remerged = merge_tail_section(&merged, "observability", &section);
        assert_eq!(remerged.matches("\"observability\":").count(), 1);
        assert_eq!(remerged, merged);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                merged.matches(open).count(),
                merged.matches(close).count(),
                "{open}{close}"
            );
        }
    }

    #[test]
    fn measure_query_returns_consistent_results_across_configs() {
        let data = dbgen::generate(0.005, 3);
        let uncompressed = measure_query(
            SsbQuery::Q1_1,
            &data,
            ExecSettings::vectorized_uncompressed(),
            &FormatConfig::uncompressed(),
            1,
        );
        let compressed_base = data.with_uniform_format(&Format::DynBp);
        let compressed = measure_query(
            SsbQuery::Q1_1,
            &compressed_base,
            ExecSettings::vectorized_compressed(),
            &FormatConfig::with_default(Format::DynBp),
            1,
        );
        assert_eq!(
            uncompressed.result.sorted_rows(),
            compressed.result.sorted_rows()
        );
        assert!(compressed.footprint_bytes < uncompressed.footprint_bytes);
        assert_eq!(
            uncompressed.footprint_bytes,
            uncompressed.base_bytes + uncompressed.intermediate_bytes
        );
    }

    #[test]
    fn assignable_columns_cover_base_and_intermediates() {
        let data = dbgen::generate(0.005, 3);
        let columns = assignable_columns(SsbQuery::Q1_1, &data);
        assert!(columns.contains_key("lo_discount"));
        assert!(columns.keys().any(|k| k.starts_with("1.1/")));
        let config = strategy_config(SsbQuery::Q1_1, &data, FormatSelectionStrategy::CostBased);
        assert_ne!(
            config.format_for("lo_discount", Format::Uncompressed),
            Format::Uncompressed
        );
    }

    #[test]
    fn base_only_config_leaves_intermediates_uncompressed() {
        let data = dbgen::generate(0.005, 3);
        let full = strategy_config(SsbQuery::Q1_1, &data, FormatSelectionStrategy::AllStaticBp);
        let base_only = base_only_config(SsbQuery::Q1_1, &full);
        assert_eq!(
            base_only.format_for("1.1/lo_pos", Format::Uncompressed),
            Format::Uncompressed
        );
        assert_ne!(
            base_only.format_for("lo_discount", Format::Uncompressed),
            Format::Uncompressed
        );
    }
}
