//! Criterion benchmark backing Figures 1, 7–9: representative SSB queries
//! under the headline configurations (scalar/vectorized, uncompressed/
//! continuously compressed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_compression::Format;
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{ExecSettings, ExecutionContext};

const SCALE_FACTOR: f64 = 0.01;

fn bench_ssb_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssb");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let data = dbgen::generate(SCALE_FACTOR, 42);
    let compressed = data.with_uniform_format(&Format::DynBp);
    let queries = [
        SsbQuery::Q1_1,
        SsbQuery::Q2_1,
        SsbQuery::Q3_2,
        SsbQuery::Q4_1,
    ];
    for query in queries {
        group.bench_function(
            BenchmarkId::new("scalar_uncompressed", query.label()),
            |b| {
                b.iter(|| {
                    let mut ctx = ExecutionContext::new(
                        ExecSettings::scalar_uncompressed(),
                        FormatConfig::uncompressed(),
                    );
                    query.execute(&data, &mut ctx)
                })
            },
        );
        group.bench_function(
            BenchmarkId::new("vectorized_uncompressed", query.label()),
            |b| {
                b.iter(|| {
                    let mut ctx = ExecutionContext::new(
                        ExecSettings::vectorized_uncompressed(),
                        FormatConfig::uncompressed(),
                    );
                    query.execute(&data, &mut ctx)
                })
            },
        );
        group.bench_function(
            BenchmarkId::new("vectorized_compressed", query.label()),
            |b| {
                b.iter(|| {
                    let mut ctx = ExecutionContext::new(
                        ExecSettings::vectorized_compressed(),
                        FormatConfig::with_default(Format::DynBp),
                    );
                    query.execute(&compressed, &mut ctx)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ssb_queries);
criterion_main!(benches);
