//! `server_throughput` — end-to-end serving throughput of the multi-tenant
//! query server: N concurrent client threads (one tenant each, N ∈ {1, 2,
//! 4, 8}) push the full 13-query SSB workload through a shared
//! `morph-server` worker pool and the wall clock of the whole run is
//! reported as queries/second.
//!
//! Each client submits the SQL text of every SSB query `runs + 1` times:
//! the first sweep populates the tenant's private cache shard, the
//! remaining sweeps measure the steady serving state — so the reported
//! throughput blends cold compilation + execution with warm cache traffic,
//! the profile of repeated dashboard-style load.  Per-tenant cache-shard
//! hit rates and server-side p50/p95 end-to-end latency are recorded
//! alongside.
//!
//! Output: a CSV table on stdout plus a `server` section merged into the
//! machine-readable `BENCH_ssb.json` (path overridable via the
//! `MORPH_BENCH_JSON` environment variable) without disturbing the
//! sections written by `parallel_speedup`.
//!
//! Usual harness flags apply: `--scale-factor`, `--runs`, `--seed`.

use std::sync::Arc;
use std::time::Instant;

use morph_bench::{
    governance_section_json, merge_server_section, merge_tail_section, observability_section_json,
    print_header, print_row, server_section_json, GovernanceRow, HarnessArgs, ObservabilityRow,
    ServerRow,
};
use morph_compression::Format;
use morph_server::{Server, ServerConfig, TenantLimits};
use morph_ssb::{dbgen, ssb_catalog, SsbData, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{ExecSettings, ExecutionContext, QueryTracer};

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKERS: usize = 4;
/// Acceptance target for the governance checkpoints: the governed run
/// (live deadline + memory budget that never trip) must stay within this
/// percentage of the ungoverned throughput.
const OVERHEAD_TARGET_PERCENT: f64 = 2.0;
/// Acceptance target for the telemetry layer: attaching a tracer (one span
/// recorded per plan node) must stay within this percentage of the
/// untraced serial runtime, per query, on average.
const TRACING_TARGET_PERCENT: f64 = 2.0;

/// Measure one query's mean serial wall clock over `runs` repetitions,
/// optionally with a fresh tracer attached to each run.
fn mean_serial(
    query: SsbQuery,
    data: &SsbData,
    settings: &ExecSettings,
    formats: &FormatConfig,
    runs: usize,
    traced: bool,
) -> std::time::Duration {
    let mut total = std::time::Duration::ZERO;
    for _ in 0..runs.max(1) {
        let run_settings = if traced {
            settings.clone().with_tracer(Arc::new(QueryTracer::new()))
        } else {
            settings.clone()
        };
        let mut ctx = ExecutionContext::new(run_settings, formats.clone());
        let start = Instant::now();
        query.execute(data, &mut ctx);
        total += start.elapsed();
    }
    total / runs.max(1) as u32
}

/// Generous-but-live limits for the governed leg of the overhead
/// comparison: every checkpoint performs its deadline/budget arithmetic,
/// but neither bound can trip under the benchmark workload.
fn generous_limits() -> TenantLimits {
    TenantLimits {
        deadline: Some(std::time::Duration::from_secs(3600)),
        memory_budget_bytes: Some(4 << 30),
        max_in_flight: None,
    }
}

fn run_workload(
    data: Arc<SsbData>,
    clients: usize,
    sweeps: usize,
    limits: TenantLimits,
) -> ServerRow {
    let server = Arc::new(Server::new(
        ssb_catalog(),
        data,
        ServerConfig {
            workers: WORKERS,
            threads_per_query: 1,
            queue_capacity: 64,
            cache_budget_bytes: 256 << 20,
            max_tenants: CLIENT_COUNTS[CLIENT_COUNTS.len() - 1],
            settings: ExecSettings::vectorized_compressed(),
            formats: FormatConfig::with_default(Format::DeltaDynBp),
            default_limits: limits,
            ..ServerConfig::default()
        },
    ));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let session = server.session(&format!("tenant-{client}")).unwrap();
                for _ in 0..sweeps {
                    for query in SsbQuery::all() {
                        session
                            .submit(query.sql())
                            .unwrap_or_else(|e| panic!("{query}: {e}"));
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let wall = started.elapsed();
    let stats = server.stats();
    assert_eq!(
        stats.served as usize,
        clients * sweeps * SsbQuery::all().len()
    );
    ServerRow {
        clients,
        queries: stats.served,
        wall,
        p50_latency_ns: stats.p50_latency_ns,
        p95_latency_ns: stats.p95_latency_ns,
        tenant_hit_rates: stats
            .tenants
            .iter()
            .map(|tenant| (tenant.tenant.clone(), tenant.cache_hit_rate()))
            .collect(),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let sweeps = args.runs + 1; // one cold populating sweep + warm repeats
    eprintln!(
        "server_throughput: scale factor {}, seed {}, {} workers, {} sweeps of 13 queries per client",
        args.scale_factor, args.seed, WORKERS, sweeps
    );
    let data = Arc::new(dbgen::generate(args.scale_factor, args.seed));

    print_header(&[
        "clients",
        "queries",
        "wall_ms",
        "qps",
        "p50_ms",
        "p95_ms",
        "mean_hit_rate",
    ]);
    let mut rows = Vec::new();
    for clients in CLIENT_COUNTS {
        let row = run_workload(Arc::clone(&data), clients, sweeps, TenantLimits::default());
        let mean_hit_rate = if row.tenant_hit_rates.is_empty() {
            0.0
        } else {
            row.tenant_hit_rates.iter().map(|(_, r)| r).sum::<f64>()
                / row.tenant_hit_rates.len() as f64
        };
        print_row(&[
            row.clients.to_string(),
            row.queries.to_string(),
            format!("{:.3}", row.wall.as_secs_f64() * 1e3),
            format!("{:.1}", row.qps()),
            format!("{:.3}", row.p50_latency_ns as f64 / 1e6),
            format!("{:.3}", row.p95_latency_ns as f64 / 1e6),
            format!("{mean_hit_rate:.4}"),
        ]);
        rows.push(row);
    }

    let baseline = rows.first().map(ServerRow::qps).unwrap_or(0.0);
    for row in &rows {
        eprintln!(
            "{} clients: {:.1} qps ({:.2}x the single-client rate)",
            row.clients,
            row.qps(),
            if baseline > 0.0 {
                row.qps() / baseline
            } else {
                0.0
            }
        );
    }

    // Governance overhead: re-run a subset of client counts back to back,
    // ungoverned (no limits → the governor checkpoints are pure atomic
    // loads) versus governed (deadline + memory budget live at every
    // checkpoint).  Both legs share the same data and sweep count, so the
    // qps delta isolates the per-checkpoint arithmetic.
    print_header(&[
        "clients",
        "queries",
        "baseline_qps",
        "governed_qps",
        "overhead_pct",
    ]);
    let mut governance_rows = Vec::new();
    for clients in [1, CLIENT_COUNTS[CLIENT_COUNTS.len() - 1]] {
        let baseline = run_workload(Arc::clone(&data), clients, sweeps, TenantLimits::default());
        let governed = run_workload(Arc::clone(&data), clients, sweeps, generous_limits());
        let row = GovernanceRow {
            clients,
            queries: baseline.queries,
            baseline_qps: baseline.qps(),
            governed_qps: governed.qps(),
        };
        print_row(&[
            row.clients.to_string(),
            row.queries.to_string(),
            format!("{:.1}", row.baseline_qps),
            format!("{:.1}", row.governed_qps),
            format!("{:.2}", row.overhead_percent()),
        ]);
        governance_rows.push(row);
    }
    let worst = governance_rows
        .iter()
        .map(GovernanceRow::overhead_percent)
        .fold(f64::MIN, f64::max);
    eprintln!("governance overhead: worst {worst:.2}% (target < {OVERHEAD_TARGET_PERCENT:.1}%)");

    // Tracing overhead: every SSB query serially, untraced vs with a live
    // tracer recording one span per plan node.  Results are byte-identical
    // either way (the observability_determinism suite proves it); this leg
    // documents that the wall clock stays within noise too.
    print_header(&["query", "untraced_ms", "traced_ms", "overhead_pct"]);
    let settings = ExecSettings::vectorized_compressed();
    let formats = FormatConfig::with_default(Format::DeltaDynBp);
    let mut observability_rows = Vec::new();
    for query in SsbQuery::all() {
        let untraced = mean_serial(query, &data, &settings, &formats, args.runs, false);
        let traced = mean_serial(query, &data, &settings, &formats, args.runs, true);
        let row = ObservabilityRow {
            query: query.label().to_string(),
            untraced,
            traced,
        };
        print_row(&[
            row.query.clone(),
            format!("{:.3}", row.untraced.as_secs_f64() * 1e3),
            format!("{:.3}", row.traced.as_secs_f64() * 1e3),
            format!("{:.2}", row.overhead_percent()),
        ]);
        observability_rows.push(row);
    }
    let mean_overhead = observability_rows
        .iter()
        .map(ObservabilityRow::overhead_percent)
        .sum::<f64>()
        / observability_rows.len() as f64;
    eprintln!("tracing overhead: mean {mean_overhead:.2}% (target < {TRACING_TARGET_PERCENT:.1}%)");

    let json_path = std::env::var("MORPH_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ssb.json").to_string()
    });
    let section = server_section_json(WORKERS, &rows);
    let governance = governance_section_json(WORKERS, OVERHEAD_TARGET_PERCENT, &governance_rows);
    let merged = match std::fs::read_to_string(&json_path) {
        Ok(document) => merge_server_section(&document, &section),
        Err(_) => {
            format!("{{\n  \"benchmark\": \"ssb_parallel_speedup\",\n  \"server\": {section}\n}}\n")
        }
    };
    let merged = merge_tail_section(&merged, "governance", &governance);
    let observability = observability_section_json(TRACING_TARGET_PERCENT, &observability_rows);
    let merged = merge_tail_section(&merged, "observability", &observability);
    match std::fs::write(&json_path, &merged) {
        Ok(()) => eprintln!("merged server + governance + observability sections into {json_path}"),
        Err(err) => eprintln!("could not write {json_path}: {err}"),
    }
}
