//! Criterion micro-benchmarks of the compression substrate: compression and
//! decompression throughput of every format on the synthetic columns of
//! Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morph_compression::{compress_main_part, decompress_into, Format};
use morph_storage::datagen::SyntheticColumn;

const ELEMENTS: usize = 256 * 1024;

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes((ELEMENTS * 8) as u64));
    for column in SyntheticColumn::all() {
        let values = column.generate(ELEMENTS, 42);
        let max = values.iter().copied().max().unwrap_or(0);
        for format in Format::all_formats(max) {
            group.bench_with_input(
                BenchmarkId::new(format.to_string(), column.label()),
                &values,
                |b, values| b.iter(|| compress_main_part(&format, values)),
            );
        }
    }
    group.finish();
}

fn bench_decompression(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes((ELEMENTS * 8) as u64));
    for column in SyntheticColumn::all() {
        let values = column.generate(ELEMENTS, 42);
        let max = values.iter().copied().max().unwrap_or(0);
        for format in Format::all_formats(max) {
            let (bytes, main_len) = compress_main_part(&format, &values);
            group.bench_with_input(
                BenchmarkId::new(format.to_string(), column.label()),
                &bytes,
                |b, bytes| {
                    b.iter(|| {
                        let mut out = Vec::with_capacity(main_len);
                        decompress_into(&format, bytes, main_len, &mut out);
                        out
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compression, bench_decompression);
criterion_main!(benches);
