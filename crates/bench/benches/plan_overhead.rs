//! Overhead of the plan layer: building a `QueryPlan` DAG and walking it in
//! topological order must cost (far) less than 1 % on top of the direct
//! hand-written operator-call path it replaced.
//!
//! Three measurements on SSB Q1.1:
//!
//! * `direct` — the frozen pre-redesign path (`SsbQuery::execute_direct`),
//! * `plan` — plan construction + `PlanExecutor` walk (`SsbQuery::execute`),
//! * `plan_construction` — building the DAG alone (no execution), showing
//!   the absolute cost of the abstraction (microseconds, versus
//!   milliseconds of query work).

use criterion::{criterion_group, criterion_main, Criterion};
use morph_compression::Format;
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{ExecSettings, ExecutionContext};

fn bench_plan_overhead(c: &mut Criterion) {
    let raw = dbgen::generate(0.02, 42);
    let data = raw.with_uniform_format(&Format::DynBp);
    let settings = ExecSettings::vectorized_compressed();
    let formats = FormatConfig::with_default(Format::DynBp);
    let query = SsbQuery::Q1_1;

    let mut group = c.benchmark_group("plan_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("direct", |b| {
        b.iter(|| {
            let mut ctx = ExecutionContext::new(settings.clone(), formats.clone());
            query.execute_direct(&data, &mut ctx)
        })
    });
    group.bench_function("plan", |b| {
        b.iter(|| {
            let mut ctx = ExecutionContext::new(settings.clone(), formats.clone());
            query.execute(&data, &mut ctx)
        })
    });
    group.bench_function("plan_construction", |b| b.iter(|| query.plan()));
    group.finish();
}

criterion_group!(benches, bench_plan_overhead);
criterion_main!(benches);
