//! Criterion micro-benchmark of direct morphing between compression formats,
//! the building block of the on-the-fly morphing integration degree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morph_compression::Format;
use morph_storage::datagen::SyntheticColumn;
use morph_storage::Column;

const ELEMENTS: usize = 256 * 1024;

fn bench_morphing(c: &mut Criterion) {
    let mut group = c.benchmark_group("morph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Elements(ELEMENTS as u64));
    let values = SyntheticColumn::C1.generate(ELEMENTS, 42);
    let pairs = [
        (Format::Uncompressed, Format::DynBp),
        (Format::DynBp, Format::Uncompressed),
        (Format::StaticBp(6), Format::DynBp),
        (Format::DynBp, Format::DeltaDynBp),
        (Format::StaticBp(6), Format::StaticBp(16)),
        (Format::Rle, Format::DynBp),
    ];
    for (src, dst) in pairs {
        let column = Column::compress(&values, &src);
        let label = format!("{src} -> {dst}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &column, |b, column| {
            b.iter(|| column.to_format(&dst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_morphing);
criterion_main!(benches);
