//! `parallel_speedup` — wall-clock comparison of serial vs. parallel plan
//! execution over all 13 SSB queries, sweeping the worker-pool size and the
//! intra-operator morsel threshold.
//!
//! For every query, the harness measures the serial executor
//! (`SsbQuery::execute`) and the dependency-driven parallel executor
//! (`SsbQuery::execute_parallel`) with 1, 2, 4 and 8 workers — first with
//! morsels off (inter-operator parallelism only, PR 2's configuration),
//! then with `morsel_threshold` ∈ {64 Ki, 256 Ki} so single large
//! fact-table operators fan out as chunk-range morsels.  Everything runs
//! under the headline vectorized + continuously-compressed configuration;
//! the best-of-`runs` wall clock is reported (robust against scheduler
//! noise).
//!
//! The multi-join Q4.x plans showcase inter-operator parallelism (their
//! dimension subtrees are independent); the single-chain Q1.x plans are
//! flat without morsels and only scale through the intra-operator path.
//!
//! After the parallel sweeps, a **cold-vs-warm repeated-run workload**
//! measures the plan-level cache: all 13 queries share one `QueryCache`
//! (512 MiB budget), each query is run once cold (populating) and then
//! `runs` times warm; the warm best-of, the hit rate over the warm lookups
//! and the cold/warm speedup are recorded — the serving profile of heavy
//! repeated traffic, where identical subplans are never recomputed.
//!
//! Output: a CSV table on stdout plus the machine-readable `BENCH_ssb.json`
//! (path overridable via the `MORPH_BENCH_JSON` environment variable) with
//! per-query serial, parallel, morsel-sweep and cache-workload wall-clock
//! in nanoseconds — the document a CI step can archive and diff across
//! commits.
//!
//! Usual harness flags apply: `--scale-factor`, `--runs`, `--seed`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use morph_bench::{
    fmt_ms, fusion_section_json, merge_tail_section, print_header, print_row, ssb_speedup_json,
    CacheRow, FusionRow, HarnessArgs, MorselSweep, PairwisePeak, SpeedupRow,
};
use morph_compression::Format;
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{ExecSettings, ExecutionContext, QueryCache};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const MORSEL_THRESHOLDS: [usize; 2] = [64 * 1024, 256 * 1024];

/// Best-of-`runs` wall clock of `f` (which returns the query result, kept
/// alive so the work cannot be optimised away).
fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let result = f();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        last = Some(result);
    }
    (best, last.expect("at least one run"))
}

/// Short column tag of a sweep configuration ("off", "m64Ki", "m256Ki").
fn threshold_tag(threshold: Option<usize>) -> String {
    match threshold {
        None => "off".to_string(),
        Some(t) => format!("m{}Ki", t / 1024),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let formats = FormatConfig::with_default(Format::DynBp);
    eprintln!(
        "generating SSB data (scale factor {}, seed {}) ...",
        args.scale_factor, args.seed
    );
    let data = dbgen::generate(args.scale_factor, args.seed).with_uniform_format(&Format::DynBp);

    let sweeps: Vec<Option<usize>> = std::iter::once(None)
        .chain(MORSEL_THRESHOLDS.iter().copied().map(Some))
        .collect();

    let mut header = vec!["query".to_string(), "serial_ms".to_string()];
    for &threshold in &sweeps {
        let tag = threshold_tag(threshold);
        for threads in THREAD_COUNTS {
            header.push(format!("{tag}_par{threads}_ms"));
            header.push(format!("{tag}_x{threads}"));
        }
    }
    for column in [
        "cache_cold_ms",
        "cache_warm_ms",
        "cache_warm_x",
        "cache_hit_rate",
        "fused_ms",
        "fused_x",
        "fused_bytes_avoided",
    ] {
        header.push(column.to_string());
    }
    print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    // One cache shared by all queries: structurally identical subplans are
    // shared across them, exactly like a server handling repeated traffic.
    let cache = Arc::new(QueryCache::with_budget(512 * 1024 * 1024));
    // Track the pairwise operators' transient carry buffers over the whole
    // workload: the streaming pairwise reader bounds them by one chunk.
    morphstore_engine::transient::reset();
    let mut rows = Vec::new();
    let mut cache_rows = Vec::new();
    let mut fusion_rows = Vec::new();
    for query in SsbQuery::all() {
        let serial_settings = ExecSettings::vectorized_compressed();
        let (serial, serial_result) = best_of(args.runs, || {
            let mut ctx = ExecutionContext::new(serial_settings.clone(), formats.clone());
            query.execute(&data, &mut ctx)
        });
        let mut row = vec![query.label().to_string(), fmt_ms(serial)];
        let mut parallel_off = Vec::new();
        let mut morsel = Vec::new();
        for &threshold in &sweeps {
            let settings = match threshold {
                None => ExecSettings::vectorized_compressed(),
                Some(t) => ExecSettings::vectorized_compressed().with_morsel_threshold(t),
            };
            let mut timings = Vec::new();
            for threads in THREAD_COUNTS {
                let (elapsed, result) = best_of(args.runs, || {
                    let mut ctx = ExecutionContext::new(settings.clone(), formats.clone());
                    query.execute_parallel(&data, &mut ctx, threads)
                });
                assert_eq!(
                    result, serial_result,
                    "{query} threads={threads} morsels={:?}: parallel result diverged",
                    threshold
                );
                row.push(fmt_ms(elapsed));
                row.push(format!(
                    "{:.2}",
                    serial.as_secs_f64() / elapsed.as_secs_f64()
                ));
                timings.push(elapsed);
            }
            match threshold {
                None => parallel_off = timings,
                Some(t) => morsel.push(MorselSweep {
                    threshold: t,
                    parallel: timings,
                }),
            }
        }
        // Cold-vs-warm repeated-run workload: first run populates the
        // shared cache, the warm best-of is served from it.
        let cached_settings = ExecSettings::vectorized_compressed().with_cache(Arc::clone(&cache));
        let cold_started = Instant::now();
        let cold_result = {
            let mut ctx = ExecutionContext::new(cached_settings.clone(), formats.clone());
            query.execute(&data, &mut ctx)
        };
        let cold = cold_started.elapsed();
        assert_eq!(
            cold_result, serial_result,
            "{query}: cold cached run diverged"
        );
        let warm_started_stats = cache.stats();
        let (warm, warm_result) = best_of(args.runs, || {
            let mut ctx = ExecutionContext::new(cached_settings.clone(), formats.clone());
            query.execute(&data, &mut ctx)
        });
        assert_eq!(
            warm_result, serial_result,
            "{query}: warm cached run diverged"
        );
        let warm_stats = cache.stats();
        let lookups = (warm_stats.hits + warm_stats.misses)
            - (warm_started_stats.hits + warm_started_stats.misses);
        let hit_rate = if lookups > 0 {
            (warm_stats.hits - warm_started_stats.hits) as f64 / lookups as f64
        } else {
            0.0
        };
        let cache_row = CacheRow {
            query: query.label().to_string(),
            cold,
            warm,
            hit_rate,
        };
        row.push(fmt_ms(cold));
        row.push(fmt_ms(warm));
        row.push(format!("{:.2}", cache_row.warm_speedup()));
        row.push(format!("{hit_rate:.3}"));
        cache_rows.push(cache_row);

        // Fused-vs-unfused serial: the same configuration with operator
        // fusion on — byte-identical by construction, measured for the
        // `fusion` section (runtime plus the interior bytes never retained).
        let fused_settings = ExecSettings::vectorized_compressed().with_fusion();
        let (fused, (fused_result, fused_regions, bytes_avoided)) = best_of(args.runs, || {
            let mut ctx = ExecutionContext::new(fused_settings.clone(), formats.clone());
            let result = query.execute(&data, &mut ctx);
            let regions = ctx.fused_region_count();
            let avoided = ctx.intermediate_bytes_avoided();
            (result, regions, avoided)
        });
        assert_eq!(
            fused_result, serial_result,
            "{query}: fused serial result diverged"
        );
        assert!(
            fused_regions == 0 || bytes_avoided > 0,
            "{query}: fused region executed but no interior bytes avoided"
        );
        let fusion_row = FusionRow {
            query: query.label().to_string(),
            unfused: serial,
            fused,
            fused_regions,
            intermediate_bytes_avoided: bytes_avoided,
        };
        row.push(fmt_ms(fused));
        row.push(format!("{:.2}", fusion_row.speedup()));
        row.push(bytes_avoided.to_string());
        fusion_rows.push(fusion_row);

        print_row(&row);
        rows.push(SpeedupRow {
            query: query.label().to_string(),
            serial,
            parallel: parallel_off,
            morsel,
        });
    }

    // Anchored to the workspace root: `cargo bench` runs with the package
    // root as CWD, and a CWD-relative default would silently write a stray
    // copy next to crates/bench/ instead of the committed measurement.
    let json_path = std::env::var("MORPH_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ssb.json").to_string()
    });
    // Every query ran its pairwise operators (serial, parallel, morsel and
    // cache sweeps) since the reset; the recorded peak must honour the
    // one-chunk carry bound — fail loudly if a regression reintroduced an
    // O(column) transient buffer.
    let pairwise = PairwisePeak::capture();
    assert!(
        pairwise.holds(),
        "pairwise transient peak {} bytes exceeds the one-chunk bound of {} bytes",
        pairwise.peak_bytes,
        pairwise.bound_bytes
    );
    eprintln!(
        "pairwise transient peak: {} bytes (bound {} bytes/carry — O(chunk), not O(column))",
        pairwise.peak_bytes, pairwise.bound_bytes
    );
    let json = ssb_speedup_json(&args, &THREAD_COUNTS, &rows, &cache_rows, pairwise);
    // The fusion section sits first in the canonical tail order
    // (fusion → server → governance; the server bench re-merges the later
    // two after this document is written).
    let json = merge_tail_section(&json, "fusion", &fusion_section_json(&fusion_rows));
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(err) => eprintln!("could not write {json_path}: {err}"),
    }

    // Human-readable summary: the acceptance-relevant numbers.  Q4.x gains
    // from inter-operator parallelism alone; the single-chain Q1.x rows are
    // flat without morsels and only scale through the intra-operator path.
    let best_of_slice = |serial: Duration, timings: &[Duration]| {
        let fastest = timings
            .iter()
            .copied()
            .min()
            .unwrap_or(Duration::MAX)
            .as_secs_f64();
        serial.as_secs_f64() / fastest
    };
    for row in rows
        .iter()
        .filter(|r| r.query.starts_with('1') || r.query.starts_with('4'))
    {
        let best_morsel = row
            .morsel
            .iter()
            .map(|sweep| best_of_slice(row.serial, &sweep.parallel))
            .fold(0.0f64, f64::max);
        eprintln!(
            "Q{}: serial {} ms, best inter-op speedup {:.2}x, best intra-op (morsel) speedup {:.2}x",
            row.query,
            fmt_ms(row.serial),
            best_of_slice(row.serial, &row.parallel),
            best_morsel,
        );
    }
    // Cache-workload summary: the acceptance numbers of the repeated-run
    // profile (warm speedup needs no extra cores — a hit skips the work).
    let total_cold: f64 = cache_rows.iter().map(|r| r.cold.as_secs_f64()).sum();
    let total_warm: f64 = cache_rows.iter().map(|r| r.warm.as_secs_f64()).sum();
    let mean_hit_rate: f64 =
        cache_rows.iter().map(|r| r.hit_rate).sum::<f64>() / cache_rows.len().max(1) as f64;
    eprintln!(
        "plan cache: warm runs {:.2}x faster than cold over all 13 queries \
         (cold {:.3} ms, warm {:.3} ms), mean warm hit rate {:.1}%, {} entries / {:.1} MiB used",
        if total_warm > 0.0 {
            total_cold / total_warm
        } else {
            0.0
        },
        total_cold * 1e3,
        total_warm * 1e3,
        mean_hit_rate * 100.0,
        cache.stats().entries,
        cache.bytes_used() as f64 / (1024.0 * 1024.0),
    );
    // Fusion summary: how much intermediate materialisation the fused
    // pipelines avoided, and the measured runtime effect.
    let total_avoided: u64 = fusion_rows
        .iter()
        .map(|r| r.intermediate_bytes_avoided)
        .sum();
    let fused_queries = fusion_rows.iter().filter(|r| r.fused_regions > 0).count();
    let mean_speedup: f64 =
        fusion_rows.iter().map(|r| r.speedup()).sum::<f64>() / fusion_rows.len().max(1) as f64;
    eprintln!(
        "fusion: {fused_queries}/13 queries fused, {:.2} MiB of interiors never retained, \
         mean fused/unfused serial speedup {mean_speedup:.2}x",
        total_avoided as f64 / (1024.0 * 1024.0),
    );
    // The joint cost decision the engine would make for the headline query:
    // interior edges re-priced for decode speed, morsel threshold sized
    // from the driver length and this host's cores.
    let tuning = morph_bench::strategy_tuning(
        SsbQuery::Q1_1,
        &data,
        morph_cost::FormatSelectionStrategy::CostBased,
    );
    eprintln!(
        "cost model (Q1.1, cost-based): {} per-edge formats, morsel_threshold {:?}",
        tuning.formats.explicit_columns().count(),
        tuning.morsel_threshold,
    );
    eprintln!(
        "note: speedups > 1 require multiple CPU cores; this host exposes {}",
        morph_bench::host_cores()
    );
}
