//! `parallel_speedup` — wall-clock comparison of serial vs. parallel plan
//! execution over all 13 SSB queries, sweeping the worker-pool size.
//!
//! For every query, the harness measures the serial executor
//! (`SsbQuery::execute`) and the dependency-driven parallel executor
//! (`SsbQuery::execute_parallel`) with 1, 2, 4 and 8 workers, under the
//! headline vectorized + continuously-compressed configuration.  The
//! best-of-`runs` wall clock is reported (robust against scheduler noise).
//!
//! The multi-join Q4.x plans are the showcase: their dimension-table
//! subtrees (select → project → semi-join per dimension) are independent, so
//! with ≥ 2 workers on a multi-core machine they overlap.  `threads = 1`
//! delegates to the serial executor and must be within noise of it.
//!
//! Output: a CSV table on stdout plus the machine-readable `BENCH_ssb.json`
//! (path overridable via the `MORPH_BENCH_JSON` environment variable) with
//! per-query serial and parallel wall-clock in nanoseconds — the document a
//! CI step can archive and diff across commits.
//!
//! Usual harness flags apply: `--scale-factor`, `--runs`, `--seed`.

use std::time::{Duration, Instant};

use morph_bench::{fmt_ms, print_header, print_row, ssb_speedup_json, HarnessArgs, SpeedupRow};
use morph_compression::Format;
use morph_ssb::{dbgen, SsbQuery};
use morphstore_engine::exec::FormatConfig;
use morphstore_engine::{ExecSettings, ExecutionContext};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`runs` wall clock of `f` (which returns the query result, kept
/// alive so the work cannot be optimised away).
fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let result = f();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        last = Some(result);
    }
    (best, last.expect("at least one run"))
}

fn main() {
    let args = HarnessArgs::parse();
    let settings = ExecSettings::vectorized_compressed();
    let formats = FormatConfig::with_default(Format::DynBp);
    eprintln!(
        "generating SSB data (scale factor {}, seed {}) ...",
        args.scale_factor, args.seed
    );
    let data = dbgen::generate(args.scale_factor, args.seed).with_uniform_format(&Format::DynBp);

    let mut header = vec!["query".to_string(), "serial_ms".to_string()];
    for threads in THREAD_COUNTS {
        header.push(format!("par{threads}_ms"));
        header.push(format!("speedup_x{threads}"));
    }
    print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let mut rows = Vec::new();
    for query in SsbQuery::all() {
        let (serial, serial_result) = best_of(args.runs, || {
            let mut ctx = ExecutionContext::new(settings, formats.clone());
            query.execute(&data, &mut ctx)
        });
        let mut row = vec![query.label().to_string(), fmt_ms(serial)];
        let mut parallel = Vec::new();
        for threads in THREAD_COUNTS {
            let (elapsed, result) = best_of(args.runs, || {
                let mut ctx = ExecutionContext::new(settings, formats.clone());
                query.execute_parallel(&data, &mut ctx, threads)
            });
            assert_eq!(
                result, serial_result,
                "{query} threads={threads}: parallel result diverged"
            );
            row.push(fmt_ms(elapsed));
            row.push(format!(
                "{:.2}",
                serial.as_secs_f64() / elapsed.as_secs_f64()
            ));
            parallel.push(elapsed);
        }
        print_row(&row);
        rows.push(SpeedupRow {
            query: query.label().to_string(),
            serial,
            parallel,
        });
    }

    let json_path =
        std::env::var("MORPH_BENCH_JSON").unwrap_or_else(|_| "BENCH_ssb.json".to_string());
    let json = ssb_speedup_json(&args, &THREAD_COUNTS, &rows);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(err) => eprintln!("could not write {json_path}: {err}"),
    }

    // Human-readable summary: the acceptance-relevant numbers.
    let best = |row: &SpeedupRow| {
        let fastest = row
            .parallel
            .iter()
            .copied()
            .min()
            .unwrap_or(Duration::MAX)
            .as_secs_f64();
        row.serial.as_secs_f64() / fastest
    };
    for row in rows.iter().filter(|r| r.query.starts_with('4')) {
        eprintln!(
            "Q{}: serial {} ms, best parallel speedup {:.2}x (threads=1 ratio {:.2})",
            row.query,
            fmt_ms(row.serial),
            best(row),
            row.serial.as_secs_f64() / row.parallel[0].as_secs_f64()
        );
    }
    eprintln!(
        "note: speedups > 1 require multiple CPU cores; this host exposes {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}
