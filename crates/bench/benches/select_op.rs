//! Criterion micro-benchmark backing Figure 5: the select operator across
//! representative input/output format combinations and integration degrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morph_compression::Format;
use morph_storage::datagen::SyntheticColumn;
use morph_storage::Column;
use morphstore_engine::{select, CmpOp, ExecSettings, IntegrationDegree, ProcessingStyle};

const ELEMENTS: usize = 256 * 1024;

fn bench_select_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_formats");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Elements(ELEMENTS as u64));
    let (values, constant) = SyntheticColumn::C1.generate_select_input(ELEMENTS, 42);
    let uncompressed = Column::from_slice(&values);
    let combos = [
        (Format::Uncompressed, Format::Uncompressed),
        (Format::StaticBp(6), Format::Uncompressed),
        (Format::StaticBp(6), Format::DeltaDynBp),
        (Format::DynBp, Format::DeltaDynBp),
        (Format::Rle, Format::DeltaDynBp),
    ];
    for (input_format, output_format) in combos {
        let input = uncompressed.to_format(&input_format);
        let label = format!("{input_format} -> {output_format}");
        group.bench_with_input(
            BenchmarkId::new("de_recompress", label),
            &input,
            |b, input| {
                b.iter(|| {
                    select(
                        CmpOp::Eq,
                        input,
                        constant,
                        &output_format,
                        &ExecSettings::vectorized_compressed(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_select_degrees(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_degrees");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let values = morph_storage::datagen::with_runs(ELEMENTS, 8, 64, 42);
    let rle = Column::compress(&values, &Format::Rle);
    for degree in IntegrationDegree::all() {
        let settings = ExecSettings {
            style: ProcessingStyle::Vectorized,
            degree,
            ..ExecSettings::default()
        };
        group.bench_with_input(
            BenchmarkId::new("rle_input", degree.label()),
            &rle,
            |b, input| b.iter(|| select(CmpOp::Eq, input, 3, &Format::DeltaDynBp, &settings)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_select_formats, bench_select_degrees);
criterion_main!(benches);
