//! Criterion benchmark backing Figure 6: the simple query
//! `SELECT SUM(Y) FROM R WHERE X = c` under different format configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_compression::Format;
use morph_storage::datagen::SyntheticColumn;
use morph_storage::Column;
use morphstore_engine::{agg_sum, project, select, CmpOp, ExecSettings, IntegrationDegree};

const ELEMENTS: usize = 256 * 1024;

fn simple_query(
    x: &Column,
    y: &Column,
    constant: u64,
    positions_format: &Format,
    projected_format: &Format,
    settings: &ExecSettings,
) -> u64 {
    let positions = select(CmpOp::Eq, x, constant, positions_format, settings);
    let projected = project(y, &positions, projected_format, settings);
    agg_sum(&projected, settings)
}

fn bench_simple_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("simple_query");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let (x_values, constant) = SyntheticColumn::C1.generate_select_input(ELEMENTS, 42);
    let y_values = SyntheticColumn::C4.generate(ELEMENTS, 43);
    let configs = [
        (
            "uncompressed",
            Format::Uncompressed,
            Format::Uncompressed,
            Format::Uncompressed,
        ),
        (
            "staticBP_base_only",
            Format::StaticBp(6),
            Format::Uncompressed,
            Format::Uncompressed,
        ),
        (
            "staticBP_everything",
            Format::StaticBp(6),
            Format::StaticBp(18),
            Format::StaticBp(48),
        ),
        (
            "cascades_for_intermediates",
            Format::StaticBp(6),
            Format::DeltaDynBp,
            Format::ForDynBp,
        ),
    ];
    for (label, base_format, positions_format, projected_format) in configs {
        let x = Column::compress(&x_values, &base_format);
        let y = Column::compress(
            &y_values,
            &if base_format == Format::Uncompressed {
                Format::Uncompressed
            } else {
                Format::StaticBp(48)
            },
        );
        let settings = ExecSettings {
            degree: if base_format == Format::Uncompressed {
                IntegrationDegree::PurelyUncompressed
            } else {
                IntegrationDegree::OnTheFlyDeRecompression
            },
            ..ExecSettings::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &(x, y), |b, (x, y)| {
            b.iter(|| {
                simple_query(
                    x,
                    y,
                    constant,
                    &positions_format,
                    &projected_format,
                    &settings,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simple_query);
criterion_main!(benches);
