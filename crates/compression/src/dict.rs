//! Dictionary encoding with an embedded, order-preserving dictionary and
//! bit-packed keys.
//!
//! DICT is a logical-level technique (Section 2.1): every value is replaced
//! by its key in a dictionary of the distinct values.  Here the dictionary is
//! *sorted*, so the mapping is order-preserving, which keeps range predicates
//! meaningful on the keys (Section 3.1 assumes order-preserving dictionary
//! coding when range predicates need to be evaluated).  The keys are packed
//! with the physical-level NS primitive.
//!
//! Because building the dictionary requires seeing all values first, this
//! format is not streamable ([`crate::Format::supports_streaming`] returns
//! `false`); the streaming compressor buffers its input and encodes in
//! [`crate::Compressor::finish`].  It is provided as an *extension* beyond
//! the paper's five formats, primarily to exercise design principle DP2
//! (a rich and easily extensible set of schemes).
//!
//! Layout:
//! `[distinct count d: u64 LE][d sorted distinct values: d * 8 bytes]`
//! `[key width: u8][packed keys: ceil(count * width / 8) bytes]`.

use crate::bitpack;
use crate::{ChunkCursor, Compressor, DecodeError, CACHE_BUFFER_ELEMENTS, CHUNK_DIRECTORY_TARGET};

/// Streaming-interface compressor for the dictionary format (buffers all
/// input internally; see the module documentation).
#[derive(Debug, Clone, Default)]
pub struct DictCompressor {
    buffered: Vec<u64>,
}

impl DictCompressor {
    /// Create an empty dictionary compressor.
    pub fn new() -> Self {
        DictCompressor {
            buffered: Vec::new(),
        }
    }
}

impl Compressor for DictCompressor {
    fn append(&mut self, values: &[u64], _out: &mut Vec<u8>) {
        self.buffered.extend_from_slice(values);
    }

    fn finish(&mut self, out: &mut Vec<u8>) {
        encode_into(&self.buffered, out);
        self.buffered.clear();
    }
}

/// Encode `values` into the dictionary layout described in the module docs.
/// An empty input produces an empty encoding.
pub fn encode_into(values: &[u64], out: &mut Vec<u8>) {
    if values.is_empty() {
        return;
    }
    let mut dictionary: Vec<u64> = values.to_vec();
    dictionary.sort_unstable();
    dictionary.dedup();
    out.extend_from_slice(&(dictionary.len() as u64).to_le_bytes());
    for &value in &dictionary {
        out.extend_from_slice(&value.to_le_bytes());
    }
    let width = bitpack::bit_width_of(dictionary.len().saturating_sub(1) as u64);
    out.push(width);
    // Every value is present by construction (the dictionary is the sorted
    // dedup of `values`), so the first index with a value `>= v` *is* the
    // key — `partition_point` makes the lookup total with no panic path.
    let keys: Vec<u64> = values
        .iter()
        .map(|v| dictionary.partition_point(|&entry| entry < *v) as u64)
        .collect();
    bitpack::pack_into(&keys, width, out);
}

/// Decode the embedded dictionary of a non-empty encoding: the sorted
/// distinct values, the byte offset of the packed key stream and the key
/// width in bits.  Shared by the sequential and the seekable block decoders
/// and by the pull cursor, all of which operate on engine-produced buffers.
///
/// # Panics
/// Panics if the header is truncated or corrupt; use
/// [`try_decode_dictionary`] for untrusted bytes.
fn decode_dictionary(bytes: &[u8]) -> (Vec<u64>, usize, u8) {
    try_decode_dictionary(bytes).unwrap_or_else(|err| std::panic::panic_any(err))
}

/// Fallible variant of [`decode_dictionary`]: every length is validated
/// before it is trusted, so a truncated or corrupt header yields a
/// structured [`DecodeError`] instead of a slicing panic.
fn try_decode_dictionary(bytes: &[u8]) -> Result<(Vec<u64>, usize, u8), DecodeError> {
    let (keys_offset, width) = try_header_layout(bytes)?;
    let distinct = crate::read_u64_le(bytes, 0) as usize;
    let mut dictionary: Vec<u64> = Vec::with_capacity(distinct);
    for i in 0..distinct {
        dictionary.push(crate::read_u64_le(bytes, 8 + i * 8));
    }
    Ok((dictionary, keys_offset, width))
}

/// Decode `count` values, handing cache-resident chunks to `consumer`.
///
/// # Panics
/// Panics if the buffer is truncated or corrupt; use [`try_for_each_block`]
/// for untrusted bytes.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    try_for_each_block(bytes, count, consumer).unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Fallible variant of [`for_each_block`]: a truncated header, a truncated
/// key stream or a key pointing past the dictionary yields a
/// [`DecodeError`] instead of a panic.
pub fn try_for_each_block(
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) -> Result<(), DecodeError> {
    if count == 0 {
        return Ok(());
    }
    let (dictionary, keys_offset, width) = try_decode_dictionary(bytes)?;
    crate::ensure_bytes(
        "DICT",
        bytes,
        keys_offset,
        bitpack::packed_size_bytes(count, width),
    )?;
    let packed = &bytes[keys_offset..];
    let mut keys: Vec<u64> = Vec::with_capacity(CACHE_BUFFER_ELEMENTS);
    let mut values: Vec<u64> = Vec::with_capacity(CACHE_BUFFER_ELEMENTS);
    let mut done = 0usize;
    while done < count {
        let chunk = (count - done).min(CACHE_BUFFER_ELEMENTS);
        keys.clear();
        // Keys are not byte-aligned per chunk in general, so decode from the
        // stream with an explicit element offset via random access when the
        // chunk does not start on a whole byte; for simplicity decode the
        // chunk with get_packed when misaligned and with unpack_into when the
        // chunk starts at a byte boundary.
        let start_bit = done * width as usize;
        if start_bit.is_multiple_of(8) {
            bitpack::unpack_into(&packed[start_bit / 8..], width, chunk, &mut keys);
        } else {
            for i in 0..chunk {
                keys.push(bitpack::get_packed(packed, width, done + i));
            }
        }
        values.clear();
        for &k in &keys {
            match dictionary.get(k as usize) {
                Some(&value) => values.push(value),
                None => {
                    return Err(DecodeError::CorruptHeader {
                        format: "DICT",
                        detail: format!(
                            "key {k} exceeds the dictionary of {} entries",
                            dictionary.len()
                        ),
                    })
                }
            }
        }
        consumer(&values);
        done += chunk;
    }
    Ok(())
}

/// Parse the header of a non-empty dictionary encoding: returns the byte
/// offset of the packed key stream and the key width in bits.
///
/// Used by the chunk directory to compute seek points into the key stream
/// without decoding any values.
///
/// # Panics
/// Panics if the header is truncated or corrupt; use [`try_header_layout`]
/// for untrusted bytes.
pub fn header_layout(bytes: &[u8]) -> (usize, u8) {
    try_header_layout(bytes).unwrap_or_else(|err| std::panic::panic_any(err))
}

/// Fallible variant of [`header_layout`]: validates that the buffer holds
/// the distinct count, all dictionary entries and the width byte, and that
/// the width is a legal bit width, before any of them is used.
pub fn try_header_layout(bytes: &[u8]) -> Result<(usize, u8), DecodeError> {
    crate::ensure_bytes("DICT", bytes, 0, 8)?;
    let distinct = crate::read_u64_le(bytes, 0);
    // The dictionary must fit into addressable memory before the size
    // arithmetic below can be trusted (a hostile 2^61-entry count would
    // overflow `usize` multiplication).
    let entries_bytes = distinct
        .checked_mul(8)
        .and_then(|b| usize::try_from(b).ok())
        .ok_or_else(|| DecodeError::CorruptHeader {
            format: "DICT",
            detail: format!("implausible distinct-value count {distinct}"),
        })?;
    crate::ensure_bytes("DICT", bytes, 8, entries_bytes + 1)?;
    let width_offset = 8 + entries_bytes;
    let width = bytes[width_offset];
    if !(1..=64).contains(&width) {
        return Err(DecodeError::CorruptHeader {
            format: "DICT",
            detail: format!("key width {width} is not in 1..=64"),
        });
    }
    Ok((width_offset + 1, width))
}

/// Decode the `count` values starting at logical position `start`, handing
/// cache-resident chunks to `consumer` — the seekable variant of
/// [`for_each_block`].
///
/// `start` must be a multiple of 8 elements so the seek into the packed key
/// stream falls on a whole byte (the chunk directory only records such
/// positions).
pub fn for_each_block_in(
    bytes: &[u8],
    start: usize,
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) {
    if count == 0 {
        return;
    }
    let (dictionary, keys_offset, width) = decode_dictionary(bytes);
    let start_bit = start * width as usize;
    assert!(
        start_bit.is_multiple_of(8),
        "dictionary seek position {start} is not byte-aligned"
    );
    let packed = &bytes[keys_offset + start_bit / 8..];
    let mut keys: Vec<u64> = Vec::with_capacity(CACHE_BUFFER_ELEMENTS);
    let mut values: Vec<u64> = Vec::with_capacity(CACHE_BUFFER_ELEMENTS);
    let mut done = 0usize;
    while done < count {
        let chunk = (count - done).min(CACHE_BUFFER_ELEMENTS);
        keys.clear();
        // Chunks are CACHE_BUFFER_ELEMENTS apart, so every chunk after a
        // byte-aligned start is byte-aligned as well.
        let bit = done * width as usize;
        debug_assert!(bit.is_multiple_of(8));
        bitpack::unpack_into(&packed[bit / 8..], width, chunk, &mut keys);
        values.clear();
        values.extend(keys.iter().map(|&k| dictionary[k as usize]));
        consumer(&values);
        done += chunk;
    }
}

/// Pull-based [`ChunkCursor`] over a dictionary-encoded main part.  The
/// embedded dictionary is decoded once at construction (it is format
/// metadata, not transient uncompressed data); chunks decode
/// [`CACHE_BUFFER_ELEMENTS`]-element strides of the packed key stream, which
/// are byte-aligned for every key width, so seeks are pure arithmetic.
#[derive(Debug)]
pub struct DictCursor<'a> {
    dictionary: Vec<u64>,
    packed: &'a [u8],
    width: u8,
    count: usize,
    pos: usize,
    keys: Vec<u64>,
    buffer: Vec<u64>,
}

impl<'a> DictCursor<'a> {
    /// Create a cursor over `count` values of a dictionary encoding,
    /// positioned at the first element.
    pub fn new(bytes: &'a [u8], count: usize) -> DictCursor<'a> {
        let (dictionary, keys_offset, width) = if count == 0 {
            (Vec::new(), 0, 1)
        } else {
            decode_dictionary(bytes)
        };
        DictCursor {
            dictionary,
            packed: &bytes[keys_offset..],
            width,
            count,
            pos: 0,
            keys: Vec::with_capacity(CACHE_BUFFER_ELEMENTS.min(count)),
            buffer: Vec::with_capacity(CACHE_BUFFER_ELEMENTS.min(count)),
        }
    }
}

impl ChunkCursor for DictCursor<'_> {
    fn next_chunk(&mut self) -> Option<&[u64]> {
        if self.pos >= self.count {
            return None;
        }
        let chunk = (self.count - self.pos).min(CACHE_BUFFER_ELEMENTS);
        // `pos` only ever rests on multiples of CACHE_BUFFER_ELEMENTS (seek
        // strides and chunk advances), so the key window is byte-aligned.
        let bit = self.pos * self.width as usize;
        debug_assert!(bit.is_multiple_of(8));
        self.keys.clear();
        bitpack::unpack_into(&self.packed[bit / 8..], self.width, chunk, &mut self.keys);
        self.buffer.clear();
        self.buffer
            .extend(self.keys.iter().map(|&k| self.dictionary[k as usize]));
        self.pos += chunk;
        Some(&self.buffer)
    }

    fn last_chunk(&self) -> &[u64] {
        &self.buffer
    }

    fn seek(&mut self, chunk_idx: usize) {
        self.pos = chunk_idx
            .saturating_mul(CHUNK_DIRECTORY_TARGET)
            .min(self.count);
    }
}

/// Exact encoded size of `values` in the dictionary format.
pub fn encoded_size(values: &[u64]) -> usize {
    let mut distinct: Vec<u64> = values.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let width = bitpack::bit_width_of(distinct.len().saturating_sub(1) as u64);
    8 + distinct.len() * 8 + 1 + bitpack::packed_size_bytes(values.len(), width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, compressed_size_bytes, decompress_into, Format};

    #[test]
    fn roundtrip_low_cardinality() {
        let values: Vec<u64> = (0..10_000u64)
            .map(|i| (i * 7919) % 23 + 1_000_000)
            .collect();
        let (bytes, main_len) = compress_main_part(&Format::Dict, &values);
        assert_eq!(main_len, values.len());
        let mut decoded = Vec::new();
        decompress_into(&Format::Dict, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn low_cardinality_compresses_well() {
        let values: Vec<u64> = (0..100_000u64)
            .map(|i| ((i * 31) % 16) * (u64::MAX / 16))
            .collect();
        let size = compressed_size_bytes(&Format::Dict, &values);
        let uncompressed = values.len() * 8;
        // 4-bit keys + tiny dictionary => ~1/16 of the uncompressed size.
        assert!(size * 10 < uncompressed, "dict size {size}");
        assert_eq!(size, encoded_size(&values));
    }

    #[test]
    fn dictionary_is_order_preserving() {
        let values = vec![500u64, 10, 70, 10, 500, 999];
        let mut bytes = Vec::new();
        encode_into(&values, &mut bytes);
        // The embedded dictionary must be sorted: 10 < 70 < 500 < 999.
        let distinct = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        assert_eq!(distinct, 4);
        let dict: Vec<u64> = (0..4)
            .map(|i| u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap()))
            .collect();
        assert_eq!(dict, vec![10, 70, 500, 999]);
    }

    #[test]
    fn roundtrip_high_cardinality_and_extremes() {
        let mut values: Vec<u64> = (0..3000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        values.push(u64::MAX);
        values.push(0);
        let (bytes, main_len) = compress_main_part(&Format::Dict, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::Dict, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn empty_column() {
        let (bytes, main_len) = compress_main_part(&Format::Dict, &[]);
        let mut decoded = Vec::new();
        decompress_into(&Format::Dict, &bytes, main_len, &mut decoded);
        assert!(decoded.is_empty());
    }

    #[test]
    fn single_value_column() {
        let values = vec![77u64; 5000];
        let (bytes, main_len) = compress_main_part(&Format::Dict, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::Dict, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
        // 1 distinct value -> 1-bit keys: 8 (count) + 8 (dict) + 1 (width) + ceil(5000/8).
        assert_eq!(
            compressed_size_bytes(&Format::Dict, &values),
            8 + 8 + 1 + 625
        );
    }
}
