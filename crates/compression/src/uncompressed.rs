//! The trivial uncompressed "format": values stored as little-endian 64-bit
//! integers.
//!
//! Keeping uncompressed data behind the same interface as the compressed
//! formats lets the engine treat "uncompressed" as just another format, which
//! is how the paper's evaluation sweeps format combinations (the
//! best/worst combinations are explicitly "allowed to employ the
//! uncompressed format", Section 5.2).

use crate::{Compressor, CACHE_BUFFER_ELEMENTS};

/// Streaming "compressor" that simply serialises values as 8-byte
/// little-endian words.
#[derive(Debug, Default, Clone, Copy)]
pub struct UncompressedCompressor;

impl Compressor for UncompressedCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        encode_into(values, out);
    }

    fn finish(&mut self, _out: &mut Vec<u8>) {}
}

/// Serialise `values` as little-endian 64-bit words appended to `out`.
pub fn encode_into(values: &[u64], out: &mut Vec<u8>) {
    out.reserve(values.len() * 8);
    for &value in values {
        out.extend_from_slice(&value.to_le_bytes());
    }
}

/// Decode `count` values, handing chunks of at most
/// [`CACHE_BUFFER_ELEMENTS`] values to `consumer`.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    assert!(bytes.len() >= count * 8, "uncompressed buffer too short");
    let mut buffer = Vec::with_capacity(CACHE_BUFFER_ELEMENTS.min(count));
    let mut offset = 0usize;
    while offset < count {
        let chunk = (count - offset).min(CACHE_BUFFER_ELEMENTS);
        buffer.clear();
        for i in 0..chunk {
            let start = (offset + i) * 8;
            buffer.push(u64::from_le_bytes(
                bytes[start..start + 8].try_into().expect("8 bytes"),
            ));
        }
        consumer(&buffer);
        offset += chunk;
    }
}

/// Random access to element `idx`.
#[inline]
pub fn get(bytes: &[u8], idx: usize) -> u64 {
    let start = idx * 8;
    u64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, decompress_into, Format};

    #[test]
    fn roundtrip() {
        let values: Vec<u64> = (0..5000).map(|i| i * 37 + 5).collect();
        let (bytes, main_len) = compress_main_part(&Format::Uncompressed, &values);
        assert_eq!(main_len, values.len());
        assert_eq!(bytes.len(), values.len() * 8);
        let mut decoded = Vec::new();
        decompress_into(&Format::Uncompressed, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn random_access() {
        let values: Vec<u64> = vec![9, u64::MAX, 0, 123456789];
        let mut bytes = Vec::new();
        encode_into(&values, &mut bytes);
        for (i, &expected) in values.iter().enumerate() {
            assert_eq!(get(&bytes, i), expected);
        }
    }

    #[test]
    fn blockwise_decode_respects_cache_buffer_size() {
        let values: Vec<u64> = (0..10_000).collect();
        let mut bytes = Vec::new();
        encode_into(&values, &mut bytes);
        let mut chunks = Vec::new();
        for_each_block(&bytes, values.len(), &mut |chunk| chunks.push(chunk.len()));
        assert!(chunks.iter().all(|&len| len <= CACHE_BUFFER_ELEMENTS));
        assert_eq!(chunks.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn empty_input() {
        let (bytes, main_len) = compress_main_part(&Format::Uncompressed, &[]);
        assert!(bytes.is_empty());
        assert_eq!(main_len, 0);
        let mut decoded = Vec::new();
        decompress_into(&Format::Uncompressed, &bytes, 0, &mut decoded);
        assert!(decoded.is_empty());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_buffer_is_rejected() {
        for_each_block(&[0u8; 10], 2, &mut |_| {});
    }
}
