//! The trivial uncompressed "format": values stored as little-endian 64-bit
//! integers.
//!
//! Keeping uncompressed data behind the same interface as the compressed
//! formats lets the engine treat "uncompressed" as just another format, which
//! is how the paper's evaluation sweeps format combinations (the
//! best/worst combinations are explicitly "allowed to employ the
//! uncompressed format", Section 5.2).

use crate::{ChunkCursor, Compressor, DecodeError, CACHE_BUFFER_ELEMENTS, CHUNK_DIRECTORY_TARGET};

/// Streaming "compressor" that simply serialises values as 8-byte
/// little-endian words.
#[derive(Debug, Default, Clone, Copy)]
pub struct UncompressedCompressor;

impl Compressor for UncompressedCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        encode_into(values, out);
    }

    fn finish(&mut self, _out: &mut Vec<u8>) {}
}

/// Serialise `values` as little-endian 64-bit words appended to `out`.
pub fn encode_into(values: &[u64], out: &mut Vec<u8>) {
    out.reserve(values.len() * 8);
    for &value in values {
        out.extend_from_slice(&value.to_le_bytes());
    }
}

/// Decode `count` values, handing chunks of at most
/// [`CACHE_BUFFER_ELEMENTS`] values to `consumer`.
///
/// # Panics
/// Panics if the buffer is too short; use [`try_for_each_block`] for
/// untrusted bytes.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    try_for_each_block(bytes, count, consumer).unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Fallible variant of [`for_each_block`]: a buffer shorter than `count`
/// values yields a [`DecodeError`] instead of a panic.
pub fn try_for_each_block(
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) -> Result<(), DecodeError> {
    crate::ensure_bytes("uncompressed", bytes, 0, count * 8)?;
    let mut buffer = Vec::with_capacity(CACHE_BUFFER_ELEMENTS.min(count));
    let mut offset = 0usize;
    while offset < count {
        let chunk = (count - offset).min(CACHE_BUFFER_ELEMENTS);
        buffer.clear();
        for i in 0..chunk {
            let start = (offset + i) * 8;
            buffer.push(crate::read_u64_le(bytes, start));
        }
        consumer(&buffer);
        offset += chunk;
    }
    Ok(())
}

/// Pull-based [`ChunkCursor`] over an uncompressed main part.  The stride is
/// fixed (8 bytes per element), so seeks are pure arithmetic.
#[derive(Debug)]
pub struct UncompressedCursor<'a> {
    bytes: &'a [u8],
    count: usize,
    pos: usize,
    buffer: Vec<u64>,
}

impl<'a> UncompressedCursor<'a> {
    /// Create a cursor over `count` values encoded in `bytes`, positioned at
    /// the first element.
    pub fn new(bytes: &'a [u8], count: usize) -> UncompressedCursor<'a> {
        UncompressedCursor {
            bytes,
            count,
            pos: 0,
            buffer: Vec::with_capacity(CACHE_BUFFER_ELEMENTS.min(count)),
        }
    }
}

impl ChunkCursor for UncompressedCursor<'_> {
    fn next_chunk(&mut self) -> Option<&[u64]> {
        if self.pos >= self.count {
            return None;
        }
        let chunk = (self.count - self.pos).min(CACHE_BUFFER_ELEMENTS);
        self.buffer.clear();
        for i in 0..chunk {
            let start = (self.pos + i) * 8;
            self.buffer.push(crate::read_u64_le(self.bytes, start));
        }
        self.pos += chunk;
        Some(&self.buffer)
    }

    fn last_chunk(&self) -> &[u64] {
        &self.buffer
    }

    fn seek(&mut self, chunk_idx: usize) {
        self.pos = chunk_idx
            .saturating_mul(CHUNK_DIRECTORY_TARGET)
            .min(self.count);
    }
}

/// Random access to element `idx`.
#[inline]
pub fn get(bytes: &[u8], idx: usize) -> u64 {
    crate::read_u64_le(bytes, idx * 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, decompress_into, Format};

    #[test]
    fn roundtrip() {
        let values: Vec<u64> = (0..5000).map(|i| i * 37 + 5).collect();
        let (bytes, main_len) = compress_main_part(&Format::Uncompressed, &values);
        assert_eq!(main_len, values.len());
        assert_eq!(bytes.len(), values.len() * 8);
        let mut decoded = Vec::new();
        decompress_into(&Format::Uncompressed, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn random_access() {
        let values: Vec<u64> = vec![9, u64::MAX, 0, 123456789];
        let mut bytes = Vec::new();
        encode_into(&values, &mut bytes);
        for (i, &expected) in values.iter().enumerate() {
            assert_eq!(get(&bytes, i), expected);
        }
    }

    #[test]
    fn blockwise_decode_respects_cache_buffer_size() {
        let values: Vec<u64> = (0..10_000).collect();
        let mut bytes = Vec::new();
        encode_into(&values, &mut bytes);
        let mut chunks = Vec::new();
        for_each_block(&bytes, values.len(), &mut |chunk| chunks.push(chunk.len()));
        assert!(chunks.iter().all(|&len| len <= CACHE_BUFFER_ELEMENTS));
        assert_eq!(chunks.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn empty_input() {
        let (bytes, main_len) = compress_main_part(&Format::Uncompressed, &[]);
        assert!(bytes.is_empty());
        assert_eq!(main_len, 0);
        let mut decoded = Vec::new();
        decompress_into(&Format::Uncompressed, &bytes, 0, &mut decoded);
        assert!(decoded.is_empty());
    }

    #[test]
    fn short_buffer_is_rejected_with_structured_payload() {
        // The panicking wrapper carries the `DecodeError` itself as the
        // panic payload, so governed executors can recover it structurally.
        let payload = std::panic::catch_unwind(|| for_each_block(&[0u8; 10], 2, &mut |_| {}))
            .expect_err("short buffer must panic");
        let decode = payload
            .downcast_ref::<crate::DecodeError>()
            .expect("payload is a DecodeError");
        assert!(matches!(decode, crate::DecodeError::Truncated { .. }));
    }

    #[test]
    fn short_buffer_yields_structured_error() {
        let err = try_for_each_block(&[0u8; 10], 2, &mut |_| {}).unwrap_err();
        assert_eq!(
            err,
            crate::DecodeError::Truncated {
                format: "uncompressed",
                offset: 0,
                needed: 16,
                available: 10,
            }
        );
    }

    #[test]
    fn cursor_streams_and_seeks() {
        let values: Vec<u64> = (0..5000).collect();
        let mut bytes = Vec::new();
        encode_into(&values, &mut bytes);
        let mut cursor = UncompressedCursor::new(&bytes, values.len());
        let mut collected = Vec::new();
        while let Some(chunk) = cursor.next_chunk() {
            assert!(chunk.len() <= CACHE_BUFFER_ELEMENTS);
            collected.extend_from_slice(chunk);
        }
        assert_eq!(collected, values);
        // Seek to the second directory chunk (2048-element stride).
        cursor.seek(1);
        assert_eq!(cursor.next_chunk().unwrap()[0], values[2048]);
        cursor.seek(usize::MAX / CHUNK_DIRECTORY_TARGET);
        assert!(cursor.next_chunk().is_none());
    }
}
