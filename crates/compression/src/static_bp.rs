//! Static bit packing: one fixed bit width for the whole column.
//!
//! This is the paper's "static BP" (Section 4.1): "a variant of BP with one
//! block and fixed bit width for all data elements".  Byte-aligned widths (8,
//! 16, 32) correspond to the narrow SQL integer types that most systems use
//! as their only physical-level compression (Section 2.2).  Because the width
//! is constant, the position of every element in the bit stream is known,
//! which is what makes random read access — and thus the project operator on
//! compressed data — straightforward (Section 4.2).
//!
//! Layout: the values are packed as one dense bit stream in blocks of
//! [`STATIC_BP_BLOCK`] = 64 values, so every block occupies exactly `8 * w`
//! bytes and blocks are byte-aligned for every width.

use crate::bitpack;
use crate::{
    ChunkCursor, Compressor, DecodeError, CACHE_BUFFER_ELEMENTS, CHUNK_DIRECTORY_TARGET,
    STATIC_BP_BLOCK,
};

/// Streaming compressor for static bit packing with a fixed `width`.
#[derive(Debug, Clone)]
pub struct StaticBpCompressor {
    width: u8,
}

impl StaticBpCompressor {
    /// Create a compressor packing every value with `width` bits.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=64`.
    pub fn new(width: u8) -> Self {
        assert!((1..=64).contains(&width), "bit width must be in 1..=64");
        StaticBpCompressor { width }
    }
}

impl Compressor for StaticBpCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        assert_eq!(
            values.len() % STATIC_BP_BLOCK,
            0,
            "static BP chunks must be multiples of {STATIC_BP_BLOCK} elements"
        );
        // Static BP has one fixed width for the whole column; a value that
        // does not fit indicates an inconsistent plan (the optimizer assigned
        // a too-narrow width), which must fail loudly rather than silently
        // truncate data.
        let effective = bitpack::bit_width_of_max(values);
        assert!(
            effective <= self.width,
            "static BP width {} is too narrow: data requires {} bits",
            self.width,
            effective
        );
        bitpack::pack_into(values, self.width, out);
    }

    fn finish(&mut self, _out: &mut Vec<u8>) {}
}

/// Size in bytes of `count` elements packed with `width` bits (`count` must
/// be a multiple of the block size).
pub fn encoded_size(count: usize, width: u8) -> usize {
    bitpack::packed_size_bytes(count, width)
}

/// Decode `count` values packed with `width` bits, handing cache-resident
/// chunks to `consumer`.
///
/// # Panics
/// Panics if the buffer is too short or the width invalid; use
/// [`try_for_each_block`] for untrusted bytes.
pub fn for_each_block(bytes: &[u8], width: u8, count: usize, consumer: &mut dyn FnMut(&[u64])) {
    try_for_each_block(bytes, width, count, consumer)
        .unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Fallible variant of [`for_each_block`]: an invalid width or a buffer too
/// short for `count` values yields a [`DecodeError`] instead of a panic.
pub fn try_for_each_block(
    bytes: &[u8],
    width: u8,
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) -> Result<(), DecodeError> {
    if !(1..=64).contains(&width) {
        return Err(DecodeError::CorruptHeader {
            format: "static BP",
            detail: format!("bit width {width} is not in 1..=64"),
        });
    }
    if !count.is_multiple_of(STATIC_BP_BLOCK) {
        return Err(DecodeError::CorruptHeader {
            format: "static BP",
            detail: format!(
                "main part of {count} elements is not whole {STATIC_BP_BLOCK}-element blocks"
            ),
        });
    }
    crate::ensure_bytes(
        "static BP",
        bytes,
        0,
        bitpack::packed_size_bytes(count, width),
    )?;
    let mut buffer: Vec<u64> = Vec::with_capacity(CACHE_BUFFER_ELEMENTS);
    let mut offset = 0usize;
    while offset < count {
        let chunk = (count - offset).min(CACHE_BUFFER_ELEMENTS);
        buffer.clear();
        let byte_start = bitpack::packed_size_bytes(offset, width);
        let byte_end = bitpack::packed_size_bytes(offset + chunk, width);
        bitpack::unpack_into(&bytes[byte_start..byte_end], width, chunk, &mut buffer);
        consumer(&buffer);
        offset += chunk;
    }
    Ok(())
}

/// Pull-based [`ChunkCursor`] over a static-BP main part.  The width is
/// constant, so seeks are pure arithmetic; directory strides are multiples
/// of 8 elements and therefore always byte-aligned.
#[derive(Debug)]
pub struct StaticBpCursor<'a> {
    bytes: &'a [u8],
    width: u8,
    count: usize,
    pos: usize,
    buffer: Vec<u64>,
}

impl<'a> StaticBpCursor<'a> {
    /// Create a cursor over `count` values of `width` bits each, positioned
    /// at the first element.
    pub fn new(bytes: &'a [u8], width: u8, count: usize) -> StaticBpCursor<'a> {
        StaticBpCursor {
            bytes,
            width,
            count,
            pos: 0,
            buffer: Vec::with_capacity(CACHE_BUFFER_ELEMENTS.min(count)),
        }
    }
}

impl ChunkCursor for StaticBpCursor<'_> {
    fn next_chunk(&mut self) -> Option<&[u64]> {
        if self.pos >= self.count {
            return None;
        }
        let chunk = (self.count - self.pos).min(CACHE_BUFFER_ELEMENTS);
        // `pos` only ever rests on multiples of CACHE_BUFFER_ELEMENTS (seek
        // strides and chunk advances), so the start is byte-aligned.
        let byte_start = bitpack::packed_size_bytes(self.pos, self.width);
        let byte_end = bitpack::packed_size_bytes(self.pos + chunk, self.width);
        self.buffer.clear();
        bitpack::unpack_into(
            &self.bytes[byte_start..byte_end],
            self.width,
            chunk,
            &mut self.buffer,
        );
        self.pos += chunk;
        Some(&self.buffer)
    }

    fn last_chunk(&self) -> &[u64] {
        &self.buffer
    }

    fn seek(&mut self, chunk_idx: usize) {
        self.pos = chunk_idx
            .saturating_mul(CHUNK_DIRECTORY_TARGET)
            .min(self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, compressed_size_bytes, decompress_into, get_element, Format};

    #[test]
    fn roundtrip_various_widths() {
        for width in [1u8, 6, 8, 13, 32, 48, 63, 64] {
            let max = bitpack::max_value_for_width(width);
            let values: Vec<u64> = (0..4096u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & max)
                .collect();
            let format = Format::StaticBp(width);
            let (bytes, main_len) = compress_main_part(&format, &values);
            assert_eq!(main_len, values.len());
            assert_eq!(bytes.len(), encoded_size(values.len(), width));
            let mut decoded = Vec::new();
            decompress_into(&format, &bytes, main_len, &mut decoded);
            assert_eq!(decoded, values);
        }
    }

    #[test]
    fn compression_ratio_matches_width() {
        // 6-bit data (like column C1 of Table 1) should compress to ~6/64 of
        // the uncompressed size.
        let values: Vec<u64> = (0..128 * 1024u64).map(|i| i % 64).collect();
        let compressed = compressed_size_bytes(&Format::StaticBp(6), &values);
        let uncompressed = values.len() * 8;
        let ratio = compressed as f64 / uncompressed as f64;
        assert!((ratio - 6.0 / 64.0).abs() < 0.01, "ratio was {ratio}");
    }

    #[test]
    fn random_access_matches_sequential() {
        let values: Vec<u64> = (0..1024u64).map(|i| (i * 7) % 1000).collect();
        let format = Format::StaticBp(10);
        let (bytes, main_len) = compress_main_part(&format, &values);
        for idx in [0usize, 1, 63, 64, 65, 511, 1023] {
            assert_eq!(
                get_element(&format, &bytes, main_len, idx),
                Some(values[idx]),
                "mismatch at {idx}"
            );
        }
    }

    #[test]
    fn remainder_is_left_to_caller() {
        let values: Vec<u64> = (0..130).collect();
        let (_, main_len) = compress_main_part(&Format::StaticBp(8), &values);
        assert_eq!(main_len, 128);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn append_rejects_partial_blocks() {
        let mut compressor = StaticBpCompressor::new(8);
        compressor.append(&[1, 2, 3], &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn zero_width_rejected() {
        StaticBpCompressor::new(0);
    }

    #[test]
    fn blockwise_decode_chunks_are_cache_resident() {
        let values: Vec<u64> = (0..8192u64).map(|i| i % 100).collect();
        let (bytes, main_len) = compress_main_part(&Format::StaticBp(7), &values);
        let mut total = 0usize;
        for_each_block(&bytes, 7, main_len, &mut |chunk| {
            assert!(chunk.len() <= CACHE_BUFFER_ELEMENTS);
            total += chunk.len();
        });
        assert_eq!(total, main_len);
    }
}
