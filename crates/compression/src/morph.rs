//! Direct morphing: changing the representation of data from one compressed
//! format to another.
//!
//! Morphing is the key enabler of the *on-the-fly morphing* integration
//! degree (Figure 2(d)) and of design principle DP2: the format of every
//! intermediate can be chosen independently because it can always be adapted
//! to what an operator expects.  Following [18] (Damme et al., ADBIS 2015),
//! a direct morph avoids the full uncompressed materialisation of the column:
//! the source format is decoded block by block into a cache-resident buffer
//! that is immediately re-encoded into the target format, and a handful of
//! format pairs have specialised shortcuts that skip even that.

use crate::{
    bitpack, compressor_for, dyn_bp, for_each_decompressed_block, rle, static_bp, Format,
    CACHE_BUFFER_ELEMENTS, DYN_BP_BLOCK, STATIC_BP_BLOCK,
};

/// Morph a compressed main part of `count` elements from `src` format to
/// `dst` format.  Returns the encoded bytes in the target format.
///
/// `count` must be a multiple of both formats' block sizes (the column layer
/// of the engine guarantees this by re-balancing the uncompressed remainder
/// when the block sizes differ).
///
/// The generic path streams cache-resident blocks from the source decoder
/// into the target encoder, so at no point is the whole column materialised
/// uncompressed (DP3).  Specialised shortcuts exist for:
///
/// * identical source and target formats (bytes are copied verbatim),
/// * static BP → static BP with a different width (repacking without
///   interpreting values),
/// * RLE → anything (runs are expanded lazily),
/// * dynamic BP → static BP (the target width is taken from the per-block
///   headers without a decode pass when it is already known).
pub fn morph_main_part(src: &Format, dst: &Format, bytes: &[u8], count: usize) -> Vec<u8> {
    assert_eq!(
        count % src.block_size(),
        0,
        "morph source count must be whole blocks"
    );
    assert_eq!(
        count % dst.block_size(),
        0,
        "morph target count must be whole blocks"
    );
    if src == dst {
        return bytes.to_vec();
    }
    if let (Format::StaticBp(src_width), Format::StaticBp(dst_width)) = (src, dst) {
        return repack_static(bytes, *src_width, *dst_width, count);
    }
    // Generic streaming morph: decode block-wise, re-encode immediately.
    let mut out = Vec::new();
    let mut encoder = compressor_for(dst);
    let dst_block = dst.block_size();
    let mut staging: Vec<u64> = Vec::with_capacity(CACHE_BUFFER_ELEMENTS + DYN_BP_BLOCK);
    for_each_decompressed_block(src, bytes, count, &mut |chunk| {
        staging.extend_from_slice(chunk);
        let usable = staging.len() - staging.len() % dst_block;
        if usable > 0 {
            encoder.append(&staging[..usable], &mut out);
            staging.drain(..usable);
        }
    });
    if !staging.is_empty() {
        // `count` is a multiple of the destination block size, so by the time
        // the source is exhausted the staging buffer must be flushable.
        assert_eq!(staging.len() % dst_block, 0, "morph staging misaligned");
        encoder.append(&staging, &mut out);
    }
    encoder.finish(&mut out);
    out
}

/// Repack a static-BP bit stream to a different width without the
/// logical-level decode step.
fn repack_static(bytes: &[u8], src_width: u8, dst_width: u8, count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bitpack::packed_size_bytes(count, dst_width));
    let mut buffer: Vec<u64> = Vec::with_capacity(CACHE_BUFFER_ELEMENTS);
    let mut offset = 0usize;
    while offset < count {
        let chunk = (count - offset).min(CACHE_BUFFER_ELEMENTS);
        buffer.clear();
        let byte_start = bitpack::packed_size_bytes(offset, src_width);
        bitpack::unpack_into(&bytes[byte_start..], src_width, chunk, &mut buffer);
        debug_assert!(
            buffer
                .iter()
                .all(|&v| v <= bitpack::max_value_for_width(dst_width)),
            "value does not fit into the target static width"
        );
        bitpack::pack_into(&buffer, dst_width, &mut out);
        offset += chunk;
    }
    out
}

/// Estimate of the work (in decoded elements) a morph has to perform; used by
/// the engine to decide whether a morph is worthwhile compared to on-the-fly
/// de/re-compression.
pub fn morph_cost_elements(src: &Format, dst: &Format, count: usize, bytes: &[u8]) -> usize {
    if src == dst {
        return 0;
    }
    match (src, dst) {
        // RLE sources only touch one pair per run.
        (Format::Rle, _) => rle::run_count(bytes, count) * 2,
        _ => count,
    }
}

/// Convenience helper: the number of whole blocks representable for a column
/// of `len` elements when stored in `format`.
pub fn main_part_len(format: &Format, len: usize) -> usize {
    len - len % format.block_size()
}

/// Pick a static-BP width that can hold every value of a dynamic-BP encoded
/// main part by inspecting only the per-block headers.
pub fn static_width_from_dyn_bp(bytes: &[u8], count: usize) -> u8 {
    dyn_bp::block_widths(bytes, count)
        .into_iter()
        .max()
        .unwrap_or(1)
}

/// Pick a static-BP width for a static-BP encoded main part (identity helper
/// for the engine's uniform handling of width discovery).
pub fn static_width_from_static_bp(width: u8) -> u8 {
    let _ = static_bp::encoded_size(STATIC_BP_BLOCK, width);
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, decompress_into};

    fn sample_values(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 37) % 1000 + 500).collect()
    }

    fn roundtrip_via_morph(src: Format, dst: Format, values: &[u64]) {
        let (src_bytes, main_len) = compress_main_part(&src, values);
        let lcm_len = main_len - main_len % dst.block_size();
        // Restrict to a length valid for both formats.
        let (src_bytes, main_len) = if lcm_len != main_len {
            compress_main_part(&src, &values[..lcm_len])
        } else {
            (src_bytes, main_len)
        };
        let morphed = morph_main_part(&src, &dst, &src_bytes, main_len);
        let mut from_morph = Vec::new();
        decompress_into(&dst, &morphed, main_len, &mut from_morph);
        assert_eq!(from_morph, values[..main_len], "morph {src} -> {dst}");
        // The morphed bytes must be identical to compressing from scratch,
        // i.e. morphing is exactly "re-encode in the target format".
        let (direct, _) = compress_main_part(&dst, &values[..main_len]);
        assert_eq!(
            morphed, direct,
            "morph {src} -> {dst} differs from direct compression"
        );
    }

    #[test]
    fn morph_between_all_paper_formats() {
        let values = sample_values(4096);
        let formats = Format::paper_formats(1500);
        for src in &formats {
            for dst in &formats {
                roundtrip_via_morph(*src, *dst, &values);
            }
        }
    }

    #[test]
    fn morph_involving_rle_and_dict() {
        let mut values = vec![42u64; 2048];
        values.extend(sample_values(2048));
        let formats = [
            Format::Rle,
            Format::Dict,
            Format::DynBp,
            Format::Uncompressed,
        ];
        for src in &formats {
            for dst in &formats {
                roundtrip_via_morph(*src, *dst, &values);
            }
        }
    }

    #[test]
    fn identity_morph_is_a_copy() {
        let values = sample_values(1024);
        let (bytes, main_len) = compress_main_part(&Format::DynBp, &values);
        let morphed = morph_main_part(&Format::DynBp, &Format::DynBp, &bytes, main_len);
        assert_eq!(morphed, bytes);
        assert_eq!(
            morph_cost_elements(&Format::DynBp, &Format::DynBp, main_len, &bytes),
            0
        );
    }

    #[test]
    fn static_repack_widens_and_narrows() {
        let values: Vec<u64> = (0..1024u64).map(|i| i % 200).collect();
        let (narrow, main_len) = compress_main_part(&Format::StaticBp(8), &values);
        let widened = morph_main_part(
            &Format::StaticBp(8),
            &Format::StaticBp(20),
            &narrow,
            main_len,
        );
        let mut decoded = Vec::new();
        decompress_into(&Format::StaticBp(20), &widened, main_len, &mut decoded);
        assert_eq!(decoded, values);
        let renarrowed = morph_main_part(
            &Format::StaticBp(20),
            &Format::StaticBp(8),
            &widened,
            main_len,
        );
        assert_eq!(renarrowed, narrow);
    }

    #[test]
    fn dyn_bp_headers_give_static_width() {
        let mut values = sample_values(2048);
        values[1999] = 1 << 40;
        let (bytes, main_len) = compress_main_part(&Format::DynBp, &values);
        assert_eq!(static_width_from_dyn_bp(&bytes, main_len), 41);
        assert_eq!(static_width_from_static_bp(13), 13);
    }

    #[test]
    fn morph_cost_is_cheap_for_rle_sources() {
        let values = vec![9u64; 100_000];
        let (bytes, main_len) = compress_main_part(&Format::Rle, &values);
        assert_eq!(
            morph_cost_elements(&Format::Rle, &Format::DynBp, main_len, &bytes),
            2
        );
        assert_eq!(
            morph_cost_elements(&Format::DynBp, &Format::Rle, main_len, &bytes),
            main_len
        );
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn morph_rejects_partial_blocks() {
        let values = sample_values(700);
        let (bytes, _) = compress_main_part(&Format::Uncompressed, &values);
        morph_main_part(&Format::Uncompressed, &Format::DynBp, &bytes, 700);
    }
}
