//! Run-length encoding: uninterrupted runs of the same value are stored as
//! (value, run length) pairs.
//!
//! RLE is one of the logical-level techniques of Section 2.1 and the basis of
//! several *specialized* operators described in Section 2.2 (Abadi et al.):
//! a selection only needs to compare run values, and a summation is the sum
//! of `value * run_length` products.  The engine's specialized operator
//! implementations rely on [`for_each_run`] to visit runs without
//! decompressing them.
//!
//! Layout: a sequence of `[value: u64 LE][run length: u64 LE]` pairs.
//! The format can represent any number of data elements (block size 1), so
//! columns using it never have an uncompressed remainder.

use crate::{ChunkCursor, ChunkEntry, Compressor, DecodeError};

/// Maximum number of elements materialised at once when decompressing runs
/// block-wise (long runs are split so the uncompressed chunks stay
/// cache-resident).
const RLE_CHUNK: usize = crate::CACHE_BUFFER_ELEMENTS;

/// Streaming RLE compressor.  A run may span multiple `append` calls; the
/// pending run is flushed by [`Compressor::finish`].
#[derive(Debug, Clone)]
pub struct RleCompressor {
    pending: Option<(u64, u64)>,
}

impl RleCompressor {
    /// Create an RLE compressor with no pending run.
    pub fn new() -> Self {
        RleCompressor { pending: None }
    }

    fn emit(pair: (u64, u64), out: &mut Vec<u8>) {
        out.extend_from_slice(&pair.0.to_le_bytes());
        out.extend_from_slice(&pair.1.to_le_bytes());
    }
}

impl Default for RleCompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor for RleCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        for &value in values {
            match self.pending {
                Some((run_value, run_len)) if run_value == value => {
                    self.pending = Some((run_value, run_len + 1));
                }
                Some(pair) => {
                    Self::emit(pair, out);
                    self.pending = Some((value, 1));
                }
                None => {
                    self.pending = Some((value, 1));
                }
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<u8>) {
        if let Some(pair) = self.pending.take() {
            Self::emit(pair, out);
        }
    }
}

/// Visit every `(value, run_length)` pair of an RLE-encoded main part without
/// decompressing it.  `count` is the number of *logical* data elements.
///
/// # Panics
/// Panics if the buffer is truncated or a run header is corrupt; use
/// [`try_for_each_run`] for untrusted bytes.
pub fn for_each_run(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(u64, u64)) {
    try_for_each_run(bytes, count, consumer).unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Validate and read the `(value, run_length)` pair starting at `offset`.
/// A zero or over-long run length is rejected — beyond being unencodable,
/// a zero-length run would make every count-driven walk loop forever.
fn checked_run(bytes: &[u8], offset: usize, remaining: u64) -> Result<(u64, u64), DecodeError> {
    crate::ensure_bytes("RLE", bytes, offset, 16)?;
    let value = crate::read_u64_le(bytes, offset);
    let run_len = crate::read_u64_le(bytes, offset + 8);
    if run_len == 0 || run_len > remaining {
        return Err(DecodeError::CorruptHeader {
            format: "RLE",
            detail: format!(
                "run of length {run_len} at offset {offset} with {remaining} elements remaining"
            ),
        });
    }
    Ok((value, run_len))
}

/// Fallible variant of [`for_each_run`]: truncated buffers and impossible
/// run lengths (zero, or longer than the remaining element count) yield a
/// [`DecodeError`] instead of a panic or an endless loop.
pub fn try_for_each_run(
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(u64, u64),
) -> Result<(), DecodeError> {
    let mut remaining = count as u64;
    let mut offset = 0usize;
    while remaining > 0 {
        let (value, run_len) = checked_run(bytes, offset, remaining)?;
        offset += 16;
        consumer(value, run_len);
        remaining -= run_len;
    }
    Ok(())
}

/// Number of runs in an RLE-encoded main part.
pub fn run_count(bytes: &[u8], count: usize) -> usize {
    let mut runs = 0usize;
    for_each_run(bytes, count, &mut |_, _| runs += 1);
    runs
}

/// Decode `count` values, handing cache-resident chunks of uncompressed
/// values to `consumer` (long runs are split across chunks).
///
/// # Panics
/// Panics if the buffer is truncated or a run header is corrupt; use
/// [`try_for_each_block`] for untrusted bytes.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    try_for_each_block(bytes, count, consumer).unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Fallible variant of [`for_each_block`]: truncated buffers and impossible
/// run lengths yield a [`DecodeError`] instead of a panic.
pub fn try_for_each_block(
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) -> Result<(), DecodeError> {
    let mut buffer: Vec<u64> = Vec::with_capacity(RLE_CHUNK.min(count));
    try_for_each_run(bytes, count, &mut |value, run_len| {
        let mut remaining = run_len as usize;
        while remaining > 0 {
            let space = RLE_CHUNK - buffer.len();
            let take = remaining.min(space);
            buffer.extend(std::iter::repeat_n(value, take));
            remaining -= take;
            if buffer.len() == RLE_CHUNK {
                consumer(&buffer);
                buffer.clear();
            }
        }
    })?;
    if !buffer.is_empty() {
        consumer(&buffer);
    }
    Ok(())
}

/// Pull-based [`ChunkCursor`] over an RLE main part.  Chunks hold at most
/// [`RLE_CHUNK`] values (long runs are split); run offsets are
/// data-dependent, so seeks go through the chunk directory, whose entries
/// sit on run boundaries.
#[derive(Debug)]
pub struct RleCursor<'a> {
    bytes: &'a [u8],
    count: usize,
    directory: &'a [ChunkEntry],
    logical: usize,
    byte_offset: usize,
    run_value: u64,
    run_remaining: u64,
    buffer: Vec<u64>,
}

impl<'a> RleCursor<'a> {
    /// Create a cursor over `count` logical values with the main part's
    /// chunk `directory`, positioned at the first element.
    pub fn new(bytes: &'a [u8], count: usize, directory: &'a [ChunkEntry]) -> RleCursor<'a> {
        RleCursor {
            bytes,
            count,
            directory,
            logical: 0,
            byte_offset: 0,
            run_value: 0,
            run_remaining: 0,
            buffer: Vec::with_capacity(RLE_CHUNK.min(count)),
        }
    }
}

impl ChunkCursor for RleCursor<'_> {
    fn next_chunk(&mut self) -> Option<&[u64]> {
        if self.logical >= self.count {
            return None;
        }
        self.buffer.clear();
        while self.buffer.len() < RLE_CHUNK && self.logical < self.count {
            if self.run_remaining == 0 {
                let offset = self.byte_offset;
                self.run_value = crate::read_u64_le(self.bytes, offset);
                self.run_remaining = crate::read_u64_le(self.bytes, offset + 8);
                self.byte_offset += 16;
            }
            let space = (RLE_CHUNK - self.buffer.len()) as u64;
            let take = self
                .run_remaining
                .min(space)
                .min((self.count - self.logical) as u64) as usize;
            self.buffer
                .extend(std::iter::repeat_n(self.run_value, take));
            self.run_remaining -= take as u64;
            self.logical += take;
        }
        Some(&self.buffer)
    }

    fn last_chunk(&self) -> &[u64] {
        &self.buffer
    }

    fn seek(&mut self, chunk_idx: usize) {
        match self.directory.get(chunk_idx) {
            Some(entry) => {
                self.byte_offset = entry.byte_offset;
                self.logical = entry.logical_start;
                // Directory entries sit on run boundaries: the next read
                // starts a fresh run.
                self.run_remaining = 0;
            }
            None => self.logical = self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, compressed_size_bytes, decompress_into, Format};

    #[test]
    fn roundtrip_runs() {
        let mut values = Vec::new();
        for i in 0..100u64 {
            values.extend(std::iter::repeat_n(i % 7, (i % 13 + 1) as usize));
        }
        let (bytes, main_len) = compress_main_part(&Format::Rle, &values);
        assert_eq!(main_len, values.len());
        let mut decoded = Vec::new();
        decompress_into(&Format::Rle, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn long_runs_compress_dramatically() {
        // 90 % of elements are a single value, as in the select micro-benchmark
        // input of Section 5.1.
        let mut values = vec![5u64; 90_000];
        values.extend((0..10_000u64).map(|i| i % 64));
        let rle_size = compressed_size_bytes(&Format::Rle, &values);
        let uncompressed = values.len() * 8;
        // The 10k-element tail is runs of length 1 (16 bytes each); the long
        // 90 %-run still dominates, giving roughly a 5x reduction.
        assert!(rle_size * 4 < uncompressed, "rle size {rle_size}");
    }

    #[test]
    fn worst_case_doubles_the_size() {
        // All-distinct data: one run per element, 16 bytes each.
        let values: Vec<u64> = (0..1000).collect();
        let rle_size = compressed_size_bytes(&Format::Rle, &values);
        assert_eq!(rle_size, values.len() * 16);
    }

    #[test]
    fn run_iteration_reports_runs_without_decompression() {
        let values = [vec![7u64; 500], vec![9u64; 300], vec![7u64; 200]].concat();
        let (bytes, main_len) = compress_main_part(&Format::Rle, &values);
        let mut runs = Vec::new();
        for_each_run(&bytes, main_len, &mut |value, len| runs.push((value, len)));
        assert_eq!(runs, vec![(7, 500), (9, 300), (7, 200)]);
        assert_eq!(run_count(&bytes, main_len), 3);
    }

    #[test]
    fn runs_spanning_append_calls_are_merged() {
        let mut compressor = RleCompressor::new();
        let mut bytes = Vec::new();
        compressor.append(&[4, 4, 4], &mut bytes);
        compressor.append(&[4, 4, 9], &mut bytes);
        compressor.finish(&mut bytes);
        let mut runs = Vec::new();
        for_each_run(&bytes, 6, &mut |value, len| runs.push((value, len)));
        assert_eq!(runs, vec![(4, 5), (9, 1)]);
    }

    #[test]
    fn long_runs_are_split_into_cache_resident_chunks() {
        let values = vec![3u64; 10_000];
        let (bytes, main_len) = compress_main_part(&Format::Rle, &values);
        let mut chunk_sizes = Vec::new();
        for_each_block(&bytes, main_len, &mut |chunk| chunk_sizes.push(chunk.len()));
        assert!(chunk_sizes.iter().all(|&s| s <= RLE_CHUNK));
        assert_eq!(chunk_sizes.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn empty_column() {
        let (bytes, main_len) = compress_main_part(&Format::Rle, &[]);
        assert!(bytes.is_empty());
        let mut decoded = Vec::new();
        decompress_into(&Format::Rle, &bytes, main_len, &mut decoded);
        assert!(decoded.is_empty());
    }
}
