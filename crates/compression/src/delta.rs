//! Delta coding cascaded with dynamic bit packing (DELTA + SIMD-BP).
//!
//! Each value is replaced by its difference to the predecessor (Section 2.1),
//! which turns sorted or nearly sorted sequences — position lists produced by
//! the select operator, sorted dictionary keys, dates — into sequences of
//! tiny integers that the physical-level NS scheme then packs densely.  The
//! paper finds DELTA + SIMD-BP to be the best output format for the select
//! operator in *all* cases "since the output is always sorted" (Section 5.1).
//!
//! Layout per block of [`DYN_BP_BLOCK`] = 512 elements:
//! `[reference: u64 LE][width: u8][packed deltas: 64 * width bytes]`
//! where `reference` is the value preceding the block (0 for the first
//! block) and the deltas are wrapping differences, so the encoding is total:
//! it works for unsorted data too, merely with larger widths.

use crate::bitpack;
use crate::{ChunkCursor, ChunkEntry, Compressor, DecodeError, DYN_BP_BLOCK};

/// Validate and read the `[reference: u64][width: u8]` header of the block
/// starting at `offset`, returning the reference, the width and the byte
/// length of the packed payload behind the header.  Shared by the DELTA and
/// FOR decoders (both cascades use the same per-block layout).
pub(crate) fn checked_cascade_header(
    format: &'static str,
    bytes: &[u8],
    offset: usize,
) -> Result<(u64, u8, usize), DecodeError> {
    crate::ensure_bytes(format, bytes, offset, 9)?;
    let reference = crate::read_u64_le(bytes, offset);
    let width = bytes[offset + 8];
    if !(1..=64).contains(&width) {
        return Err(DecodeError::CorruptHeader {
            format,
            detail: format!(
                "block width {width} at offset {} is not in 1..=64",
                offset + 8
            ),
        });
    }
    let packed = bitpack::packed_size_bytes(DYN_BP_BLOCK, width);
    crate::ensure_bytes(format, bytes, offset + 9, packed)?;
    Ok((reference, width, packed))
}

/// Streaming compressor for DELTA + dynamic BP.  Carries the last value seen
/// so far so that consecutive [`Compressor::append`] calls form one
/// continuous delta chain.
#[derive(Debug, Clone)]
pub struct DeltaDynBpCompressor {
    previous: u64,
    scratch: Vec<u64>,
}

impl DeltaDynBpCompressor {
    /// Create a compressor with an initial predecessor of 0.
    pub fn new() -> Self {
        DeltaDynBpCompressor {
            previous: 0,
            scratch: Vec::with_capacity(DYN_BP_BLOCK),
        }
    }
}

impl Default for DeltaDynBpCompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor for DeltaDynBpCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        assert_eq!(
            values.len() % DYN_BP_BLOCK,
            0,
            "DELTA+BP chunks must be multiples of {DYN_BP_BLOCK} elements"
        );
        for block in values.chunks_exact(DYN_BP_BLOCK) {
            out.extend_from_slice(&self.previous.to_le_bytes());
            self.scratch.clear();
            let mut prev = self.previous;
            for &value in block {
                self.scratch.push(value.wrapping_sub(prev));
                prev = value;
            }
            self.previous = prev;
            let width = bitpack::bit_width_of_max(&self.scratch);
            out.push(width);
            bitpack::pack_into(&self.scratch, width, out);
        }
    }

    fn finish(&mut self, _out: &mut Vec<u8>) {}
}

/// Decode `count` values (a multiple of the block size), handing one block of
/// 512 uncompressed values at a time to `consumer`.
///
/// # Panics
/// Panics if the buffer is truncated or a header is corrupt; use
/// [`try_for_each_block`] for untrusted bytes.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    try_for_each_block(bytes, count, consumer).unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Decode the block starting at `offset` into `values` via the scratch
/// `deltas` buffer, returning the offset of the next block.
fn decode_block(
    bytes: &[u8],
    offset: usize,
    reference: u64,
    width: u8,
    packed: usize,
    deltas: &mut Vec<u64>,
    values: &mut Vec<u64>,
) -> usize {
    deltas.clear();
    bitpack::unpack_into(
        &bytes[offset + 9..offset + 9 + packed],
        width,
        DYN_BP_BLOCK,
        deltas,
    );
    values.clear();
    let mut prev = reference;
    for &delta in deltas.iter() {
        prev = prev.wrapping_add(delta);
        values.push(prev);
    }
    offset + 9 + packed
}

/// Fallible variant of [`for_each_block`]: truncated payloads and invalid
/// header fields yield a [`DecodeError`] instead of a panic.
pub fn try_for_each_block(
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) -> Result<(), DecodeError> {
    if !count.is_multiple_of(DYN_BP_BLOCK) {
        return Err(DecodeError::CorruptHeader {
            format: "DELTA+BP",
            detail: format!(
                "main part of {count} elements is not whole {DYN_BP_BLOCK}-element blocks"
            ),
        });
    }
    let blocks = count / DYN_BP_BLOCK;
    let mut deltas: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut values: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut offset = 0usize;
    for _ in 0..blocks {
        let (reference, width, packed) = checked_cascade_header("DELTA+BP", bytes, offset)?;
        offset = decode_block(
            bytes,
            offset,
            reference,
            width,
            packed,
            &mut deltas,
            &mut values,
        );
        consumer(&values);
    }
    Ok(())
}

/// Pull-based [`ChunkCursor`] over a DELTA+BP main part: one 512-element
/// block per chunk.  Every block carries its own reference value, so blocks
/// are self-contained and seeking needs no prefix replay.
#[derive(Debug)]
pub struct DeltaCursor<'a> {
    bytes: &'a [u8],
    count: usize,
    directory: &'a [ChunkEntry],
    logical: usize,
    byte_offset: usize,
    deltas: Vec<u64>,
    buffer: Vec<u64>,
}

impl<'a> DeltaCursor<'a> {
    /// Create a cursor over `count` values (whole blocks) with the main
    /// part's chunk `directory`, positioned at the first element.
    pub fn new(bytes: &'a [u8], count: usize, directory: &'a [ChunkEntry]) -> DeltaCursor<'a> {
        debug_assert_eq!(count % DYN_BP_BLOCK, 0);
        DeltaCursor {
            bytes,
            count,
            directory,
            logical: 0,
            byte_offset: 0,
            deltas: Vec::with_capacity(DYN_BP_BLOCK.min(count)),
            buffer: Vec::with_capacity(DYN_BP_BLOCK.min(count)),
        }
    }
}

impl ChunkCursor for DeltaCursor<'_> {
    fn next_chunk(&mut self) -> Option<&[u64]> {
        if self.logical >= self.count {
            return None;
        }
        let offset = self.byte_offset;
        let reference = crate::read_u64_le(self.bytes, offset);
        let width = self.bytes[offset + 8];
        let packed = bitpack::packed_size_bytes(DYN_BP_BLOCK, width);
        self.byte_offset = decode_block(
            self.bytes,
            offset,
            reference,
            width,
            packed,
            &mut self.deltas,
            &mut self.buffer,
        );
        self.logical += DYN_BP_BLOCK;
        Some(&self.buffer)
    }

    fn last_chunk(&self) -> &[u64] {
        &self.buffer
    }

    fn seek(&mut self, chunk_idx: usize) {
        match self.directory.get(chunk_idx) {
            Some(entry) => {
                self.byte_offset = entry.byte_offset;
                self.logical = entry.logical_start;
            }
            None => self.logical = self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, compressed_size_bytes, decompress_into, Format};

    #[test]
    fn roundtrip_sorted_positions() {
        // A typical select output: sorted positions.
        let values: Vec<u64> = (0..10 * 1024u64).map(|i| i * 3).collect();
        let (bytes, main_len) = compress_main_part(&Format::DeltaDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::DeltaDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values[..main_len]);
    }

    #[test]
    fn sorted_data_compresses_much_better_than_plain_bp() {
        // Mimics column C4 of Table 1: sorted values around 2^47.
        let values: Vec<u64> = (0..32 * 1024u64).map(|i| (1 << 47) + i * 3).collect();
        let delta_size = compressed_size_bytes(&Format::DeltaDynBp, &values);
        let dyn_size = compressed_size_bytes(&Format::DynBp, &values);
        let uncompressed = values.len() * 8;
        assert!(
            delta_size * 4 < dyn_size,
            "delta {delta_size} vs dyn {dyn_size}"
        );
        assert!(delta_size * 10 < uncompressed);
    }

    #[test]
    fn roundtrip_unsorted_data_via_wrapping_deltas() {
        let values: Vec<u64> = (0..2048u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let (bytes, main_len) = compress_main_part(&Format::DeltaDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::DeltaDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn streaming_appends_form_one_delta_chain() {
        let values: Vec<u64> = (0..4 * DYN_BP_BLOCK as u64).map(|i| 1000 + i).collect();
        // Compress in two separate appends; the chain must survive the split.
        let mut compressor = DeltaDynBpCompressor::new();
        let mut bytes = Vec::new();
        let half = values.len() / 2;
        compressor.append(&values[..half], &mut bytes);
        compressor.append(&values[half..], &mut bytes);
        compressor.finish(&mut bytes);
        let mut decoded = Vec::new();
        decompress_into(&Format::DeltaDynBp, &bytes, values.len(), &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn constant_runs_need_one_bit_per_delta() {
        let values = vec![1u64; 4 * DYN_BP_BLOCK];
        let size = compressed_size_bytes(&Format::DeltaDynBp, &values);
        // Per block: 8 (reference) + 1 (width) + 512/8 (1-bit deltas) = 73 bytes.
        assert_eq!(size, 4 * 73);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn append_rejects_partial_blocks() {
        let mut compressor = DeltaDynBpCompressor::new();
        compressor.append(&[1, 2, 3], &mut Vec::new());
    }
}
