//! Delta coding cascaded with dynamic bit packing (DELTA + SIMD-BP).
//!
//! Each value is replaced by its difference to the predecessor (Section 2.1),
//! which turns sorted or nearly sorted sequences — position lists produced by
//! the select operator, sorted dictionary keys, dates — into sequences of
//! tiny integers that the physical-level NS scheme then packs densely.  The
//! paper finds DELTA + SIMD-BP to be the best output format for the select
//! operator in *all* cases "since the output is always sorted" (Section 5.1).
//!
//! Layout per block of [`DYN_BP_BLOCK`] = 512 elements:
//! `[reference: u64 LE][width: u8][packed deltas: 64 * width bytes]`
//! where `reference` is the value preceding the block (0 for the first
//! block) and the deltas are wrapping differences, so the encoding is total:
//! it works for unsorted data too, merely with larger widths.

use crate::bitpack;
use crate::{Compressor, DYN_BP_BLOCK};

/// Streaming compressor for DELTA + dynamic BP.  Carries the last value seen
/// so far so that consecutive [`Compressor::append`] calls form one
/// continuous delta chain.
#[derive(Debug, Clone)]
pub struct DeltaDynBpCompressor {
    previous: u64,
    scratch: Vec<u64>,
}

impl DeltaDynBpCompressor {
    /// Create a compressor with an initial predecessor of 0.
    pub fn new() -> Self {
        DeltaDynBpCompressor {
            previous: 0,
            scratch: Vec::with_capacity(DYN_BP_BLOCK),
        }
    }
}

impl Default for DeltaDynBpCompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor for DeltaDynBpCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        assert_eq!(
            values.len() % DYN_BP_BLOCK,
            0,
            "DELTA+BP chunks must be multiples of {DYN_BP_BLOCK} elements"
        );
        for block in values.chunks_exact(DYN_BP_BLOCK) {
            out.extend_from_slice(&self.previous.to_le_bytes());
            self.scratch.clear();
            let mut prev = self.previous;
            for &value in block {
                self.scratch.push(value.wrapping_sub(prev));
                prev = value;
            }
            self.previous = prev;
            let width = bitpack::bit_width_of_max(&self.scratch);
            out.push(width);
            bitpack::pack_into(&self.scratch, width, out);
        }
    }

    fn finish(&mut self, _out: &mut Vec<u8>) {}
}

/// Decode `count` values (a multiple of the block size), handing one block of
/// 512 uncompressed values at a time to `consumer`.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    assert_eq!(
        count % DYN_BP_BLOCK,
        0,
        "DELTA+BP main part must be whole blocks"
    );
    let blocks = count / DYN_BP_BLOCK;
    let mut deltas: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut values: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut offset = 0usize;
    for _ in 0..blocks {
        let reference = u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"));
        offset += 8;
        let width = bytes[offset];
        assert!(
            (1..=64).contains(&width),
            "corrupt DELTA+BP header: width {width}"
        );
        offset += 1;
        let packed = bitpack::packed_size_bytes(DYN_BP_BLOCK, width);
        deltas.clear();
        bitpack::unpack_into(
            &bytes[offset..offset + packed],
            width,
            DYN_BP_BLOCK,
            &mut deltas,
        );
        offset += packed;
        values.clear();
        let mut prev = reference;
        for &delta in &deltas {
            prev = prev.wrapping_add(delta);
            values.push(prev);
        }
        consumer(&values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, compressed_size_bytes, decompress_into, Format};

    #[test]
    fn roundtrip_sorted_positions() {
        // A typical select output: sorted positions.
        let values: Vec<u64> = (0..10 * 1024u64).map(|i| i * 3).collect();
        let (bytes, main_len) = compress_main_part(&Format::DeltaDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::DeltaDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values[..main_len]);
    }

    #[test]
    fn sorted_data_compresses_much_better_than_plain_bp() {
        // Mimics column C4 of Table 1: sorted values around 2^47.
        let values: Vec<u64> = (0..32 * 1024u64).map(|i| (1 << 47) + i * 3).collect();
        let delta_size = compressed_size_bytes(&Format::DeltaDynBp, &values);
        let dyn_size = compressed_size_bytes(&Format::DynBp, &values);
        let uncompressed = values.len() * 8;
        assert!(
            delta_size * 4 < dyn_size,
            "delta {delta_size} vs dyn {dyn_size}"
        );
        assert!(delta_size * 10 < uncompressed);
    }

    #[test]
    fn roundtrip_unsorted_data_via_wrapping_deltas() {
        let values: Vec<u64> = (0..2048u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let (bytes, main_len) = compress_main_part(&Format::DeltaDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::DeltaDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn streaming_appends_form_one_delta_chain() {
        let values: Vec<u64> = (0..4 * DYN_BP_BLOCK as u64).map(|i| 1000 + i).collect();
        // Compress in two separate appends; the chain must survive the split.
        let mut compressor = DeltaDynBpCompressor::new();
        let mut bytes = Vec::new();
        let half = values.len() / 2;
        compressor.append(&values[..half], &mut bytes);
        compressor.append(&values[half..], &mut bytes);
        compressor.finish(&mut bytes);
        let mut decoded = Vec::new();
        decompress_into(&Format::DeltaDynBp, &bytes, values.len(), &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn constant_runs_need_one_bit_per_delta() {
        let values = vec![1u64; 4 * DYN_BP_BLOCK];
        let size = compressed_size_bytes(&Format::DeltaDynBp, &values);
        // Per block: 8 (reference) + 1 (width) + 512/8 (1-bit deltas) = 73 bytes.
        assert_eq!(size, 4 * 73);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn append_rejects_partial_blocks() {
        let mut compressor = DeltaDynBpCompressor::new();
        compressor.append(&[1, 2, 3], &mut Vec::new());
    }
}
