//! Frame-of-reference coding cascaded with dynamic bit packing
//! (FOR + SIMD-BP).
//!
//! Each value is represented as its (non-negative) offset from a per-block
//! reference value — the minimum of the block — which maps data lying in a
//! narrow range far away from zero (column C3 of Table 1: uniform in
//! `[2^62, 2^62 + 63]`) onto small integers suitable for null suppression.
//!
//! Layout per block of [`DYN_BP_BLOCK`] = 512 elements:
//! `[reference: u64 LE][width: u8][packed offsets: 64 * width bytes]`.

use crate::bitpack;
use crate::delta::checked_cascade_header;
use crate::{ChunkCursor, ChunkEntry, Compressor, DecodeError, DYN_BP_BLOCK};

/// Streaming compressor for FOR + dynamic BP.  The reference is chosen per
/// block, so the compressor itself is stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct ForDynBpCompressor;

impl Compressor for ForDynBpCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        assert_eq!(
            values.len() % DYN_BP_BLOCK,
            0,
            "FOR+BP chunks must be multiples of {DYN_BP_BLOCK} elements"
        );
        let mut offsets: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
        for block in values.chunks_exact(DYN_BP_BLOCK) {
            // `chunks_exact` never yields an empty block; the fold makes
            // the reference total without a panicking path.
            let reference = block.iter().copied().fold(u64::MAX, u64::min);
            out.extend_from_slice(&reference.to_le_bytes());
            offsets.clear();
            offsets.extend(block.iter().map(|&v| v - reference));
            let width = bitpack::bit_width_of_max(&offsets);
            out.push(width);
            bitpack::pack_into(&offsets, width, out);
        }
    }

    fn finish(&mut self, _out: &mut Vec<u8>) {}
}

/// Decode `count` values (a multiple of the block size), handing one block of
/// 512 uncompressed values at a time to `consumer`.
///
/// # Panics
/// Panics if the buffer is truncated or a header is corrupt; use
/// [`try_for_each_block`] for untrusted bytes.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    try_for_each_block(bytes, count, consumer).unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Decode the block starting at `offset` into `values` via the scratch
/// `offsets` buffer, returning the offset of the next block.
fn decode_block(
    bytes: &[u8],
    offset: usize,
    reference: u64,
    width: u8,
    packed: usize,
    offsets: &mut Vec<u64>,
    values: &mut Vec<u64>,
) -> usize {
    offsets.clear();
    bitpack::unpack_into(
        &bytes[offset + 9..offset + 9 + packed],
        width,
        DYN_BP_BLOCK,
        offsets,
    );
    values.clear();
    values.extend(offsets.iter().map(|&o| reference.wrapping_add(o)));
    offset + 9 + packed
}

/// Fallible variant of [`for_each_block`]: truncated payloads and invalid
/// header fields yield a [`DecodeError`] instead of a panic.
pub fn try_for_each_block(
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) -> Result<(), DecodeError> {
    if !count.is_multiple_of(DYN_BP_BLOCK) {
        return Err(DecodeError::CorruptHeader {
            format: "FOR+BP",
            detail: format!(
                "main part of {count} elements is not whole {DYN_BP_BLOCK}-element blocks"
            ),
        });
    }
    let blocks = count / DYN_BP_BLOCK;
    let mut offsets: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut values: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut offset = 0usize;
    for _ in 0..blocks {
        let (reference, width, packed) = checked_cascade_header("FOR+BP", bytes, offset)?;
        offset = decode_block(
            bytes,
            offset,
            reference,
            width,
            packed,
            &mut offsets,
            &mut values,
        );
        consumer(&values);
    }
    Ok(())
}

/// Pull-based [`ChunkCursor`] over a FOR+BP main part: one 512-element block
/// per chunk.  Every block carries its own reference, so blocks are
/// self-contained and seeking needs no prefix replay.
#[derive(Debug)]
pub struct ForCursor<'a> {
    bytes: &'a [u8],
    count: usize,
    directory: &'a [ChunkEntry],
    logical: usize,
    byte_offset: usize,
    offsets: Vec<u64>,
    buffer: Vec<u64>,
}

impl<'a> ForCursor<'a> {
    /// Create a cursor over `count` values (whole blocks) with the main
    /// part's chunk `directory`, positioned at the first element.
    pub fn new(bytes: &'a [u8], count: usize, directory: &'a [ChunkEntry]) -> ForCursor<'a> {
        debug_assert_eq!(count % DYN_BP_BLOCK, 0);
        ForCursor {
            bytes,
            count,
            directory,
            logical: 0,
            byte_offset: 0,
            offsets: Vec::with_capacity(DYN_BP_BLOCK.min(count)),
            buffer: Vec::with_capacity(DYN_BP_BLOCK.min(count)),
        }
    }
}

impl ChunkCursor for ForCursor<'_> {
    fn next_chunk(&mut self) -> Option<&[u64]> {
        if self.logical >= self.count {
            return None;
        }
        let offset = self.byte_offset;
        let reference = crate::read_u64_le(self.bytes, offset);
        let width = self.bytes[offset + 8];
        let packed = bitpack::packed_size_bytes(DYN_BP_BLOCK, width);
        self.byte_offset = decode_block(
            self.bytes,
            offset,
            reference,
            width,
            packed,
            &mut self.offsets,
            &mut self.buffer,
        );
        self.logical += DYN_BP_BLOCK;
        Some(&self.buffer)
    }

    fn last_chunk(&self) -> &[u64] {
        &self.buffer
    }

    fn seek(&mut self, chunk_idx: usize) {
        match self.directory.get(chunk_idx) {
            Some(entry) => {
                self.byte_offset = entry.byte_offset;
                self.logical = entry.logical_start;
            }
            None => self.logical = self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, compressed_size_bytes, decompress_into, Format};

    #[test]
    fn roundtrip_narrow_range_of_huge_values() {
        // Column C3 of Table 1: uniform in [2^62, 2^62 + 63].
        let values: Vec<u64> = (0..16 * 1024u64)
            .map(|i| (1 << 62) + (i.wrapping_mul(2654435761) % 64))
            .collect();
        let (bytes, main_len) = compress_main_part(&Format::ForDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::ForDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn narrow_huge_values_compress_well_with_for_but_not_bp() {
        let values: Vec<u64> = (0..16 * 1024u64)
            .map(|i| (1 << 62) + (i.wrapping_mul(2654435761) % 64))
            .collect();
        let for_size = compressed_size_bytes(&Format::ForDynBp, &values);
        let dyn_size = compressed_size_bytes(&Format::DynBp, &values);
        let uncompressed = values.len() * 8;
        // Plain BP must spend 63 bits/value; FOR needs ~6 bits/value + headers.
        assert!(for_size * 5 < dyn_size, "for {for_size} vs dyn {dyn_size}");
        assert!(dyn_size as f64 > 0.9 * uncompressed as f64);
    }

    #[test]
    fn roundtrip_extreme_spread() {
        let mut values = vec![0u64; DYN_BP_BLOCK];
        values[13] = u64::MAX;
        values.extend((0..DYN_BP_BLOCK as u64).map(|i| i + 7));
        let (bytes, main_len) = compress_main_part(&Format::ForDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::ForDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn constant_block_needs_one_bit_per_offset() {
        let values = vec![(1u64 << 55) + 9; 2 * DYN_BP_BLOCK];
        let size = compressed_size_bytes(&Format::ForDynBp, &values);
        // Per block: 8 (reference) + 1 (width) + 64 (1-bit offsets) = 73 bytes.
        assert_eq!(size, 2 * 73);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn append_rejects_partial_blocks() {
        let mut compressor = ForDynBpCompressor;
        compressor.append(&[1, 2, 3], &mut Vec::new());
    }
}
