//! Frame-of-reference coding cascaded with dynamic bit packing
//! (FOR + SIMD-BP).
//!
//! Each value is represented as its (non-negative) offset from a per-block
//! reference value — the minimum of the block — which maps data lying in a
//! narrow range far away from zero (column C3 of Table 1: uniform in
//! `[2^62, 2^62 + 63]`) onto small integers suitable for null suppression.
//!
//! Layout per block of [`DYN_BP_BLOCK`] = 512 elements:
//! `[reference: u64 LE][width: u8][packed offsets: 64 * width bytes]`.

use crate::bitpack;
use crate::{Compressor, DYN_BP_BLOCK};

/// Streaming compressor for FOR + dynamic BP.  The reference is chosen per
/// block, so the compressor itself is stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct ForDynBpCompressor;

impl Compressor for ForDynBpCompressor {
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>) {
        assert_eq!(
            values.len() % DYN_BP_BLOCK,
            0,
            "FOR+BP chunks must be multiples of {DYN_BP_BLOCK} elements"
        );
        let mut offsets: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
        for block in values.chunks_exact(DYN_BP_BLOCK) {
            let reference = block.iter().copied().min().expect("non-empty block");
            out.extend_from_slice(&reference.to_le_bytes());
            offsets.clear();
            offsets.extend(block.iter().map(|&v| v - reference));
            let width = bitpack::bit_width_of_max(&offsets);
            out.push(width);
            bitpack::pack_into(&offsets, width, out);
        }
    }

    fn finish(&mut self, _out: &mut Vec<u8>) {}
}

/// Decode `count` values (a multiple of the block size), handing one block of
/// 512 uncompressed values at a time to `consumer`.
pub fn for_each_block(bytes: &[u8], count: usize, consumer: &mut dyn FnMut(&[u64])) {
    assert_eq!(
        count % DYN_BP_BLOCK,
        0,
        "FOR+BP main part must be whole blocks"
    );
    let blocks = count / DYN_BP_BLOCK;
    let mut offsets: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut values: Vec<u64> = Vec::with_capacity(DYN_BP_BLOCK);
    let mut offset = 0usize;
    for _ in 0..blocks {
        let reference = u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"));
        offset += 8;
        let width = bytes[offset];
        assert!(
            (1..=64).contains(&width),
            "corrupt FOR+BP header: width {width}"
        );
        offset += 1;
        let packed = bitpack::packed_size_bytes(DYN_BP_BLOCK, width);
        offsets.clear();
        bitpack::unpack_into(
            &bytes[offset..offset + packed],
            width,
            DYN_BP_BLOCK,
            &mut offsets,
        );
        offset += packed;
        values.clear();
        values.extend(offsets.iter().map(|&o| reference.wrapping_add(o)));
        consumer(&values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_main_part, compressed_size_bytes, decompress_into, Format};

    #[test]
    fn roundtrip_narrow_range_of_huge_values() {
        // Column C3 of Table 1: uniform in [2^62, 2^62 + 63].
        let values: Vec<u64> = (0..16 * 1024u64)
            .map(|i| (1 << 62) + (i.wrapping_mul(2654435761) % 64))
            .collect();
        let (bytes, main_len) = compress_main_part(&Format::ForDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::ForDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn narrow_huge_values_compress_well_with_for_but_not_bp() {
        let values: Vec<u64> = (0..16 * 1024u64)
            .map(|i| (1 << 62) + (i.wrapping_mul(2654435761) % 64))
            .collect();
        let for_size = compressed_size_bytes(&Format::ForDynBp, &values);
        let dyn_size = compressed_size_bytes(&Format::DynBp, &values);
        let uncompressed = values.len() * 8;
        // Plain BP must spend 63 bits/value; FOR needs ~6 bits/value + headers.
        assert!(for_size * 5 < dyn_size, "for {for_size} vs dyn {dyn_size}");
        assert!(dyn_size as f64 > 0.9 * uncompressed as f64);
    }

    #[test]
    fn roundtrip_extreme_spread() {
        let mut values = vec![0u64; DYN_BP_BLOCK];
        values[13] = u64::MAX;
        values.extend((0..DYN_BP_BLOCK as u64).map(|i| i + 7));
        let (bytes, main_len) = compress_main_part(&Format::ForDynBp, &values);
        let mut decoded = Vec::new();
        decompress_into(&Format::ForDynBp, &bytes, main_len, &mut decoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn constant_block_needs_one_bit_per_offset() {
        let values = vec![(1u64 << 55) + 9; 2 * DYN_BP_BLOCK];
        let size = compressed_size_bytes(&Format::ForDynBp, &values);
        // Per block: 8 (reference) + 1 (width) + 64 (1-bit offsets) = 73 bytes.
        assert_eq!(size, 2 * 73);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn append_rejects_partial_blocks() {
        let mut compressor = ForDynBpCompressor;
        compressor.append(&[1, 2, 3], &mut Vec::new());
    }
}
