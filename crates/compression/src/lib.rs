//! # morph-compression
//!
//! Lightweight integer compression formats and direct morphing for
//! MorphStore-rs.
//!
//! The paper's processing model (Section 3) requires that *every* base column
//! and every intermediate result can be materialised in a lightweight integer
//! compression format, that formats can be chosen per column independently,
//! and that the representation can be changed ("morphed") efficiently.  This
//! crate provides:
//!
//! * the [`Format`] descriptor enumerating the supported formats — the five
//!   formats of the paper's implementation (Section 4.1: uncompressed, static
//!   bit packing, SIMD-BP-style dynamic bit packing, DELTA + BP, FOR + BP)
//!   plus run-length encoding and dictionary encoding as extensions,
//! * whole-buffer and *streaming* compression ([`Compressor`]) used by the
//!   output side of the on-the-fly de/re-compression wrapper (the
//!   L1-cache-resident buffer layer of Figure 4),
//! * block-wise decompression ([`for_each_decompressed_block`]) used by the
//!   input side of that wrapper, so operators never materialise a whole
//!   uncompressed column (design principle DP3),
//! * random read access for the formats that support it (uncompressed and
//!   static BP, as in Section 4.2),
//! * direct morphing between any two formats ([`morph`]).
//!
//! All uncompressed values are `u64`, the native word width, as in the paper.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bitpack;
pub mod delta;
pub mod dict;
pub mod dyn_bp;
pub mod frame_of_ref;
pub mod morph;
pub mod rle;
pub mod static_bp;
pub mod uncompressed;

use std::fmt;

/// Block size (in data elements) of the static bit-packing format.
///
/// 64 values of `w` bits occupy exactly `8 * w` bytes, so every block is
/// byte-aligned for every width.
pub const STATIC_BP_BLOCK: usize = 64;

/// Block size (in data elements) of the dynamic bit-packing format, matching
/// SIMD-BP512 (the AVX-512 port of SIMD-BP128 used by the paper).
pub const DYN_BP_BLOCK: usize = 512;

/// Number of uncompressed data elements held by the cache-resident buffer of
/// the on-the-fly de/re-compression wrapper (16 KiB = 2048 × 8 bytes, half of
/// a typical 32 KiB L1 data cache — the value used in the paper's
/// evaluation).
pub const CACHE_BUFFER_ELEMENTS: usize = 2048;

/// A lightweight integer compression format (Section 4.1 of the paper).
///
/// `Format` is a runtime value so that the benchmark harness and the format
/// selection strategies can sweep combinations, exactly as the paper does for
/// Figures 5–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Plain 64-bit integers (no compression).
    Uncompressed,
    /// Static bit packing: one fixed bit width for the whole column
    /// (the paper's "static BP"; byte-aligned widths model SQL narrow types).
    StaticBp(u8),
    /// Dynamic bit packing with per-block widths, blocks of 512 values
    /// (the paper's 64-bit port of SIMD-BP).
    DynBp,
    /// Delta coding cascaded with dynamic bit packing (for sorted or
    /// near-sorted data such as position lists).
    DeltaDynBp,
    /// Frame-of-reference coding cascaded with dynamic bit packing (for data
    /// in a narrow range far from zero).
    ForDynBp,
    /// Run-length encoding: (value, run length) pairs.
    Rle,
    /// Dictionary encoding with an embedded, order-preserving dictionary and
    /// bit-packed keys.
    Dict,
}

impl Format {
    /// Convenience constructor for [`Format::StaticBp`] with the width needed
    /// to hold `max_value`.
    pub fn static_bp_for_max(max_value: u64) -> Format {
        Format::StaticBp(bitpack::bit_width_of(max_value))
    }

    /// Convenience constructor for [`Format::DynBp`].
    pub fn dyn_bp() -> Format {
        Format::DynBp
    }

    /// Convenience constructor for [`Format::DeltaDynBp`].
    pub fn delta_dyn_bp() -> Format {
        Format::DeltaDynBp
    }

    /// Convenience constructor for [`Format::ForDynBp`].
    pub fn for_dyn_bp() -> Format {
        Format::ForDynBp
    }

    /// The five formats evaluated by the paper (Section 5.1: "MorphStore
    /// currently supports five compression algorithms"), with the static
    /// width derived from `max_value`.
    pub fn paper_formats(max_value: u64) -> Vec<Format> {
        vec![
            Format::Uncompressed,
            Format::static_bp_for_max(max_value),
            Format::DynBp,
            Format::DeltaDynBp,
            Format::ForDynBp,
        ]
    }

    /// All formats supported by this crate, with the static width derived
    /// from `max_value`.
    pub fn all_formats(max_value: u64) -> Vec<Format> {
        let mut formats = Self::paper_formats(max_value);
        formats.push(Format::Rle);
        formats.push(Format::Dict);
        formats
    }

    /// Number of data elements per compression block.  Columns store the
    /// first `len - len % block_size()` elements in compressed form and the
    /// rest as an uncompressed remainder (Figure 3 of the paper).
    pub fn block_size(&self) -> usize {
        match self {
            Format::Uncompressed => 1,
            Format::StaticBp(_) => STATIC_BP_BLOCK,
            Format::DynBp | Format::DeltaDynBp | Format::ForDynBp => DYN_BP_BLOCK,
            Format::Rle => 1,
            Format::Dict => 1,
        }
    }

    /// Whether the format actually compresses (everything except
    /// [`Format::Uncompressed`]).
    pub fn is_compressed(&self) -> bool {
        !matches!(self, Format::Uncompressed)
    }

    /// Whether random read access to individual elements of the compressed
    /// main part is supported (Section 4.2: uncompressed and static BP only).
    pub fn supports_random_access(&self) -> bool {
        matches!(self, Format::Uncompressed | Format::StaticBp(_))
    }

    /// Whether the streaming compressor can emit output incrementally
    /// (cache-resident blocks).  Formats that need to see the whole column
    /// first (dictionary encoding) buffer internally instead.
    pub fn supports_streaming(&self) -> bool {
        !matches!(self, Format::Dict)
    }

    /// Short human-readable label (matches the terminology of the paper's
    /// figures).  Alias for the `Display` implementation, which owns the
    /// canonical spelling; `FromStr` parses it back.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Format {
    /// The canonical format-name spelling, shared by the benchmark harness
    /// and the plan debug printer, and parseable via `FromStr`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Format::Uncompressed => f.write_str("uncompr"),
            Format::StaticBp(w) => write!(f, "staticBP({w})"),
            Format::DynBp => f.write_str("SIMD-BP"),
            Format::DeltaDynBp => f.write_str("DELTA+SIMD-BP"),
            Format::ForDynBp => f.write_str("FOR+SIMD-BP"),
            Format::Rle => f.write_str("RLE"),
            Format::Dict => f.write_str("DICT"),
        }
    }
}

/// Error returned when parsing a [`Format`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError {
    input: String,
}

impl fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown compression format {:?} (expected one of: uncompr, staticBP(<bits>), \
             SIMD-BP, DELTA+SIMD-BP, FOR+SIMD-BP, RLE, DICT)",
            self.input
        )
    }
}

impl std::error::Error for ParseFormatError {}

impl std::str::FromStr for Format {
    type Err = ParseFormatError;

    /// Parse the canonical spelling produced by `Display`, so format names
    /// round-trip through benchmark CSV output and the plan debug printer.
    fn from_str(s: &str) -> Result<Format, ParseFormatError> {
        let s = s.trim();
        match s {
            "uncompr" => return Ok(Format::Uncompressed),
            "SIMD-BP" => return Ok(Format::DynBp),
            "DELTA+SIMD-BP" => return Ok(Format::DeltaDynBp),
            "FOR+SIMD-BP" => return Ok(Format::ForDynBp),
            "RLE" => return Ok(Format::Rle),
            "DICT" => return Ok(Format::Dict),
            _ => {}
        }
        if let Some(width) = s
            .strip_prefix("staticBP(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            if let Ok(width) = width.trim().parse::<u8>() {
                if (1..=64).contains(&width) {
                    return Ok(Format::StaticBp(width));
                }
            }
        }
        Err(ParseFormatError {
            input: s.to_string(),
        })
    }
}

/// Streaming compressor used by the output-side buffer layer of the
/// on-the-fly de/re-compression wrapper (Figure 4, steps 6–9).
///
/// Chunks passed to [`Compressor::append`] must have a length that is a
/// multiple of the format's [`Format::block_size`]; the engine's sink
/// guarantees this by flushing its cache-resident buffer in multiples of the
/// block size and keeping the rest as the uncompressed remainder.
pub trait Compressor {
    /// Compress `values` and append the encoded bytes to `out`.
    fn append(&mut self, values: &[u64], out: &mut Vec<u8>);

    /// Flush any internal state (pending runs, buffered dictionaries) to
    /// `out`.  Must be called exactly once, after the last `append`.
    fn finish(&mut self, out: &mut Vec<u8>);
}

/// Create a streaming [`Compressor`] for `format`.
pub fn compressor_for(format: &Format) -> Box<dyn Compressor> {
    match format {
        Format::Uncompressed => Box::new(uncompressed::UncompressedCompressor),
        Format::StaticBp(width) => Box::new(static_bp::StaticBpCompressor::new(*width)),
        Format::DynBp => Box::new(dyn_bp::DynBpCompressor),
        Format::DeltaDynBp => Box::new(delta::DeltaDynBpCompressor::new()),
        Format::ForDynBp => Box::new(frame_of_ref::ForDynBpCompressor),
        Format::Rle => Box::new(rle::RleCompressor::new()),
        Format::Dict => Box::new(dict::DictCompressor::new()),
    }
}

/// Compress a whole buffer of values (whose length need *not* be a multiple
/// of the block size — only the leading multiple is compressed; the caller is
/// responsible for storing the remainder separately, as the column layer
/// does).  Returns the encoded main part and the number of elements it
/// contains.
pub fn compress_main_part(format: &Format, values: &[u64]) -> (Vec<u8>, usize) {
    let block = format.block_size();
    let main_len = values.len() - values.len() % block;
    let mut out = Vec::new();
    let mut compressor = compressor_for(format);
    compressor.append(&values[..main_len], &mut out);
    compressor.finish(&mut out);
    (out, main_len)
}

/// Error returned by the fallible decoders when an encoded main part is
/// truncated or structurally corrupt.
///
/// Columns produced by this crate are always well-formed, so the engine's
/// hot paths use the infallible decoders (which panic with the same
/// diagnostics); the fallible `try_*` entry points exist for bytes that
/// cross a trust boundary — network buffers, on-disk snapshots, fuzzers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The encoded buffer ends before the data it promises.
    Truncated {
        /// Canonical name of the format whose decoder failed.
        format: &'static str,
        /// Byte offset at which the decoder needed more input.
        offset: usize,
        /// Number of bytes required at `offset`.
        needed: usize,
        /// Number of bytes actually available from `offset`.
        available: usize,
    },
    /// A header field holds a value no encoder produces.
    CorruptHeader {
        /// Canonical name of the format whose decoder failed.
        format: &'static str,
        /// Human-readable description of the impossible field.
        detail: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated {
                format,
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated {format} input: need {needed} bytes at offset {offset}, \
                 have {available}"
            ),
            DecodeError::CorruptHeader { format, detail } => {
                write!(f, "corrupt {format} header: {detail}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Check that `bytes` holds `needed` bytes starting at `offset`, returning a
/// [`DecodeError::Truncated`] naming `format` otherwise.  The one bounds
/// check every fallible decoder shares.
pub(crate) fn ensure_bytes(
    format: &'static str,
    bytes: &[u8],
    offset: usize,
    needed: usize,
) -> Result<(), DecodeError> {
    let available = bytes.len().saturating_sub(offset);
    if available < needed {
        return Err(DecodeError::Truncated {
            format,
            offset,
            needed,
            available,
        });
    }
    Ok(())
}

/// Read the little-endian `u64` at `bytes[start..start + 8]`.
///
/// Total and panic-free for in-bounds reads via `copy_from_slice` into a
/// fixed array — the codified replacement for the
/// `try_into().expect("8 bytes")` idiom the hot decode paths used to carry.
/// Callers must have validated `start + 8 <= bytes.len()` (every decoder
/// does, through [`ensure_bytes`] or an explicit length check); an
/// out-of-bounds `start` still panics on the slice, exactly like the
/// expect-based idiom, but no `expect` remains on the per-element path.
#[inline(always)]
pub(crate) fn read_u64_le(bytes: &[u8], start: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[start..start + 8]);
    u64::from_le_bytes(word)
}

/// Decompress the whole compressed main part (`count` elements) into `out`.
pub fn decompress_into(format: &Format, bytes: &[u8], count: usize, out: &mut Vec<u64>) {
    out.reserve(count);
    for_each_decompressed_block(format, bytes, count, &mut |chunk| {
        out.extend_from_slice(chunk)
    });
}

/// Decompress the compressed main part block-wise, invoking `consumer` with
/// chunks of uncompressed values whose total length is `count`.
///
/// The chunks are bounded in size (at most a few KiB), so the uncompressed
/// data stays cache-resident — this is the input-side buffer layer of the
/// paper's Figure 4.
///
/// # Panics
/// Panics if the buffer is truncated or corrupt, carrying the structured
/// [`DecodeError`] as the panic payload (so governed executors and the
/// query server recover the cause without string matching); use
/// [`try_for_each_decompressed_block`] for untrusted bytes.
pub fn for_each_decompressed_block(
    format: &Format,
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) {
    try_for_each_decompressed_block(format, bytes, count, consumer)
        .unwrap_or_else(|err| std::panic::panic_any(err));
}

/// Fallible variant of [`for_each_decompressed_block`]: every length and
/// header field is validated before use, so truncated or corrupt input
/// yields a structured [`DecodeError`] instead of a panic.
///
/// `consumer` may have been invoked with a prefix of the data before an
/// error is detected (decoding is streaming); on `Err` the decoded prefix
/// must be discarded.
pub fn try_for_each_decompressed_block(
    format: &Format,
    bytes: &[u8],
    count: usize,
    consumer: &mut dyn FnMut(&[u64]),
) -> Result<(), DecodeError> {
    match format {
        Format::Uncompressed => uncompressed::try_for_each_block(bytes, count, consumer),
        Format::StaticBp(width) => static_bp::try_for_each_block(bytes, *width, count, consumer),
        Format::DynBp => dyn_bp::try_for_each_block(bytes, count, consumer),
        Format::DeltaDynBp => delta::try_for_each_block(bytes, count, consumer),
        Format::ForDynBp => frame_of_ref::try_for_each_block(bytes, count, consumer),
        Format::Rle => rle::try_for_each_block(bytes, count, consumer),
        Format::Dict => dict::try_for_each_block(bytes, count, consumer),
    }
}

/// One entry of a [chunk directory](chunk_directory): a position in the
/// encoded main part at which decoding can start without replaying the
/// prefix.
///
/// Every entry marks the beginning of an independently decodable *chunk* —
/// a bit-packing block, a group of RLE runs, or a fixed stride of a
/// random-access format — identified by the byte offset of its first encoded
/// byte and the logical index of its first data element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkEntry {
    /// Offset of the chunk's first byte within the encoded main part.
    pub byte_offset: usize,
    /// Logical index of the chunk's first data element.
    pub logical_start: usize,
}

/// Target number of logical elements per directory chunk for formats whose
/// natural unit is smaller than a cache-resident buffer (single runs, single
/// elements).  Matches [`CACHE_BUFFER_ELEMENTS`], so a chunk is the same
/// granularity the on-the-fly wrapper works at.
pub const CHUNK_DIRECTORY_TARGET: usize = CACHE_BUFFER_ELEMENTS;

/// Build the chunk directory of an encoded main part: the sequence of
/// [`ChunkEntry`] seek points at which [`for_each_decompressed_block_in`]
/// can start decoding.
///
/// The directory is recorded at compression time by the column layer and is
/// what makes a compressed column *seekable* — a worker can decode an
/// arbitrary contiguous range of chunks without touching the prefix.  The
/// construction never decompresses data:
///
/// * uncompressed and static BP have fixed strides, so entries are pure
///   arithmetic (one per [`CHUNK_DIRECTORY_TARGET`] elements),
/// * the dynamic BP family ([`Format::DynBp`], [`Format::DeltaDynBp`],
///   [`Format::ForDynBp`]) walks the per-block headers, yielding one entry
///   per 512-element block (DELTA blocks carry their reference value, so
///   every block is self-contained),
/// * RLE walks the run headers, starting a new chunk at the first run
///   boundary after [`CHUNK_DIRECTORY_TARGET`] logical elements,
/// * DICT seeks into the packed key stream behind the embedded dictionary
///   (entries at [`CHUNK_DIRECTORY_TARGET`] strides, which are byte-aligned
///   for every key width).
pub fn chunk_directory(format: &Format, bytes: &[u8], count: usize) -> Vec<ChunkEntry> {
    if count == 0 {
        return Vec::new();
    }
    let stride_entries = |bytes_per_element_num: usize, bytes_per_element_den: usize| {
        (0..count)
            .step_by(CHUNK_DIRECTORY_TARGET)
            .map(|logical_start| ChunkEntry {
                byte_offset: logical_start * bytes_per_element_num / bytes_per_element_den,
                logical_start,
            })
            .collect()
    };
    match format {
        Format::Uncompressed => stride_entries(8, 1),
        // CHUNK_DIRECTORY_TARGET is a multiple of 8 elements, so every
        // stride boundary of a `width`-bit stream falls on a whole byte.
        Format::StaticBp(width) => stride_entries(*width as usize, 8),
        Format::DynBp => {
            let mut entries = Vec::with_capacity(count / DYN_BP_BLOCK);
            let mut byte_offset = 0usize;
            for block in 0..count / DYN_BP_BLOCK {
                entries.push(ChunkEntry {
                    byte_offset,
                    logical_start: block * DYN_BP_BLOCK,
                });
                byte_offset += dyn_bp::block_encoded_size(bytes[byte_offset]);
            }
            entries
        }
        Format::DeltaDynBp | Format::ForDynBp => {
            let mut entries = Vec::with_capacity(count / DYN_BP_BLOCK);
            let mut byte_offset = 0usize;
            for block in 0..count / DYN_BP_BLOCK {
                entries.push(ChunkEntry {
                    byte_offset,
                    logical_start: block * DYN_BP_BLOCK,
                });
                // [reference: u64][width: u8][packed values]
                let width = bytes[byte_offset + 8];
                byte_offset += 9 + bitpack::packed_size_bytes(DYN_BP_BLOCK, width);
            }
            entries
        }
        Format::Rle => {
            let mut entries = Vec::new();
            let mut logical = 0usize;
            let mut run_idx = 0usize;
            let mut next_chunk_at = 0usize;
            rle::for_each_run(bytes, count, &mut |_, run_len| {
                if logical >= next_chunk_at {
                    entries.push(ChunkEntry {
                        // RLE runs are fixed-size (value, length) pairs.
                        byte_offset: run_idx * 16,
                        logical_start: logical,
                    });
                    next_chunk_at = logical + CHUNK_DIRECTORY_TARGET;
                }
                logical += run_len as usize;
                run_idx += 1;
            });
            entries
        }
        Format::Dict => {
            let (keys_offset, width) = dict::header_layout(bytes);
            (0..count)
                .step_by(CHUNK_DIRECTORY_TARGET)
                .map(|logical_start| ChunkEntry {
                    byte_offset: keys_offset + logical_start * width as usize / 8,
                    logical_start,
                })
                .collect()
        }
    }
}

/// Decompress the contiguous directory chunks `entries` of an encoded main
/// part, handing cache-resident pieces of uncompressed values to `consumer`
/// — [`for_each_decompressed_block`] restricted to a seekable sub-range.
///
/// `directory` must be the [`chunk_directory`] of exactly this main part and
/// `count` its total logical length.  Decoding starts at the first entry's
/// seek point; no prefix of the buffer is replayed, which is what makes
/// chunk-range partitions of one operator independent.
pub fn for_each_decompressed_block_in(
    format: &Format,
    bytes: &[u8],
    count: usize,
    directory: &[ChunkEntry],
    entries: std::ops::Range<usize>,
    consumer: &mut dyn FnMut(&[u64]),
) {
    if entries.start >= entries.end {
        return;
    }
    assert!(
        entries.end <= directory.len(),
        "chunk range {entries:?} exceeds the directory ({} entries)",
        directory.len()
    );
    let start = directory[entries.start];
    let (end_byte, end_logical) = match directory.get(entries.end) {
        Some(next) => (next.byte_offset, next.logical_start),
        None => (bytes.len(), count),
    };
    let span = end_logical - start.logical_start;
    let sub = &bytes[start.byte_offset..end_byte];
    match format {
        Format::Uncompressed => uncompressed::for_each_block(sub, span, consumer),
        Format::StaticBp(width) => static_bp::for_each_block(sub, *width, span, consumer),
        Format::DynBp => dyn_bp::for_each_block(sub, span, consumer),
        Format::DeltaDynBp => delta::for_each_block(sub, span, consumer),
        Format::ForDynBp => frame_of_ref::for_each_block(sub, span, consumer),
        Format::Rle => rle::for_each_block(sub, span, consumer),
        // DICT needs the embedded dictionary from the buffer head; the seek
        // happens inside the packed key stream.
        Format::Dict => dict::for_each_block_in(bytes, start.logical_start, span, consumer),
    }
}

/// A pull-based block decoder over an encoded main part.
///
/// The push-style [`for_each_decompressed_block`] drives one decoder to
/// completion, which is exactly wrong for position-wise *binary* operators:
/// two push decoders cannot be interleaved on one thread.  A `ChunkCursor`
/// inverts control — the caller pulls one cache-resident chunk at a time —
/// so any number of compressed inputs can be paired with a carry buffer
/// bounded by one chunk each, never a whole column.
///
/// Contract:
///
/// * [`next_chunk`](ChunkCursor::next_chunk) decodes and returns the next
///   chunk of values, or `None` at the end of the stream.  Chunks come in
///   stream order; their concatenation is exactly the sequential decode.
///   Every chunk holds at most [`CACHE_BUFFER_ELEMENTS`] values (long RLE
///   runs are split), so the uncompressed data stays cache-resident.  The
///   returned slice borrows the cursor's internal decode buffer and is
///   invalidated by the next call.
/// * [`seek`](ChunkCursor::seek) repositions the cursor at the start of
///   directory chunk `chunk_idx` — the entry index of [`chunk_directory`]
///   for this main part — without decoding any prefix.  An index at or past
///   the directory length positions the cursor at the end of the stream.
pub trait ChunkCursor {
    /// Decode and return the next chunk of values, or `None` when the
    /// cursor is exhausted.
    fn next_chunk(&mut self) -> Option<&[u64]>;

    /// The chunk most recently returned by
    /// [`next_chunk`](ChunkCursor::next_chunk), still resident in the
    /// cursor's decode buffer.  Lets a caller re-borrow the current chunk
    /// after releasing the `next_chunk` borrow (current borrow-checker
    /// rules cannot express holding it across a conditional re-decode).
    /// Contents are unspecified before the first decode and after a seek.
    fn last_chunk(&self) -> &[u64];

    /// Reposition the cursor at the start of directory chunk `chunk_idx`.
    fn seek(&mut self, chunk_idx: usize);
}

/// Create a [`ChunkCursor`] over an encoded main part of `count` elements.
///
/// `directory` must be the [`chunk_directory`] of exactly this main part;
/// formats with data-dependent block offsets (the dynamic BP family, RLE)
/// seek through it, fixed-stride formats seek by arithmetic.
pub fn cursor_for<'a>(
    format: &Format,
    bytes: &'a [u8],
    count: usize,
    directory: &'a [ChunkEntry],
) -> Box<dyn ChunkCursor + Send + 'a> {
    match format {
        Format::Uncompressed => Box::new(uncompressed::UncompressedCursor::new(bytes, count)),
        Format::StaticBp(width) => Box::new(static_bp::StaticBpCursor::new(bytes, *width, count)),
        Format::DynBp => Box::new(dyn_bp::DynBpCursor::new(bytes, count, directory)),
        Format::DeltaDynBp => Box::new(delta::DeltaCursor::new(bytes, count, directory)),
        Format::ForDynBp => Box::new(frame_of_ref::ForCursor::new(bytes, count, directory)),
        Format::Rle => Box::new(rle::RleCursor::new(bytes, count, directory)),
        Format::Dict => Box::new(dict::DictCursor::new(bytes, count)),
    }
}

/// Random read access to element `idx` of a compressed main part.
///
/// Returns `None` if the format does not support random access (see
/// [`Format::supports_random_access`]).
pub fn get_element(format: &Format, bytes: &[u8], count: usize, idx: usize) -> Option<u64> {
    debug_assert!(idx < count);
    let _ = count;
    match format {
        Format::Uncompressed => Some(uncompressed::get(bytes, idx)),
        Format::StaticBp(width) => Some(bitpack::get_packed(bytes, *width, idx)),
        _ => None,
    }
}

/// Exact size in bytes of the compressed representation of `values` in
/// `format` (main part plus the 8-byte-per-element uncompressed remainder).
pub fn compressed_size_bytes(format: &Format, values: &[u64]) -> usize {
    let (bytes, main_len) = compress_main_part(format, values);
    bytes.len() + (values.len() - main_len) * 8
}

pub use morph::morph_main_part as morph;

/// The NS (null suppression) scheme used at the physical level of a cascade.
///
/// Retained as a standalone type because the cost model reasons about the
/// physical level separately from the logical level (Section 2.1 of the
/// paper distinguishes logical-level techniques — FOR, DELTA, DICT, RLE —
/// from the physical-level NS technique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NsScheme {
    /// One fixed bit width for all elements.
    StaticBp(u8),
    /// Per-block bit widths (SIMD-BP style).
    DynBp,
}

impl NsScheme {
    /// The physical-level scheme of `format`, if the format has one.
    pub fn of(format: &Format) -> Option<NsScheme> {
        match format {
            Format::StaticBp(w) => Some(NsScheme::StaticBp(*w)),
            Format::DynBp | Format::DeltaDynBp | Format::ForDynBp => Some(NsScheme::DynBp),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes() {
        assert_eq!(Format::Uncompressed.block_size(), 1);
        assert_eq!(Format::StaticBp(13).block_size(), 64);
        assert_eq!(Format::DynBp.block_size(), 512);
        assert_eq!(Format::DeltaDynBp.block_size(), 512);
        assert_eq!(Format::ForDynBp.block_size(), 512);
        assert_eq!(Format::Rle.block_size(), 1);
        assert_eq!(Format::Dict.block_size(), 1);
    }

    #[test]
    fn random_access_support() {
        assert!(Format::Uncompressed.supports_random_access());
        assert!(Format::StaticBp(7).supports_random_access());
        assert!(!Format::DynBp.supports_random_access());
        assert!(!Format::DeltaDynBp.supports_random_access());
        assert!(!Format::Rle.supports_random_access());
    }

    #[test]
    fn paper_formats_are_five() {
        let formats = Format::paper_formats(1000);
        assert_eq!(formats.len(), 5);
        assert!(formats.contains(&Format::StaticBp(10)));
        assert_eq!(Format::all_formats(1000).len(), 7);
    }

    #[test]
    fn labels_are_unique() {
        let formats = Format::all_formats(63);
        let labels: std::collections::HashSet<String> = formats.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), formats.len());
        assert_eq!(Format::StaticBp(6).to_string(), "staticBP(6)");
    }

    #[test]
    fn format_names_round_trip_through_from_str() {
        for format in Format::all_formats(123_456) {
            let spelled = format.to_string();
            assert_eq!(spelled.parse::<Format>(), Ok(format), "{spelled}");
            assert_eq!(format.label(), spelled);
        }
        assert_eq!(" staticBP(7) ".parse::<Format>(), Ok(Format::StaticBp(7)));
        assert!("staticBP(0)".parse::<Format>().is_err());
        assert!("staticBP(65)".parse::<Format>().is_err());
        assert!("staticBP(x)".parse::<Format>().is_err());
        let err = "simd-bp".parse::<Format>().unwrap_err();
        assert!(err.to_string().contains("unknown compression format"));
    }

    #[test]
    fn static_bp_for_max_picks_effective_width() {
        assert_eq!(Format::static_bp_for_max(0), Format::StaticBp(1));
        assert_eq!(Format::static_bp_for_max(63), Format::StaticBp(6));
        assert_eq!(Format::static_bp_for_max(64), Format::StaticBp(7));
        assert_eq!(Format::static_bp_for_max(u64::MAX), Format::StaticBp(64));
    }

    #[test]
    fn ns_scheme_extraction() {
        assert_eq!(
            NsScheme::of(&Format::StaticBp(9)),
            Some(NsScheme::StaticBp(9))
        );
        assert_eq!(NsScheme::of(&Format::DynBp), Some(NsScheme::DynBp));
        assert_eq!(NsScheme::of(&Format::DeltaDynBp), Some(NsScheme::DynBp));
        assert_eq!(NsScheme::of(&Format::Uncompressed), None);
        assert_eq!(NsScheme::of(&Format::Rle), None);
    }

    #[test]
    fn compress_main_part_respects_block_size() {
        let values: Vec<u64> = (0..1000).collect();
        let (_, main_len) = compress_main_part(&Format::DynBp, &values);
        assert_eq!(main_len, 512);
        let (_, main_len) = compress_main_part(&Format::StaticBp(10), &values);
        assert_eq!(main_len, 960);
        let (_, main_len) = compress_main_part(&Format::Uncompressed, &values);
        assert_eq!(main_len, 1000);
    }
}
